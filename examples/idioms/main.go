// Idioms: compare the four jump-pointer prefetching idioms — queue,
// full, chain and root jumping — on health, in both the software and
// cooperative implementations (the paper's Figure 4 for one benchmark).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	base, err := repro.Simulate(repro.Config{
		Bench: "health", Scheme: repro.SchemeNone,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("health, normalized execution time (unoptimized = 1.00)\n\n")
	fmt.Printf("%8s %10s %12s\n", "idiom", "software", "cooperative")
	for _, idiom := range []repro.Idiom{
		repro.IdiomChain, repro.IdiomRoot, repro.IdiomQueue, repro.IdiomFull,
	} {
		row := fmt.Sprintf("%8v", idiom)
		for _, scheme := range []repro.Scheme{repro.SchemeSoftware, repro.SchemeCooperative} {
			res, err := repro.Simulate(repro.Config{
				Bench: "health", Scheme: scheme, Idiom: idiom,
			})
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %10.2f", float64(res.CPU.Cycles)/float64(base.CPU.Cycles))
		}
		fmt.Println(row)
	}
	fmt.Println("\nchain jumping is the general-purpose winner (paper section 4.1);")
	fmt.Println("root jumping avoids creation cost but only reaches one list ahead.")
}
