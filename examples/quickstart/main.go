// Quickstart: simulate the paper's flagship workload (health) without
// prefetching and with cooperative jump-pointer prefetching, and print
// the speedup and memory-stall reduction.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	base, err := repro.Split(repro.Config{
		Bench:  "health",
		Scheme: repro.SchemeNone,
	})
	if err != nil {
		log.Fatal(err)
	}
	coop, err := repro.Split(repro.Config{
		Bench:  "health",
		Scheme: repro.SchemeCooperative,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("health on the ISCA'99 Table 2 machine")
	fmt.Printf("  unoptimized: %9d cycles (%2.0f%% memory stall)\n",
		base.Total, 100*float64(base.Memory())/float64(base.Total))
	fmt.Printf("  cooperative: %9d cycles (%2.0f%% memory stall)\n",
		coop.Total, 100*float64(coop.Memory())/float64(coop.Total))
	fmt.Printf("  speedup %.0f%%, memory stall cut %.0f%%\n",
		100*(float64(base.Total)/float64(coop.Total)-1),
		100*(1-float64(coop.Memory())/float64(base.Memory())))

	// The prefetch engine's own view of the run.
	if e := coop.Full.Engine; e != nil {
		fmt.Printf("  engine: %d prefetches issued, %d served demand from the prefetch buffer\n",
			e.IssuedPrefetch, coop.Full.Cache.PBHits)
	}
}
