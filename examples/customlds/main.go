// Customlds: author a new pointer-chasing workload against the
// simulator's kernel-builder API and measure how hardware jump-pointer
// prefetching handles it with no code changes.
//
// The kernel-builder (internal/ir) is the module's workload extension
// point: each Asm call functionally executes against the simulated heap
// *and* emits a timed instruction, so hardware prefetch engines can
// chase the very pointers the workload builds.  This example builds a
// skip-list-free singly linked list of 12k nodes, scrambles it, and
// walks it ten times.
package main

import (
	"fmt"
	"log"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dbp"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
)

// Node layout: value(0) next(4) = 8 -> class 8 (no padding!), so we
// declare 12 bytes to give the hardware a jump-pointer slot at 12.
const (
	nValue = 0
	nNext  = 4
)

const (
	sBuild = ir.FirstUserSite + iota*8
	sWalk
)

const (
	nodes  = 12000
	passes = 10
)

func kernel(a *ir.Asm) {
	// Build the list, then scramble the next-pointers so consecutive
	// nodes sit on unrelated cache lines (a churned steady state).
	addrs := make([]ir.Val, nodes)
	for i := range addrs {
		addrs[i] = a.Malloc(12)
		a.Store(sBuild, addrs[i], nValue, ir.Imm(uint32(i)))
	}
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	seed := uint32(12345)
	for i := nodes - 1; i > 0; i-- {
		seed = seed*1664525 + 1013904223
		j := int(seed) % (i + 1)
		if j < 0 {
			j = -j
		}
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i+1 < nodes; i++ {
		a.Store(sBuild+1, addrs[perm[i]], nNext, addrs[perm[i+1]])
	}

	// Walk the scrambled list: the classic serialized pointer chase.
	for p := 0; p < passes; p++ {
		n := addrs[perm[0]]
		for i := 0; i < nodes; i++ {
			v := a.Load(sWalk, n, nValue, ir.FLDS)
			a.Alu(sWalk+1, v.U32()+1, v, ir.Val{})
			nx := a.Load(sWalk+2, n, nNext, ir.FLDS)
			a.Branch(sWalk+3, i+1 < nodes, sWalk, nx, ir.Val{})
			if nx.IsNil() {
				break
			}
			n = nx
		}
	}
}

func run(hw bool) uint64 {
	img := mem.NewImage()
	alloc := heap.New(img)
	params := cache.Defaults()
	params.EnablePB = hw
	hier := cache.New(params)
	pred := bpred.New(bpred.Defaults())

	var eng cpu.PrefetchEngine
	if hw {
		eng = core.NewHWEngine(dbp.Defaults(), core.DefaultHWConfig(), hier, alloc)
	}
	gen := ir.NewGen(alloc, kernel)
	c := cpu.New(cpu.Defaults(), hier, pred, eng)
	stats := c.Run(gen)
	return stats.Cycles
}

func main() {
	base := run(false)
	hw := run(true)
	fmt.Printf("custom scrambled-list walk (%d nodes x %d passes)\n", nodes, passes)
	fmt.Printf("  no prefetching:   %d cycles\n", base)
	fmt.Printf("  hardware JPP:     %d cycles (%.0f%% speedup, zero code changes)\n",
		hw, 100*(float64(base)/float64(hw)-1))
	if hw >= base {
		log.Fatal("expected hardware JPP to speed up a scrambled list walk")
	}
}
