// Latency: the Figure 7 experiment as a library client.  Sweeps main
// memory latency from 70 to 280 cycles on health and shows that
// jump-pointer prefetching keeps helping as the processor/memory gap
// grows, while serial schemes (DBP) fade.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("health: normalized execution time vs memory latency")
	fmt.Printf("%8s %8s %8s %8s %8s\n", "latency", "dbp", "sw", "coop", "hw")
	for _, lat := range []int{70, 140, 280} {
		base, err := repro.Simulate(repro.Config{
			Bench: "health", Scheme: repro.SchemeNone, MemLatency: lat,
		})
		if err != nil {
			log.Fatal(err)
		}
		row := fmt.Sprintf("%8d", lat)
		for _, scheme := range []repro.Scheme{
			repro.SchemeDBP, repro.SchemeSoftware,
			repro.SchemeCooperative, repro.SchemeHardware,
		} {
			res, err := repro.Simulate(repro.Config{
				Bench: "health", Scheme: scheme, MemLatency: lat,
			})
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf(" %8.2f", float64(res.CPU.Cycles)/float64(base.CPU.Cycles))
		}
		fmt.Println(row)
	}
	fmt.Println("\n(1.00 = unoptimized at the same latency; lower is better)")
}
