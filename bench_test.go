package repro

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dbp"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/olden"
	"repro/internal/stats"
)

// The benchmarks below regenerate each of the paper's evaluation
// artifacts (one per table and figure) and report the headline numbers
// as custom metrics, plus ablations over the design choices called out
// in DESIGN.md.  They run the small input so `go test -bench=.`
// finishes in minutes; `cmd/jppreport` regenerates the full-size
// artifacts recorded in EXPERIMENTS.md.

const benchSize = olden.SizeSmall

func reportSpeedup(b *testing.B, base, opt uint64) {
	b.ReportMetric(100*(float64(base)/float64(opt)-1), "%speedup")
}

// BenchmarkTable1 regenerates the benchmark characterization.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := harness.Table1(harness.ExpConfig{Size: benchSize})
		if err != nil {
			b.Fatal(err)
		}
		_ = rep
	}
}

// BenchmarkFig4 regenerates the idiom comparison.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig4(harness.ExpConfig{Size: benchSize}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the implementation comparison and reports
// the cooperative-JPP speedup on health.  The serial/parallel pair
// measures the batch runner's wall-clock win on the heaviest artifact
// (~100 simulations); the reports themselves are byte-identical (see
// harness.TestParallelSerialIdenticalReports).
func BenchmarkFig5(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.Fig5(harness.ExpConfig{Size: benchSize, Workers: cfg.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunnerWorkers sweeps the batch runner's worker bound over
// one Figure 5 benchmark group (health under every scheme, decomposed),
// exposing harness throughput as a first-class measurement.
func BenchmarkRunnerWorkers(b *testing.B) {
	var specs []harness.Spec
	for _, scheme := range core.Schemes() {
		specs = append(specs, harness.Spec{
			Bench:  "health",
			Params: olden.Params{Scheme: scheme, Size: benchSize},
		})
	}
	for _, workers := range []int{1, 2, 4, 0} {
		name := "j" + string([]byte{byte('0' + workers)})
		if workers == 0 {
			name = "jmax"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				items := harness.DecomposeBatch(specs, workers)
				for _, it := range items {
					if it.Err != nil {
						b.Fatal(it.Err)
					}
				}
			}
		})
	}
}

// BenchmarkFig6 regenerates the bandwidth comparison.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig6(harness.ExpConfig{Size: benchSize}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates the latency-scaling study.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig7(harness.ExpConfig{Size: benchSize}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCosts regenerates the overhead quantification.
func BenchmarkCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Costs(harness.ExpConfig{Size: benchSize}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSchemeCycles runs one benchmark/scheme pair per iteration and
// reports simulated cycles.
func benchSchemeCycles(b *testing.B, bench string, scheme Scheme, cfgfn func(*Config)) uint64 {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := Config{Bench: bench, Scheme: scheme, Size: benchSize}
		if cfgfn != nil {
			cfgfn(&cfg)
		}
		res, err := Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.CPU.Cycles
	}
	b.ReportMetric(float64(cycles), "simcycles")
	return cycles
}

// BenchmarkHealthSchemes reports simulated cycles per scheme on health
// (the per-bar data of Figure 5's flagship group).
func BenchmarkHealthSchemes(b *testing.B) {
	for _, scheme := range core.Schemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			benchSchemeCycles(b, "health", scheme, nil)
		})
	}
}

// BenchmarkAblationInterval sweeps the jump-pointer interval (DESIGN.md
// ablation; the paper's future-work section asks for exactly this
// study).
func BenchmarkAblationInterval(b *testing.B) {
	for _, interval := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(intervalName(interval), func(b *testing.B) {
			benchSchemeCycles(b, "health", SchemeCooperative, func(c *Config) {
				c.Interval = interval
			})
		})
	}
}

func intervalName(i int) string {
	return string([]byte{'i', byte('0' + i/10), byte('0' + i%10)})
}

// BenchmarkAblationPB compares prefetching into the dedicated prefetch
// buffer against filling the L1 directly.
func BenchmarkAblationPB(b *testing.B) {
	run := func(b *testing.B, enable bool) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			m := cache.Defaults()
			m.EnablePB = enable
			spec := harness.Spec{
				Bench:  "health",
				Params: olden.Params{Scheme: SchemeCooperative, Size: benchSize},
				Mem:    &m,
			}
			res, err := harness.Run(spec)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.CPU.Cycles
		}
		b.ReportMetric(float64(cycles), "simcycles")
	}
	b.Run("buffer", func(b *testing.B) { run(b, true) })
	// Note: disabling the PB in the spec is overridden by the scheme
	// wiring (hardware schemes enable it); the direct-fill path is
	// exercised by the software scheme instead.
	b.Run("l1direct", func(b *testing.B) {
		benchSchemeCycles(b, "health", SchemeSoftware, nil)
	})
}

// BenchmarkAblationDP sweeps the dependence predictor capacity.
func BenchmarkAblationDP(b *testing.B) {
	for _, entries := range []int{64, 256, 1024} {
		name := "dp" + string([]byte{byte('0' + entries/1000%10), byte('0' + entries/100%10), byte('0' + entries/10%10), byte('0' + entries%10)})
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				d := dbp.Defaults()
				d.DPEntries = entries
				spec := harness.Spec{
					Bench:  "health",
					Params: olden.Params{Scheme: SchemeCooperative, Size: benchSize},
					DBP:    &d,
				}
				res, err := harness.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.CPU.Cycles
			}
			b.ReportMetric(float64(cycles), "simcycles")
		})
	}
}

// BenchmarkAblationJPStorage compares jump-pointer storage in allocator
// padding against a bounded on-chip table (the section 3.3 discussion).
func BenchmarkAblationJPStorage(b *testing.B) {
	run := func(b *testing.B, onChip int) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			h := core.DefaultHWConfig()
			h.OnChipTable = onChip
			spec := harness.Spec{
				Bench:  "health",
				Params: olden.Params{Scheme: SchemeHardware, Size: benchSize},
				HW:     &h,
			}
			res, err := harness.Run(spec)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.CPU.Cycles
		}
		b.ReportMetric(float64(cycles), "simcycles")
	}
	b.Run("padding", func(b *testing.B) { run(b, 0) })
	b.Run("onchip256", func(b *testing.B) { run(b, 256) })
	b.Run("onchip16k", func(b *testing.B) { run(b, 16384) })
}

// BenchmarkSimulatorThroughput measures the simulator itself: simulated
// cycles per host second on the flagship workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles, insts uint64
	for i := 0; i < b.N; i++ {
		res, err := Simulate(Config{Bench: "health", Scheme: SchemeCooperative, Size: benchSize})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.CPU.Cycles
		insts += res.CPU.Insts
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "siminsts/s")
}

// BenchmarkExtensions runs the paper's section 6 future-work
// generalizations (database trees, sparse matrices) under cooperative
// JPP.
func BenchmarkExtensions(b *testing.B) {
	for _, bench := range []string{"btree", "spmv"} {
		for _, scheme := range []Scheme{SchemeNone, SchemeCooperative} {
			b.Run(bench+"/"+scheme.String(), func(b *testing.B) {
				benchSchemeCycles(b, bench, scheme, nil)
			})
		}
	}
}

// BenchmarkAblationAdaptiveInterval compares the fixed Table 2 interval
// against the section 6 adaptive-interval controller at two memory
// latencies (the long latency is where adaptation pays).
func BenchmarkAblationAdaptiveInterval(b *testing.B) {
	run := func(b *testing.B, adaptive bool, lat int) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			h := core.DefaultHWConfig()
			h.AdaptiveInterval = adaptive
			m := cache.Defaults()
			m.MemLatency = lat
			spec := harness.Spec{
				Bench:  "health",
				Params: olden.Params{Scheme: SchemeHardware, Size: benchSize},
				HW:     &h,
				Mem:    &m,
			}
			res, err := harness.Run(spec)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.CPU.Cycles
		}
		b.ReportMetric(float64(cycles), "simcycles")
	}
	b.Run("fixed8/lat70", func(b *testing.B) { run(b, false, 70) })
	b.Run("adaptive/lat70", func(b *testing.B) { run(b, true, 70) })
	b.Run("fixed8/lat280", func(b *testing.B) { run(b, false, 280) })
	b.Run("adaptive/lat280", func(b *testing.B) { run(b, true, 280) })
}

// benchDoc is the BENCH_jpp.json layout: the per-run stats snapshots
// plus a speedup summary keyed bench -> scheme.  The snapshots field
// name is part of the schema contract — stats.ParseSnapshots (and so
// `jppreport -stats BENCH_jpp.json`) unwraps it directly.
//
// sim_mips records simulator throughput (millions of simulated
// instructions per host wall-clock second) per bench -> scheme, with
// sim_mips_geomean summarizing the suite.  The CI benchmark smoke step
// asserts the geomean is present and positive after regeneration, which
// catches gross simulator-speed regressions without a dedicated
// benchmarking box.  Batch runs share host cores, so these understate
// serial throughput; BenchmarkCore is the headline measurement.
type benchDoc struct {
	Version        int                           `json:"version"`
	Size           string                        `json:"size"`
	Snapshots      []stats.Snapshot              `json:"snapshots"`
	SpeedupPct     map[string]map[string]float64 `json:"speedup_pct"`
	SimMIPS        map[string]map[string]float64 `json:"sim_mips"`
	SimMIPSGeomean float64                       `json:"sim_mips_geomean"`
}

// TestEmitBenchJSON regenerates BENCH_jpp.json at the repo root: every
// scheme over a benchmark set, with each run's validated stats snapshot
// and the speedup-over-baseline summary.  Short mode covers the whole
// suite at the test size (the CI smoke run); the default run uses the
// small inputs on the flagship benchmarks, where the paper's effects
// are visible, and additionally sweeps the large inputs under the
// baseline and cooperative schemes — the paper-scale comparison the
// event-driven core makes affordable (each large run is ~1s).
// Snapshots are self-describing (bench/scheme/size), so the mixed-size
// document stays consumable through stats.ParseSnapshots.
func TestEmitBenchJSON(t *testing.T) {
	size := benchSize
	benches := []string{"health", "mst", "perimeter", "treeadd", "em3d"}
	benches = append(benches, kernels.Names()...)
	largeBenches := benches
	if testing.Short() {
		size = olden.SizeTest
		benches = benches[:0]
		for _, bm := range harness.AllBenches() {
			benches = append(benches, bm.Name)
		}
		largeBenches = nil
	}

	var specs []harness.Spec
	for _, bench := range benches {
		for _, scheme := range core.Schemes() {
			specs = append(specs, harness.Spec{
				Bench:  bench,
				Params: olden.Params{Scheme: scheme, Size: size},
			})
		}
	}
	for _, bench := range largeBenches {
		for _, scheme := range []core.Scheme{core.SchemeNone, core.SchemeCooperative} {
			specs = append(specs, harness.Spec{
				Bench:  bench,
				Params: olden.Params{Scheme: scheme, Size: olden.SizeLarge},
			})
		}
	}
	items := harness.RunBatch(specs, 0)

	// Summary-map key: plain bench name for the primary sweep, with an
	// @size suffix for the extra large-input runs so the two sweeps of
	// the same bench never collide.
	docKey := func(s harness.Spec) string {
		if s.Params.Size == size {
			return s.Bench
		}
		return s.Bench + "@" + s.Params.Size.String()
	}

	doc := benchDoc{
		Version:    stats.SchemaVersion,
		Size:       size.String(),
		SpeedupPct: make(map[string]map[string]float64),
		SimMIPS:    make(map[string]map[string]float64),
	}
	baseline := make(map[string]uint64)
	logMIPSSum, mipsRuns := 0.0, 0
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("%s/%v: %v", specs[i].Bench, specs[i].Params.Scheme, it.Err)
		}
		snap := it.Result.Stats
		if err := snap.Validate(); err != nil {
			t.Fatalf("%s/%v: %v", specs[i].Bench, specs[i].Params.Scheme, err)
		}
		doc.Snapshots = append(doc.Snapshots, snap)
		key := docKey(specs[i])
		if specs[i].Params.Scheme == core.SchemeNone {
			baseline[key] = snap.Cycles
		}
		if sec := it.Elapsed.Seconds(); sec > 0 && snap.Insts > 0 {
			mips := float64(snap.Insts) / sec / 1e6
			m := doc.SimMIPS[key]
			if m == nil {
				m = make(map[string]float64)
				doc.SimMIPS[key] = m
			}
			m[specs[i].Params.Scheme.String()] = mips
			logMIPSSum += math.Log(mips)
			mipsRuns++
		}
	}
	if mipsRuns > 0 {
		doc.SimMIPSGeomean = math.Exp(logMIPSSum / float64(mipsRuns))
	}
	if doc.SimMIPSGeomean <= 0 {
		t.Fatalf("sim_mips_geomean = %v, want > 0", doc.SimMIPSGeomean)
	}
	for i, it := range items {
		spec := specs[i]
		key := docKey(spec)
		base, cycles := baseline[key], it.Result.Stats.Cycles
		if spec.Params.Scheme == core.SchemeNone || base == 0 || cycles == 0 {
			continue
		}
		m := doc.SpeedupPct[key]
		if m == nil {
			m = make(map[string]float64)
			doc.SpeedupPct[key] = m
		}
		m[spec.Params.Scheme.String()] = 100 * (float64(base)/float64(cycles) - 1)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_jpp.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	// Round-trip: the emitted file must be consumable through the same
	// entry point jppreport uses, with every snapshot still valid.
	raw, err := os.ReadFile("BENCH_jpp.json")
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := stats.ParseSnapshots(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != len(specs) {
		t.Fatalf("BENCH_jpp.json holds %d snapshots, want %d", len(snaps), len(specs))
	}
	for i, s := range snaps {
		if err := s.Validate(); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	t.Logf("wrote BENCH_jpp.json: %d snapshots (%s size), %d benches", len(snaps), doc.Size, len(benches))
}
