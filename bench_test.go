package repro

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dbp"
	"repro/internal/harness"
	"repro/internal/olden"
)

// The benchmarks below regenerate each of the paper's evaluation
// artifacts (one per table and figure) and report the headline numbers
// as custom metrics, plus ablations over the design choices called out
// in DESIGN.md.  They run the small input so `go test -bench=.`
// finishes in minutes; `cmd/jppreport` regenerates the full-size
// artifacts recorded in EXPERIMENTS.md.

const benchSize = olden.SizeSmall

func reportSpeedup(b *testing.B, base, opt uint64) {
	b.ReportMetric(100*(float64(base)/float64(opt)-1), "%speedup")
}

// BenchmarkTable1 regenerates the benchmark characterization.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := harness.Table1(harness.ExpConfig{Size: benchSize})
		if err != nil {
			b.Fatal(err)
		}
		_ = rep
	}
}

// BenchmarkFig4 regenerates the idiom comparison.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig4(harness.ExpConfig{Size: benchSize}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the implementation comparison and reports
// the cooperative-JPP speedup on health.  The serial/parallel pair
// measures the batch runner's wall-clock win on the heaviest artifact
// (~100 simulations); the reports themselves are byte-identical (see
// harness.TestParallelSerialIdenticalReports).
func BenchmarkFig5(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.Fig5(harness.ExpConfig{Size: benchSize, Workers: cfg.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunnerWorkers sweeps the batch runner's worker bound over
// one Figure 5 benchmark group (health under every scheme, decomposed),
// exposing harness throughput as a first-class measurement.
func BenchmarkRunnerWorkers(b *testing.B) {
	var specs []harness.Spec
	for _, scheme := range core.Schemes() {
		specs = append(specs, harness.Spec{
			Bench:  "health",
			Params: olden.Params{Scheme: scheme, Size: benchSize},
		})
	}
	for _, workers := range []int{1, 2, 4, 0} {
		name := "j" + string([]byte{byte('0' + workers)})
		if workers == 0 {
			name = "jmax"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				items := harness.DecomposeBatch(specs, workers)
				for _, it := range items {
					if it.Err != nil {
						b.Fatal(it.Err)
					}
				}
			}
		})
	}
}

// BenchmarkFig6 regenerates the bandwidth comparison.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig6(harness.ExpConfig{Size: benchSize}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7 regenerates the latency-scaling study.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig7(harness.ExpConfig{Size: benchSize}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCosts regenerates the overhead quantification.
func BenchmarkCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Costs(harness.ExpConfig{Size: benchSize}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSchemeCycles runs one benchmark/scheme pair per iteration and
// reports simulated cycles.
func benchSchemeCycles(b *testing.B, bench string, scheme Scheme, cfgfn func(*Config)) uint64 {
	b.Helper()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := Config{Bench: bench, Scheme: scheme, Size: benchSize}
		if cfgfn != nil {
			cfgfn(&cfg)
		}
		res, err := Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.CPU.Cycles
	}
	b.ReportMetric(float64(cycles), "simcycles")
	return cycles
}

// BenchmarkHealthSchemes reports simulated cycles per scheme on health
// (the per-bar data of Figure 5's flagship group).
func BenchmarkHealthSchemes(b *testing.B) {
	for _, scheme := range core.Schemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			benchSchemeCycles(b, "health", scheme, nil)
		})
	}
}

// BenchmarkAblationInterval sweeps the jump-pointer interval (DESIGN.md
// ablation; the paper's future-work section asks for exactly this
// study).
func BenchmarkAblationInterval(b *testing.B) {
	for _, interval := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(intervalName(interval), func(b *testing.B) {
			benchSchemeCycles(b, "health", SchemeCooperative, func(c *Config) {
				c.Interval = interval
			})
		})
	}
}

func intervalName(i int) string {
	return string([]byte{'i', byte('0' + i/10), byte('0' + i%10)})
}

// BenchmarkAblationPB compares prefetching into the dedicated prefetch
// buffer against filling the L1 directly.
func BenchmarkAblationPB(b *testing.B) {
	run := func(b *testing.B, enable bool) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			m := cache.Defaults()
			m.EnablePB = enable
			spec := harness.Spec{
				Bench:  "health",
				Params: olden.Params{Scheme: SchemeCooperative, Size: benchSize},
				Mem:    &m,
			}
			res, err := harness.Run(spec)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.CPU.Cycles
		}
		b.ReportMetric(float64(cycles), "simcycles")
	}
	b.Run("buffer", func(b *testing.B) { run(b, true) })
	// Note: disabling the PB in the spec is overridden by the scheme
	// wiring (hardware schemes enable it); the direct-fill path is
	// exercised by the software scheme instead.
	b.Run("l1direct", func(b *testing.B) {
		benchSchemeCycles(b, "health", SchemeSoftware, nil)
	})
}

// BenchmarkAblationDP sweeps the dependence predictor capacity.
func BenchmarkAblationDP(b *testing.B) {
	for _, entries := range []int{64, 256, 1024} {
		name := "dp" + string([]byte{byte('0' + entries/1000%10), byte('0' + entries/100%10), byte('0' + entries/10%10), byte('0' + entries%10)})
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				d := dbp.Defaults()
				d.DPEntries = entries
				spec := harness.Spec{
					Bench:  "health",
					Params: olden.Params{Scheme: SchemeCooperative, Size: benchSize},
					DBP:    &d,
				}
				res, err := harness.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.CPU.Cycles
			}
			b.ReportMetric(float64(cycles), "simcycles")
		})
	}
}

// BenchmarkAblationJPStorage compares jump-pointer storage in allocator
// padding against a bounded on-chip table (the section 3.3 discussion).
func BenchmarkAblationJPStorage(b *testing.B) {
	run := func(b *testing.B, onChip int) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			h := core.DefaultHWConfig()
			h.OnChipTable = onChip
			spec := harness.Spec{
				Bench:  "health",
				Params: olden.Params{Scheme: SchemeHardware, Size: benchSize},
				HW:     &h,
			}
			res, err := harness.Run(spec)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.CPU.Cycles
		}
		b.ReportMetric(float64(cycles), "simcycles")
	}
	b.Run("padding", func(b *testing.B) { run(b, 0) })
	b.Run("onchip256", func(b *testing.B) { run(b, 256) })
	b.Run("onchip16k", func(b *testing.B) { run(b, 16384) })
}

// BenchmarkSimulatorThroughput measures the simulator itself: simulated
// cycles per host second on the flagship workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles, insts uint64
	for i := 0; i < b.N; i++ {
		res, err := Simulate(Config{Bench: "health", Scheme: SchemeCooperative, Size: benchSize})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.CPU.Cycles
		insts += res.CPU.Insts
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "siminsts/s")
}

// BenchmarkExtensions runs the paper's section 6 future-work
// generalizations (database trees, sparse matrices) under cooperative
// JPP.
func BenchmarkExtensions(b *testing.B) {
	for _, bench := range []string{"btree", "spmv"} {
		for _, scheme := range []Scheme{SchemeNone, SchemeCooperative} {
			b.Run(bench+"/"+scheme.String(), func(b *testing.B) {
				benchSchemeCycles(b, bench, scheme, nil)
			})
		}
	}
}

// BenchmarkAblationAdaptiveInterval compares the fixed Table 2 interval
// against the section 6 adaptive-interval controller at two memory
// latencies (the long latency is where adaptation pays).
func BenchmarkAblationAdaptiveInterval(b *testing.B) {
	run := func(b *testing.B, adaptive bool, lat int) {
		var cycles uint64
		for i := 0; i < b.N; i++ {
			h := core.DefaultHWConfig()
			h.AdaptiveInterval = adaptive
			m := cache.Defaults()
			m.MemLatency = lat
			spec := harness.Spec{
				Bench:  "health",
				Params: olden.Params{Scheme: SchemeHardware, Size: benchSize},
				HW:     &h,
				Mem:    &m,
			}
			res, err := harness.Run(spec)
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.CPU.Cycles
		}
		b.ReportMetric(float64(cycles), "simcycles")
	}
	b.Run("fixed8/lat70", func(b *testing.B) { run(b, false, 70) })
	b.Run("adaptive/lat70", func(b *testing.B) { run(b, true, 70) })
	b.Run("fixed8/lat280", func(b *testing.B) { run(b, false, 280) })
	b.Run("adaptive/lat280", func(b *testing.B) { run(b, true, 280) })
}
