// Command jppd is the simulation service daemon: a long-running HTTP
// server that accepts experiment specs, executes them on a
// worker-per-core sharded pool with a bounded job queue, and memoizes
// every result in a content-addressed cache (see internal/server).
//
// Usage:
//
//	jppd [-addr 127.0.0.1:8080] [-workers 0] [-queue 0] [-epoch 0]
//	     [-cachedir DIR] [-job-timeout 0] [-maxcycles 0]
//
// API (JSON everywhere):
//
//	POST /v1/jobs          submit a spec; 202 queued, 200 cache hit,
//	                       429 + Retry-After under backpressure
//	GET  /v1/jobs/{id}     job status, error, and snapshot when done
//	GET  /v1/results/{key} the cached stats.Snapshot, byte-identical
//	GET  /v1/stats         versioned service counters
//
// With -cachedir the result store persists across restarts, so a
// restarted daemon re-serves every previously simulated point without
// re-running it.  SIGINT/SIGTERM trigger a graceful drain: accepted
// jobs finish and the final epoch is flushed before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jppd:", err)
		os.Exit(1)
	}
}

// Test hooks: serveReady (when non-nil) receives the bound address once
// the listener is up, and serveStop (when non-nil) triggers the same
// graceful shutdown as SIGINT.
var (
	serveReady chan<- string
	serveStop  <-chan struct{}
)

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jppd", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers    = fs.Int("workers", 0, "worker shards (0 = one per core)")
		queue      = fs.Int("queue", 0, "job queue depth (0 = 4x workers)")
		epoch      = fs.Int("epoch", 0, "completions per epoch merge (0 = 8)")
		cacheDir   = fs.String("cachedir", "", "persist the result cache in this directory")
		jobTimeout = fs.Duration("job-timeout", 0, "default per-job deadline (0 = none)")
		maxCycles  = fs.Uint64("maxcycles", 0, "simulated-cycle backstop per job (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	srv, err := server.New(server.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		EpochSize:  *epoch,
		CacheDir:   *cacheDir,
		JobTimeout: *jobTimeout,
		MaxCycles:  *maxCycles,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(out, "jppd: listening on %s (%d workers, queue %d, epoch %d)\n",
		ln.Addr(), st.Workers, st.QueueCap, st.EpochSize)

	hs := &http.Server{Handler: srv}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go func() {
		select {
		case <-ctx.Done():
		case <-serveStop:
			// A nil serveStop blocks forever, leaving only the signal
			// path; tests close a real channel here.
		}
		shutdownCtx, done := context.WithTimeout(context.Background(), 30*time.Second)
		defer done()
		hs.Shutdown(shutdownCtx)
	}()
	if serveReady != nil {
		serveReady <- ln.Addr().String()
	}

	err = hs.Serve(ln)
	srv.Close() // drain accepted jobs, flush the final epoch
	final := srv.Stats()
	fmt.Fprintf(out, "jppd: drained: %d done, %d failed, %d runs, %d cache hits / %d misses\n",
		final.Jobs.Done, final.Jobs.Failed, final.Runs.Executed, final.Cache.Hits, final.Cache.Misses)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}
