package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-queue", "notanumber"},
		{"-maxcycles", "-1"},
		{"-nosuchflag"},
		{"-workers", "2", "stray-arg"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunHelp(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-h"}, &out)
	if err == nil {
		t.Fatal("-h returned nil")
	}
	for _, flag := range []string{"-addr", "-workers", "-queue", "-cachedir", "-job-timeout"} {
		if !strings.Contains(out.String(), flag) {
			t.Errorf("usage missing %s:\n%s", flag, out.String())
		}
	}
}

func TestRunBadListenAddr(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-addr", "256.0.0.1:http-nope"}, &out); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

// TestDaemonLifecycle boots the real daemon on an ephemeral port,
// drives one job through the HTTP API, and shuts it down gracefully.
func TestDaemonLifecycle(t *testing.T) {
	ready := make(chan string, 1)
	stop := make(chan struct{})
	serveReady, serveStop = ready, stop
	defer func() { serveReady, serveStop = nil, nil }()

	var out strings.Builder
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-epoch", "1"}, &out)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("daemon exited early: %v\n%s", err, out.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"bench":"health","scheme":"coop","size":"test"}`))
	if err != nil {
		t.Fatal(err)
	}
	var sub server.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var jr server.JobResponse
		r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, sub.ID))
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r.Body).Decode(&jr)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if jr.Status == server.StateDone {
			break
		}
		if jr.Status == server.StateFailed {
			t.Fatalf("job failed: %s", jr.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", jr.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}

	r, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Version != server.StatsVersion || st.Runs.Executed != 1 {
		t.Fatalf("stats: version=%d runs=%d", st.Version, st.Runs.Executed)
	}

	close(stop)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never shut down")
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "drained") {
		t.Errorf("daemon log missing lifecycle lines:\n%s", out.String())
	}
}
