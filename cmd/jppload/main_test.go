package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "0"},
		{"-epochs", "0"},
		{"-clients", "-1"},
		{"-zipf", "1.0"},
		{"-zipf", "0.9"},
		{"-size", "enormous"},
		{"-benches", "health,nosuchbench"},
		{"-schemes", "coop,warp"},
		{"-schemes", ""},
		{"-engines", "dbp,nosuchengine"},
		{"-check", "-epochs", "1"},
		{"-nosuchflag"},
		{"-n", "4", "stray-arg"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunHelp(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err == nil {
		t.Fatal("-h returned nil")
	}
	for _, flag := range []string{"-addr", "-zipf", "-epochs", "-check", "-benches"} {
		if !strings.Contains(out.String(), flag) {
			t.Errorf("usage missing %s:\n%s", flag, out.String())
		}
	}
}

func TestBuildDeckCrossProduct(t *testing.T) {
	deck, err := buildDeck("health,mst", "none,coop", "stride", "test", 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2 benches x 2 schemes x (default engine + stride) = 8.
	if len(deck) != 8 {
		t.Fatalf("deck size = %d, want 8", len(deck))
	}
	for _, d := range deck {
		if d.Size != "test" {
			t.Fatalf("deck entry lost size: %+v", d)
		}
	}
}

// TestLoadGeneratorDemo is the acceptance demo: replaying a zipf mix
// against an in-process server, the second epoch must be served mostly
// from the content-addressed cache (hit rate > 50%) and sustain
// strictly more runs/sec than the cold first epoch.  -check makes the
// binary itself enforce this; the test re-asserts from the JSON so a
// report/check mismatch cannot slip through.
func TestLoadGeneratorDemo(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-n", "48", "-epochs", "2", "-clients", "4", "-zipf", "1.3",
		"-seed", "7", "-size", "test", "-benches", "health,mst,treeadd",
		"-check",
	}, &out)
	if err != nil {
		t.Fatalf("jppload -check failed: %v\n%s", err, out.String())
	}

	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.Version != 1 || len(rep.Epochs) != 2 {
		t.Fatalf("report shape: version=%d epochs=%d", rep.Version, len(rep.Epochs))
	}
	first, second := rep.Epochs[0], rep.Epochs[1]
	if first.Completed != 48 || second.Completed != 48 || first.Failed+second.Failed != 0 {
		t.Fatalf("not all requests completed: %+v / %+v", first, second)
	}
	if second.CacheHitRate <= 0.5 {
		t.Errorf("second epoch hit rate %.2f <= 0.50", second.CacheHitRate)
	}
	if second.RunsPerSec <= first.RunsPerSec {
		t.Errorf("second epoch %.1f runs/sec not above first %.1f",
			second.RunsPerSec, first.RunsPerSec)
	}
	if second.LatencyMS.P50 <= 0 || second.LatencyMS.P99 < second.LatencyMS.P50 {
		t.Errorf("degenerate latency percentiles: %+v", second.LatencyMS)
	}
	if rep.Server == nil || rep.Server.Version != 1 {
		t.Fatalf("missing/unversioned server stats in report")
	}
	// Every simulation the server ran was for a distinct canonical spec:
	// single-flight plus the cache cap executed runs at the deck size.
	if rep.Server.Runs.Executed > uint64(rep.Config.DeckSize) {
		t.Errorf("server executed %d runs for a deck of %d distinct specs",
			rep.Server.Runs.Executed, rep.Config.DeckSize)
	}
}

// TestEpochOneDedup: even within the cold epoch, repeated submissions of
// the hot head of the zipf mix must not re-simulate — they land as
// cache hits or coalesce onto the in-flight job.
func TestEpochOneDedup(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-n", "64", "-epochs", "1", "-clients", "8", "-zipf", "2.0",
		"-seed", "3", "-size", "test", "-benches", "health",
	}, &out)
	if err != nil {
		t.Fatalf("jppload failed: %v\n%s", err, out.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	e := rep.Epochs[0]
	if e.Completed != 64 || e.Failed != 0 {
		t.Fatalf("epoch: %+v", e)
	}
	if e.CacheHits+e.Coalesced == 0 {
		t.Errorf("zipf s=2.0 mix of 64 requests over a 5-spec deck produced no dedup: %+v", e)
	}
	if rep.Server.Runs.Executed > uint64(rep.Config.DeckSize) {
		t.Errorf("executed %d runs for %d distinct specs", rep.Server.Runs.Executed, rep.Config.DeckSize)
	}
}
