// Command jppload is the zipf-skewed load generator for the jppd
// simulation service.  It builds a request deck over benchmarks x
// schemes x engines, samples a skewed mix (a few hot specs, a long
// tail — the shape repeated parameter sweeps from many clients
// produce), and replays the identical mix for several epochs from
// concurrent clients, reporting sustained runs/sec, cache hit rate,
// and p50/p95/p99 latency per epoch as machine-readable JSON.
//
// Epoch 1 is the cold pass (the service simulates); later epochs
// measure the content-addressed cache: the same mix should come back
// mostly as hits, faster.  -check exits nonzero unless the final epoch
// beats the first on throughput with a >50% hit rate — the service's
// headline memoization claim, asserted by CI.
//
// Usage:
//
//	jppload [-addr host:port] [-n 256] [-epochs 2] [-clients 8]
//	        [-zipf 1.2] [-seed 1] [-size test] [-benches a,b,...]
//	        [-schemes none,dbp,...] [-engines stride,...] [-check]
//
// With no -addr it starts an in-process server (one worker per core)
// and drives that over loopback, so a single command demonstrates the
// full service without a running daemon.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jppload:", err)
		os.Exit(1)
	}
}

// epochReport is one epoch's aggregate measurements.
type epochReport struct {
	Epoch     int `json:"epoch"`
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Coalesced counts submissions attached to an identical in-flight
	// job (single-flight); CacheHits counts submissions served from the
	// result store with no work scheduled.
	Coalesced    int     `json:"coalesced"`
	CacheHits    int     `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	Retries429   int     `json:"retries_429"`
	RunsPerSec   float64 `json:"runs_per_sec"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	LatencyMS    struct {
		P50 float64 `json:"p50"`
		P95 float64 `json:"p95"`
		P99 float64 `json:"p99"`
	} `json:"latency_ms"`
}

// report is the full machine-readable output.
type report struct {
	Version int `json:"version"`
	Config  struct {
		Addr     string  `json:"addr"`
		Requests int     `json:"requests_per_epoch"`
		Epochs   int     `json:"epochs"`
		Clients  int     `json:"clients"`
		Zipf     float64 `json:"zipf_s"`
		Seed     uint64  `json:"seed"`
		Size     string  `json:"size"`
		DeckSize int     `json:"deck_size"`
	} `json:"config"`
	Epochs []epochReport         `json:"epochs"`
	Server *server.StatsResponse `json:"server_stats,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jppload", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr      = fs.String("addr", "", "jppd address (empty = start an in-process server)")
		n         = fs.Int("n", 256, "requests per epoch")
		epochs    = fs.Int("epochs", 2, "epochs (the same mix is replayed each epoch)")
		clients   = fs.Int("clients", 8, "concurrent client goroutines")
		zipfS     = fs.Float64("zipf", 1.2, "zipf skew s (> 1; larger = hotter head)")
		seed      = fs.Uint64("seed", 1, "mix RNG seed")
		size      = fs.String("size", "test", "workload size: test|small|full|large")
		benches   = fs.String("benches", "", "comma-separated benchmark list (default all)")
		schemes   = fs.String("schemes", "none,dbp,sw,coop,hw", "comma-separated scheme list")
		engines   = fs.String("engines", "", "comma-separated engine overrides mixed in (default none)")
		timeoutMS = fs.Int("timeout-ms", 0, "per-job deadline sent with every request")
		workers   = fs.Int("workers", 0, "in-process server: worker shards (0 = one per core)")
		queue     = fs.Int("queue", 0, "in-process server: queue depth (0 = 4x workers)")
		check     = fs.Bool("check", false, "exit nonzero unless the final epoch beats the first with >50% hit rate")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *n <= 0 || *epochs <= 0 || *clients <= 0 {
		return fmt.Errorf("-n, -epochs and -clients must be positive")
	}
	if *zipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1, got %g", *zipfS)
	}
	if *check && *epochs < 2 {
		return fmt.Errorf("-check needs at least 2 epochs")
	}
	switch *size {
	case "test", "small", "full", "large":
	default:
		return fmt.Errorf("unknown size %q", *size)
	}

	deck, err := buildDeck(*benches, *schemes, *engines, *size, *timeoutMS)
	if err != nil {
		return err
	}

	// The mix is sampled once and replayed every epoch: identical keys,
	// so later epochs measure the cache, not a different workload.
	rng := rand.New(rand.NewSource(int64(*seed)))
	rng.Shuffle(len(deck), func(i, j int) { deck[i], deck[j] = deck[j], deck[i] })
	zipf := rand.NewZipf(rng, *zipfS, 1, uint64(len(deck)-1))
	mix := make([]int, *n)
	for i := range mix {
		mix[i] = int(zipf.Uint64())
	}

	base := *addr
	if base == "" {
		srv, err := server.New(server.Config{Workers: *workers, QueueDepth: *queue})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer func() {
			ln.Close()
			srv.Close()
		}()
		base = ln.Addr().String()
	}
	baseURL := "http://" + strings.TrimPrefix(base, "http://")
	client := &http.Client{Timeout: 5 * time.Minute}

	var rep report
	rep.Version = 1
	rep.Config.Addr = base
	rep.Config.Requests = *n
	rep.Config.Epochs = *epochs
	rep.Config.Clients = *clients
	rep.Config.Zipf = *zipfS
	rep.Config.Seed = *seed
	rep.Config.Size = *size
	rep.Config.DeckSize = len(deck)

	for e := 1; e <= *epochs; e++ {
		er, err := runEpoch(client, baseURL, deck, mix, *clients)
		if err != nil {
			return fmt.Errorf("epoch %d: %w", e, err)
		}
		er.Epoch = e
		rep.Epochs = append(rep.Epochs, er)
	}

	if resp, err := client.Get(baseURL + "/v1/stats"); err == nil {
		var st server.StatsResponse
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			rep.Server = &st
		}
		resp.Body.Close()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s\n", data)

	if *check {
		first, last := rep.Epochs[0], rep.Epochs[len(rep.Epochs)-1]
		if last.Failed > 0 || first.Failed > 0 {
			return fmt.Errorf("check failed: %d/%d failed requests", first.Failed, last.Failed)
		}
		if last.CacheHitRate <= 0.5 {
			return fmt.Errorf("check failed: final epoch hit rate %.2f <= 0.50", last.CacheHitRate)
		}
		if last.RunsPerSec <= first.RunsPerSec {
			return fmt.Errorf("check failed: final epoch %.1f runs/sec not above first epoch %.1f",
				last.RunsPerSec, first.RunsPerSec)
		}
	}
	return nil
}

// buildDeck enumerates the request cross product, validating every name
// client-side so a typo fails fast rather than as n HTTP 400s.
func buildDeck(benches, schemes, engines, size string, timeoutMS int) ([]server.SpecRequest, error) {
	known := map[string]bool{}
	for _, b := range repro.Benchmarks() {
		known[b.Name] = true
	}
	var benchList []string
	if benches == "" {
		for _, b := range repro.Benchmarks() {
			benchList = append(benchList, b.Name)
		}
	} else {
		for _, b := range strings.Split(benches, ",") {
			b = strings.TrimSpace(b)
			if !known[b] {
				return nil, fmt.Errorf("unknown bench %q", b)
			}
			benchList = append(benchList, b)
		}
	}

	schemeSet := map[string]bool{"none": true, "dbp": true, "sw": true, "coop": true, "hw": true}
	var schemeList []string
	for _, s := range strings.Split(schemes, ",") {
		s = strings.TrimSpace(s)
		if !schemeSet[s] {
			return nil, fmt.Errorf("unknown scheme %q (want none|dbp|sw|coop|hw)", s)
		}
		schemeList = append(schemeList, s)
	}
	if len(schemeList) == 0 {
		return nil, fmt.Errorf("empty scheme list")
	}

	engineList := []string{""} // scheme-default engine
	if engines != "" {
		knownEng := map[string]bool{}
		for _, e := range repro.Engines() {
			knownEng[e] = true
		}
		for _, e := range strings.Split(engines, ",") {
			e = strings.TrimSpace(e)
			if !knownEng[e] {
				return nil, fmt.Errorf("unknown engine %q (have %s)", e, strings.Join(repro.Engines(), ", "))
			}
			engineList = append(engineList, e)
		}
	}

	var deck []server.SpecRequest
	for _, b := range benchList {
		for _, s := range schemeList {
			for _, e := range engineList {
				deck = append(deck, server.SpecRequest{
					Bench: b, Scheme: s, Engine: e, Size: size, TimeoutMS: timeoutMS,
				})
			}
		}
	}
	return deck, nil
}

// reqOutcome is one request's client-side measurement.
type reqOutcome struct {
	lat       time.Duration
	cached    bool
	coalesced bool
	retries   int
	err       error
}

// runEpoch replays the mix once through the client pool.
func runEpoch(client *http.Client, baseURL string, deck []server.SpecRequest, mix []int, clients int) (epochReport, error) {
	outcomes := make([]reqOutcome, len(mix))
	idxCh := make(chan int)
	done := make(chan struct{})
	for c := 0; c < clients; c++ {
		go func() {
			for i := range idxCh {
				outcomes[i] = doRequest(client, baseURL, deck[mix[i]])
			}
			done <- struct{}{}
		}()
	}
	start := time.Now()
	for i := range mix {
		idxCh <- i
	}
	close(idxCh)
	for c := 0; c < clients; c++ {
		<-done
	}
	elapsed := time.Since(start)

	var er epochReport
	er.Requests = len(mix)
	er.ElapsedMS = float64(elapsed.Nanoseconds()) / 1e6
	var lats []time.Duration
	for _, o := range outcomes {
		er.Retries429 += o.retries
		if o.err != nil {
			er.Failed++
			continue
		}
		er.Completed++
		lats = append(lats, o.lat)
		if o.cached {
			er.CacheHits++
		}
		if o.coalesced {
			er.Coalesced++
		}
	}
	if er.Completed > 0 {
		er.CacheHitRate = float64(er.CacheHits) / float64(er.Completed)
		er.RunsPerSec = float64(er.Completed) / elapsed.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	er.LatencyMS.P50 = pctMS(lats, 0.50)
	er.LatencyMS.P95 = pctMS(lats, 0.95)
	er.LatencyMS.P99 = pctMS(lats, 0.99)
	return er, nil
}

// pctMS reads the p'th percentile (nearest-rank) of sorted latencies.
func pctMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)-1) + 0.5)
	return float64(sorted[i].Nanoseconds()) / 1e6
}

// doRequest submits one spec and follows it to a terminal state:
// retrying through backpressure, returning immediately on a cache hit,
// polling the job otherwise.
func doRequest(client *http.Client, baseURL string, spec server.SpecRequest) reqOutcome {
	body, err := json.Marshal(spec)
	if err != nil {
		return reqOutcome{err: err}
	}
	start := time.Now()
	var out reqOutcome
	var sub server.SubmitResponse
	for {
		resp, err := client.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return reqOutcome{err: err, retries: out.retries}
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			out.retries++
			// Retry-After has whole-second granularity; under test-size
			// jobs the queue drains in milliseconds, so poll faster.
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			return reqOutcome{err: fmt.Errorf("submit: %d: %s", resp.StatusCode, bytes.TrimSpace(data)), retries: out.retries}
		}
		err = json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if err != nil {
			return reqOutcome{err: err, retries: out.retries}
		}
		break
	}
	out.cached = sub.Cached
	out.coalesced = sub.Coalesced
	if sub.Cached {
		out.lat = time.Since(start)
		return out
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := client.Get(baseURL + "/v1/jobs/" + sub.ID)
		if err != nil {
			return reqOutcome{err: err, retries: out.retries}
		}
		var jr server.JobResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil {
			return reqOutcome{err: err, retries: out.retries}
		}
		switch jr.Status {
		case server.StateDone:
			out.lat = time.Since(start)
			return out
		case server.StateFailed:
			return reqOutcome{err: fmt.Errorf("job %s failed: %s", sub.ID, jr.Error), retries: out.retries}
		}
		if time.Now().After(deadline) {
			return reqOutcome{err: fmt.Errorf("job %s stuck in %s", sub.ID, jr.Status), retries: out.retries}
		}
		time.Sleep(time.Millisecond)
	}
}
