package main

import (
	"testing"

	"repro"
)

func TestParseScheme(t *testing.T) {
	cases := []struct {
		in   string
		want repro.Scheme
	}{
		{"none", repro.SchemeNone},
		{"dbp", repro.SchemeDBP},
		{"sw", repro.SchemeSoftware},
		{"software", repro.SchemeSoftware},
		{"coop", repro.SchemeCooperative},
		{"cooperative", repro.SchemeCooperative},
		{"hw", repro.SchemeHardware},
		{"hardware", repro.SchemeHardware},
	}
	for _, c := range cases {
		got, err := parseScheme(c.in)
		if err != nil {
			t.Errorf("parseScheme(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("parseScheme(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "NONE", "hardwear", "all"} {
		if _, err := parseScheme(bad); err == nil {
			t.Errorf("parseScheme(%q) accepted", bad)
		}
	}
}

func TestParseIdiom(t *testing.T) {
	cases := []struct {
		in   string
		want repro.Idiom
	}{
		{"", repro.IdiomDefault},
		{"queue", repro.IdiomQueue},
		{"full", repro.IdiomFull},
		{"chain", repro.IdiomChain},
		{"root", repro.IdiomRoot},
	}
	for _, c := range cases {
		got, err := parseIdiom(c.in)
		if err != nil {
			t.Errorf("parseIdiom(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("parseIdiom(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"ribs", "Queue", "default"} {
		if _, err := parseIdiom(bad); err == nil {
			t.Errorf("parseIdiom(%q) accepted", bad)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want repro.Size
	}{
		{"test", repro.SizeTest},
		{"small", repro.SizeSmall},
		{"full", repro.SizeFull},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if err != nil {
			t.Errorf("parseSize(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("parseSize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "tiny", "FULL"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}
