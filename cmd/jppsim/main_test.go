package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/stats"
)

func TestParseScheme(t *testing.T) {
	cases := []struct {
		in   string
		want repro.Scheme
	}{
		{"none", repro.SchemeNone},
		{"dbp", repro.SchemeDBP},
		{"sw", repro.SchemeSoftware},
		{"software", repro.SchemeSoftware},
		{"coop", repro.SchemeCooperative},
		{"cooperative", repro.SchemeCooperative},
		{"hw", repro.SchemeHardware},
		{"hardware", repro.SchemeHardware},
	}
	for _, c := range cases {
		got, err := parseScheme(c.in)
		if err != nil {
			t.Errorf("parseScheme(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("parseScheme(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "NONE", "hardwear", "all"} {
		if _, err := parseScheme(bad); err == nil {
			t.Errorf("parseScheme(%q) accepted", bad)
		}
	}
}

func TestParseIdiom(t *testing.T) {
	cases := []struct {
		in   string
		want repro.Idiom
	}{
		{"", repro.IdiomDefault},
		{"queue", repro.IdiomQueue},
		{"full", repro.IdiomFull},
		{"chain", repro.IdiomChain},
		{"root", repro.IdiomRoot},
	}
	for _, c := range cases {
		got, err := parseIdiom(c.in)
		if err != nil {
			t.Errorf("parseIdiom(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("parseIdiom(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"ribs", "Queue", "default"} {
		if _, err := parseIdiom(bad); err == nil {
			t.Errorf("parseIdiom(%q) accepted", bad)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want repro.Size
	}{
		{"test", repro.SizeTest},
		{"small", repro.SizeSmall},
		{"full", repro.SizeFull},
		{"large", repro.SizeLarge},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if err != nil {
			t.Errorf("parseSize(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("parseSize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "tiny", "FULL"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}

func TestRunStatsJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "health", "-scheme", "coop", "-size", "test", "-stats-json"}, &out); err != nil {
		t.Fatal(err)
	}
	snaps, err := stats.ParseSnapshots([]byte(out.String()))
	if err != nil {
		t.Fatalf("output is not a stats snapshot: %v\n%s", err, out.String())
	}
	if len(snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(snaps))
	}
	s := snaps[0]
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Bench != "health" || s.Scheme != "coop" || s.Size != "test" {
		t.Errorf("snapshot misidentifies the run: %s/%s/%s", s.Bench, s.Scheme, s.Size)
	}
	if s.Cycles == 0 {
		t.Error("snapshot has zero cycles")
	}
}

func TestRunStatsJSONWithSplit(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "treeadd", "-scheme", "none", "-size", "test", "-split", "-stats-json"}, &out); err != nil {
		t.Fatal(err)
	}
	snaps, err := stats.ParseSnapshots([]byte(out.String()))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("split -stats-json output unparseable: %v", err)
	}
	if err := snaps[0].Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTextModeIncludesBreakdown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "health", "-scheme", "coop", "-size", "test"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cycle breakdown", "busy=", "ldmiss=", "prefetches"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("text output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{
		{"-scheme", "warp"},
		{"-idiom", "ribs"},
		{"-size", "enormous"},
		{"-bench", "nosuch", "-size", "test"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunValidateMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-validate", "-size", "test", "-vbench", "health,treeadd", "-vprograms", "2"}, &out)
	if err != nil {
		t.Fatalf("validate mode: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"kernel  health",
		"kernel  treeadd",
		"program seed=1",
		"validate: 4 subjects, 0 failure(s)",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("validate output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunValidateModeRejectsBadBench(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-validate", "-size", "test", "-vbench", "nosuch", "-vprograms", "-1"}, &out)
	if err == nil {
		t.Fatalf("unknown bench accepted:\n%s", out.String())
	}
}

// TestRunBothProfiles: -cpuprofile and -memprofile compose — one run
// writes both files, and each parses as a pprof profile (gzip magic).
// A failing heap-profile write must surface as a run error, not be
// swallowed by the deferred writer.
func TestRunBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	heap := filepath.Join(dir, "heap.prof")
	var out strings.Builder
	if err := run([]string{"-bench", "mst", "-scheme", "dbp", "-size", "test",
		"-cpuprofile", cpu, "-memprofile", heap}, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, heap} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
			t.Errorf("%s is not a gzipped pprof profile", p)
		}
	}
	err := run([]string{"-bench", "mst", "-scheme", "dbp", "-size", "test",
		"-memprofile", filepath.Join(dir, "no/such/dir/heap.prof")}, &out)
	if err == nil {
		t.Error("unwritable -memprofile path did not fail the run")
	}
}

// TestRunSampledMode: -sample produces a valid sampled snapshot whose
// instruction count matches the full-fidelity run of the same spec
// (functional execution is complete either way).
func TestRunSampledMode(t *testing.T) {
	var full, sampled strings.Builder
	if err := run([]string{"-bench", "mst", "-scheme", "dbp", "-size", "small", "-stats-json"}, &full); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", "mst", "-scheme", "dbp", "-size", "small", "-sample", "-stats-json"}, &sampled); err != nil {
		t.Fatal(err)
	}
	fs, err := stats.ParseSnapshots([]byte(full.String()))
	if err != nil || len(fs) != 1 {
		t.Fatalf("full snapshot unparseable: %v", err)
	}
	ss, err := stats.ParseSnapshots([]byte(sampled.String()))
	if err != nil || len(ss) != 1 {
		t.Fatalf("sampled snapshot unparseable: %v", err)
	}
	if err := ss[0].Validate(); err != nil {
		t.Fatal(err)
	}
	if !ss[0].Sampled || ss[0].Sampling == nil {
		t.Fatal("-sample run not marked sampled")
	}
	if ss[0].Insts != fs[0].Insts {
		t.Errorf("sampled instruction count %d != full %d", ss[0].Insts, fs[0].Insts)
	}
}
