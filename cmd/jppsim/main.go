// Command jppsim runs one benchmark under one prefetching scheme on the
// simulated Table 2 machine and prints the statistics block.
//
// Usage:
//
//	jppsim -bench health -scheme coop [-idiom chain] [-size full]
//	       [-interval 8] [-memlat 70] [-split]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		bench    = flag.String("bench", "health", "benchmark name (see -list)")
		scheme   = flag.String("scheme", "none", "none|dbp|sw|coop|hw")
		idiom    = flag.String("idiom", "", "queue|full|chain|root (default: representative)")
		size     = flag.String("size", "full", "test|small|full")
		interval = flag.Int("interval", 0, "jump-pointer interval (0 = 8)")
		memlat   = flag.Int("memlat", 0, "main memory latency override")
		split    = flag.Bool("split", false, "also run the compute-time decomposition")
		list     = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, b := range repro.Benchmarks() {
			idioms := make([]string, len(b.Idioms))
			for i, id := range b.Idioms {
				idioms[i] = id.String()
			}
			fmt.Printf("%-10s %-55s idioms=%s passes=%d\n",
				b.Name, b.Description, strings.Join(idioms, ","), b.Traversals)
		}
		return
	}

	cfg := repro.Config{
		Bench:      *bench,
		Interval:   *interval,
		MemLatency: *memlat,
	}
	var err error
	if cfg.Scheme, err = parseScheme(*scheme); err != nil {
		fatal(err)
	}
	if cfg.Idiom, err = parseIdiom(*idiom); err != nil {
		fatal(err)
	}
	if cfg.Size, err = parseSize(*size); err != nil {
		fatal(err)
	}

	if *split {
		d, err := repro.Split(cfg)
		if err != nil {
			fatal(err)
		}
		printResult(d.Full)
		memShare := "n/a"
		if d.Total > 0 {
			memShare = fmt.Sprintf("%.0f%%", 100*float64(d.Memory())/float64(d.Total))
		}
		fmt.Printf("\ndecomposition: total=%d compute=%d memory=%d (%s memory stall)\n",
			d.Total, d.Compute, d.Memory(), memShare)
		return
	}
	res, err := repro.Simulate(cfg)
	if err != nil {
		fatal(err)
	}
	printResult(res)
}

func printResult(r repro.Result) {
	fmt.Printf("bench=%s scheme=%v size=%v\n", r.Spec.Bench, r.Spec.Params.Scheme, r.Spec.Params.Size)
	fmt.Printf("cycles            %d\n", r.CPU.Cycles)
	fmt.Printf("instructions      %d (orig %d + prefetch overhead %d)\n",
		r.CPU.Insts, r.Insts.OrigInsts, r.Insts.OvhdInsts)
	fmt.Printf("IPC               %.3f\n", r.CPU.IPC())
	missRate := "n/a"
	if r.Cache.L1DAccesses > 0 {
		missRate = fmt.Sprintf("%.1f%%",
			100*float64(r.Cache.L1DMisses)/float64(r.Cache.L1DAccesses))
	}
	fmt.Printf("L1D               %d accesses, %d misses (%s)\n",
		r.Cache.L1DAccesses, r.Cache.L1DMisses, missRate)
	fmt.Printf("L2                %d accesses, %d misses\n", r.Cache.L2Accesses, r.Cache.L2Misses)
	fmt.Printf("LDS load misses   %d (other %d), avg in-flight %.2f\n",
		r.CPU.LDSLoadMiss, r.CPU.OtherMiss, r.CPU.AvgMissOverlap())
	fmt.Printf("L1<->L2 traffic   %d bytes (%.2f per orig inst)\n",
		r.Cache.L1L2Bytes, float64(r.Cache.L1L2Bytes)/float64(r.Insts.OrigInsts))
	fmt.Printf("branches          %d cond, %d mispredicted\n",
		r.Bpred.CondBranches, r.Bpred.Mispredicts)
	if r.Engine != nil {
		fmt.Printf("prefetch engine   issued=%d usefulPBhits=%d trained=%d prqDrops=%d\n",
			r.Engine.IssuedPrefetch, r.Cache.PBHits, r.Engine.Trained, r.Engine.PRQDrops)
	}
	if r.HW != nil {
		fmt.Printf("hardware JPP      recurrentPCs=%d jpStores=%d jpLaunches=%d\n",
			r.HW.RecurrentPCs, r.HW.JPStores, r.HW.JPLaunches)
	}
}

func parseScheme(s string) (repro.Scheme, error) {
	switch s {
	case "none":
		return repro.SchemeNone, nil
	case "dbp":
		return repro.SchemeDBP, nil
	case "sw", "software":
		return repro.SchemeSoftware, nil
	case "coop", "cooperative":
		return repro.SchemeCooperative, nil
	case "hw", "hardware":
		return repro.SchemeHardware, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func parseIdiom(s string) (repro.Idiom, error) {
	switch s {
	case "":
		return repro.IdiomDefault, nil
	case "queue":
		return repro.IdiomQueue, nil
	case "full":
		return repro.IdiomFull, nil
	case "chain":
		return repro.IdiomChain, nil
	case "root":
		return repro.IdiomRoot, nil
	}
	return 0, fmt.Errorf("unknown idiom %q", s)
}

func parseSize(s string) (repro.Size, error) {
	switch s {
	case "test":
		return repro.SizeTest, nil
	case "small":
		return repro.SizeSmall, nil
	case "full":
		return repro.SizeFull, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jppsim:", err)
	os.Exit(1)
}
