// Command jppsim runs one benchmark under one prefetching scheme on the
// simulated Table 2 machine and prints the statistics block.
//
// Usage:
//
//	jppsim -bench health -scheme coop [-idiom chain] [-size full]
//	       [-engine stride] [-interval 8] [-memlat 70] [-split] [-stats-json]
//
// -engine attaches a specific prefetch engine from the registry
// (internal/prefetch) instead of the scheme's default, so any workload
// can run under any prefetcher — the basis of the jppreport "shootout"
// experiment.  -engine list prints the registered names.
//
// -validate ignores -bench/-scheme and instead runs the differential
// validation matrix: every benchmark (or the -vbench list) and
// -vprograms random micro-IR programs, each simulated under every
// prefetch scheme with cycle skipping on and off, checked against an
// in-order functional oracle.  It exits nonzero on any divergence.
// -size applies (defaulting to small in this mode).
//
// -stats-json replaces the text block with the versioned stats snapshot
// (cycle attribution, prefetch coverage/accuracy/timeliness, cache
// counters); pipe it to `jppreport -stats` for the attribution table.
//
// -sample switches to sampled simulation (detailed warmup + measured
// intervals, functional fast-forward in between): architectural results
// are exact, cycle counts are extrapolated estimates with error bars.
// -sample-period/-sample-detail/-sample-warmup tune the unit geometry.
//
// -noreplay disables the front-end decoded basic-block replay cache,
// forcing the per-instruction emission and dispatch paths.  Results are
// bit-identical either way (the replay section of the stats snapshot is
// simply absent); the flag exists for A/B performance measurements and
// for ruling replay out when debugging.
//
// -cpuprofile/-memprofile write pprof profiles of the simulator itself
// (not the simulated machine); the two flags compose — with both set,
// one run yields both profiles.  See EXPERIMENTS.md "Profiling the
// simulator" for the workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro"
	"repro/internal/cpu"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jppsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("jppsim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		bench     = fs.String("bench", "health", "benchmark name (see -list)")
		scheme    = fs.String("scheme", "none", "none|dbp|sw|coop|hw")
		idiom     = fs.String("idiom", "", "queue|full|chain|root (default: representative)")
		engine    = fs.String("engine", "", "prefetch engine override, or \"list\" (default: scheme's engine)")
		size      = fs.String("size", "full", "test|small|full|large")
		interval  = fs.Int("interval", 0, "jump-pointer interval (0 = 8)")
		memlat    = fs.Int("memlat", 0, "main memory latency override")
		split     = fs.Bool("split", false, "also run the compute-time decomposition")
		statsJSON = fs.Bool("stats-json", false, "emit the versioned stats snapshot as JSON")
		list      = fs.Bool("list", false, "list benchmarks and exit")
		doValid   = fs.Bool("validate", false, "run the differential validation matrix and exit")
		vprograms = fs.Int("vprograms", 25, "validation: random program count (negative = none)")
		vseed     = fs.Uint64("vseed", 1, "validation: first random program seed")
		vbench    = fs.String("vbench", "", "validation: comma-separated benchmark list (default all)")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the simulator to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile of the simulator to this file")
		noReplay  = fs.Bool("noreplay", false, "disable the front-end block-replay cache (slower, identical results)")
		sample    = fs.Bool("sample", false, "use sampled simulation (approximate cycles, exact architectural results)")
		samPeriod = fs.Uint64("sample-period", 0, "sampling: unit length in instructions (0 = default)")
		samDetail = fs.Uint64("sample-detail", 0, "sampling: measured detailed span per unit (0 = default)")
		samWarmup = fs.Uint64("sample-warmup", 0, "sampling: detailed warmup span per unit (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, cerr := os.Create(*cpuProf)
		if cerr != nil {
			return cerr
		}
		defer f.Close()
		if cerr := pprof.StartCPUProfile(f); cerr != nil {
			return cerr
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		// Written on the way out so the profile sees the run's live
		// heap; a failure here must surface in the exit code, so the
		// deferred write feeds the named return (without masking an
		// earlier error).
		defer func() {
			werr := writeHeapProfile(*memProf)
			if err == nil {
				err = werr
			}
		}()
	}

	if *list {
		for _, b := range repro.Benchmarks() {
			idioms := make([]string, len(b.Idioms))
			for i, id := range b.Idioms {
				idioms[i] = id.String()
			}
			fmt.Fprintf(out, "%-10s %-55s idioms=%s passes=%d\n",
				b.Name, b.Description, strings.Join(idioms, ","), b.Traversals)
		}
		return nil
	}

	if *doValid {
		// -size defaults to small here: "full" is the single-run default,
		// far larger than a whole matrix needs.
		sizeSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "size" {
				sizeSet = true
			}
		})
		vsize := repro.SizeSmall
		if sizeSet {
			var err error
			if vsize, err = parseSize(*size); err != nil {
				return err
			}
		}
		var benches []string
		if *vbench != "" {
			benches = strings.Split(*vbench, ",")
		}
		fails := repro.Validate(out, repro.ValidationOptions{
			Benches:  benches,
			Size:     vsize,
			Programs: *vprograms,
			Seed:     *vseed,
		})
		if len(fails) > 0 {
			return fmt.Errorf("validation found %d divergence(s)", len(fails))
		}
		return nil
	}

	if *engine == "list" {
		for _, n := range repro.Engines() {
			fmt.Fprintln(out, n)
		}
		return nil
	}

	cfg := repro.Config{
		Bench:      *bench,
		Engine:     *engine,
		Interval:   *interval,
		MemLatency: *memlat,
	}
	if *sample || *samPeriod != 0 || *samDetail != 0 || *samWarmup != 0 {
		cfg.Sampling = &cpu.SamplingConfig{
			Period: *samPeriod,
			Detail: *samDetail,
			Warmup: *samWarmup,
		}
	}
	if *noReplay {
		core := cpu.Defaults()
		core.DisableBlockReplay = true
		cfg.Core = &core
	}
	if cfg.Scheme, err = parseScheme(*scheme); err != nil {
		return err
	}
	if cfg.Idiom, err = parseIdiom(*idiom); err != nil {
		return err
	}
	if cfg.Size, err = parseSize(*size); err != nil {
		return err
	}

	if *split {
		d, err := repro.Split(cfg)
		if err != nil {
			return err
		}
		if *statsJSON {
			return printStatsJSON(out, d.Full)
		}
		printResult(out, d.Full)
		memShare := "n/a"
		if d.Total > 0 {
			memShare = fmt.Sprintf("%.0f%%", 100*float64(d.Memory())/float64(d.Total))
		}
		fmt.Fprintf(out, "\ndecomposition: total=%d compute=%d memory=%d (%s memory stall)\n",
			d.Total, d.Compute, d.Memory(), memShare)
		return nil
	}
	res, err := repro.Simulate(cfg)
	if err != nil {
		return err
	}
	if *statsJSON {
		return printStatsJSON(out, res)
	}
	printResult(out, res)
	return nil
}

// writeHeapProfile snapshots the live heap into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // report live allocations, not GC garbage
	return pprof.WriteHeapProfile(f)
}

// printStatsJSON emits the run's versioned snapshot, validating it
// first so a broken invariant can never slip out as plausible JSON.
func printStatsJSON(out io.Writer, r repro.Result) error {
	if err := r.Stats.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r.Stats, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", data)
	return err
}

func printResult(out io.Writer, r repro.Result) {
	fmt.Fprintf(out, "bench=%s scheme=%v size=%v\n", r.Spec.Bench, r.Spec.Params.Scheme, r.Spec.Params.Size)
	if r.EngineName != "" {
		fmt.Fprintf(out, "engine            %s\n", r.EngineName)
	}
	if sr := r.Stats.Sampling; sr != nil {
		fmt.Fprintf(out, "sampled           %d intervals, %d measured + %d fast-forwarded insts, cycles in [%d, %d] (95%%)\n",
			sr.Intervals, sr.MeasuredInsts, sr.FFInsts, sr.CyclesLo, sr.CyclesHi)
	}
	fmt.Fprintf(out, "cycles            %d\n", r.CPU.Cycles)
	fmt.Fprintf(out, "instructions      %d (orig %d + prefetch overhead %d)\n",
		r.CPU.Insts, r.Insts.OrigInsts, r.Insts.OvhdInsts)
	fmt.Fprintf(out, "IPC               %.3f\n", r.CPU.IPC())
	missRate := "n/a"
	if r.Cache.L1DAccesses > 0 {
		missRate = fmt.Sprintf("%.1f%%",
			100*float64(r.Cache.L1DMisses)/float64(r.Cache.L1DAccesses))
	}
	fmt.Fprintf(out, "L1D               %d accesses, %d misses (%s)\n",
		r.Cache.L1DAccesses, r.Cache.L1DMisses, missRate)
	fmt.Fprintf(out, "L2                %d accesses, %d misses\n", r.Cache.L2Accesses, r.Cache.L2Misses)
	fmt.Fprintf(out, "LDS load misses   %d (other %d), avg in-flight %.2f\n",
		r.CPU.LDSLoadMiss, r.CPU.OtherMiss, r.CPU.AvgMissOverlap())
	fmt.Fprintf(out, "L1<->L2 traffic   %d bytes (%.2f per orig inst)\n",
		r.Cache.L1L2Bytes, float64(r.Cache.L1L2Bytes)/float64(r.Insts.OrigInsts))
	fmt.Fprintf(out, "branches          %d cond, %d mispredicted\n",
		r.Bpred.CondBranches, r.Bpred.Mispredicts)
	b := r.Stats.CyclesByCategory
	fmt.Fprintf(out, "cycle breakdown   busy=%d fstall=%d wfull=%d ldmiss=%d bus=%d other=%d\n",
		b.Busy, b.FetchStall, b.WindowFull, b.LoadMiss, b.BusContention, b.Other)
	if p := r.Stats.Prefetch; p.Issued > 0 {
		fmt.Fprintf(out, "prefetches        %d issued: %d timely, %d late, %d useless, %d evicted (cov %.2f acc %.2f timely %.2f)\n",
			p.Issued, p.UsefulTimely, p.UsefulLate, p.Useless, p.EvictedUnused,
			p.Derived.Coverage, p.Derived.Accuracy, p.Derived.Timeliness)
	}
	if r.Engine != nil {
		fmt.Fprintf(out, "prefetch engine   issued=%d usefulPBhits=%d trained=%d prqDrops=%d\n",
			r.Engine.IssuedPrefetch, r.Cache.PBHits, r.Engine.Trained, r.Engine.PRQDrops)
	}
	if r.HW != nil {
		fmt.Fprintf(out, "hardware JPP      recurrentPCs=%d jpStores=%d jpLaunches=%d\n",
			r.HW.RecurrentPCs, r.HW.JPStores, r.HW.JPLaunches)
	}
}

func parseScheme(s string) (repro.Scheme, error) {
	switch s {
	case "none":
		return repro.SchemeNone, nil
	case "dbp":
		return repro.SchemeDBP, nil
	case "sw", "software":
		return repro.SchemeSoftware, nil
	case "coop", "cooperative":
		return repro.SchemeCooperative, nil
	case "hw", "hardware":
		return repro.SchemeHardware, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func parseIdiom(s string) (repro.Idiom, error) {
	switch s {
	case "":
		return repro.IdiomDefault, nil
	case "queue":
		return repro.IdiomQueue, nil
	case "full":
		return repro.IdiomFull, nil
	case "chain":
		return repro.IdiomChain, nil
	case "root":
		return repro.IdiomRoot, nil
	}
	return 0, fmt.Errorf("unknown idiom %q", s)
}

func parseSize(s string) (repro.Size, error) {
	switch s {
	case "test":
		return repro.SizeTest, nil
	case "small":
		return repro.SizeSmall, nil
	case "full":
		return repro.SizeFull, nil
	case "large":
		return repro.SizeLarge, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}
