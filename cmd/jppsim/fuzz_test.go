package main

import "testing"

// FuzzParseArgs throws arbitrary strings at the three jppsim argument
// parsers: they must either return a value or an error, never panic,
// and must stay strict (no silently accepting junk as a default).
func FuzzParseArgs(f *testing.F) {
	for _, s := range []string{"", "none", "coop", "hardware", "queue", "full", "test", "TEST", "смалл", "c\x00op"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if _, err := parseScheme(s); err == nil {
			switch s {
			case "none", "dbp", "sw", "software", "coop", "cooperative", "hw", "hardware":
			default:
				t.Errorf("parseScheme(%q) accepted junk", s)
			}
		}
		if _, err := parseIdiom(s); err == nil {
			switch s {
			case "", "queue", "full", "chain", "root":
			default:
				t.Errorf("parseIdiom(%q) accepted junk", s)
			}
		}
		if _, err := parseSize(s); err == nil {
			switch s {
			case "test", "small", "full":
			default:
				t.Errorf("parseSize(%q) accepted junk", s)
			}
		}
	})
}
