// Command jppreport regenerates the paper's tables and figures.
//
// Usage:
//
//	jppreport                 # everything, full-size inputs
//	jppreport -exp fig5       # one artifact
//	jppreport -size small     # faster, smaller inputs
//	jppreport -bench health   # restrict to one benchmark
//	jppreport -j 4            # cap concurrent simulations (0 = all cores)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/olden"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jppreport:", err)
		os.Exit(1)
	}
}

// run drives the report generation; factored out of main so tests can
// exercise the full flag-to-report path.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jppreport", flag.ContinueOnError)
	var (
		exp   = fs.String("exp", "", "experiment id (default: all); one of "+strings.Join(repro.ExperimentIDs(), ","))
		size  = fs.String("size", "full", "test|small|full")
		bench = fs.String("bench", "", "restrict to a comma-separated benchmark list")
		jobs  = fs.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := repro.ExpConfig{Workers: *jobs}
	switch *size {
	case "test":
		cfg.Size = olden.SizeTest
	case "small":
		cfg.Size = olden.SizeSmall
	case "full":
		cfg.Size = olden.SizeFull
	default:
		return fmt.Errorf("unknown size %q", *size)
	}
	if *bench != "" {
		cfg.Benches = strings.Split(*bench, ",")
	}

	ids := repro.ExperimentIDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := repro.Reproduce(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(out, rep.Text)
		fmt.Fprintf(out, "[%s regenerated in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
