// Command jppreport regenerates the paper's tables and figures.
//
// Usage:
//
//	jppreport                 # everything, full-size inputs
//	jppreport -exp fig5       # one artifact
//	jppreport -exp mips       # simulator-throughput table from BENCH_jpp.json
//	jppreport -size small     # faster, smaller inputs
//	jppreport -bench health   # restrict to one benchmark
//	jppreport -j 4            # cap concurrent simulations (0 = all cores)
//	jppreport -stats a.json,b.json  # render the Fig. 6-style cycle
//	                          # attribution table from jppsim -stats-json
//	                          # snapshots instead of running simulations
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/harness"
	"repro/internal/olden"
	"repro/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jppreport:", err)
		os.Exit(1)
	}
}

// run drives the report generation; factored out of main so tests can
// exercise the full flag-to-report path.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jppreport", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "", "experiment id (default: all); one of "+strings.Join(repro.ExperimentIDs(), ","))
		size      = fs.String("size", "full", "test|small|full")
		bench     = fs.String("bench", "", "restrict to a comma-separated benchmark list")
		jobs      = fs.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		statsList = fs.String("stats", "", "render the attribution table from comma-separated stats-JSON files (no simulations)")
		benchJSON = fs.String("bench-json", "", "benchmark document for the mips experiment (default BENCH_jpp.json)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *statsList != "" {
		return renderStats(strings.Split(*statsList, ","), out)
	}

	cfg := repro.ExpConfig{Workers: *jobs, BenchJSON: *benchJSON}
	switch *size {
	case "test":
		cfg.Size = olden.SizeTest
	case "small":
		cfg.Size = olden.SizeSmall
	case "full":
		cfg.Size = olden.SizeFull
	default:
		return fmt.Errorf("unknown size %q", *size)
	}
	if *bench != "" {
		cfg.Benches = strings.Split(*bench, ",")
	}

	ids := repro.ExperimentIDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	} else {
		// The default sweep only includes the mips table when its input
		// document exists — a fresh checkout run outside the repo root
		// (or before the first bench regeneration) should still render
		// every simulation-backed artifact.  Asking for it explicitly
		// still errors loudly.
		path := cfg.BenchJSON
		if path == "" {
			path = "BENCH_jpp.json"
		}
		if _, err := os.Stat(path); err != nil {
			kept := ids[:0]
			for _, id := range ids {
				if id != "mips" {
					kept = append(kept, id)
				}
			}
			ids = kept
			fmt.Fprintf(out, "[mips skipped: %s not found]\n\n", path)
		}
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := repro.Reproduce(id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(out, rep.Text)
		fmt.Fprintf(out, "[%s regenerated in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// renderStats loads jppsim -stats-json snapshots (single objects or
// arrays, e.g. BENCH_jpp.json) from the named files, validates each
// against the schema's accounting invariants, and prints one combined
// Fig. 6-style attribution table.
func renderStats(paths []string, out io.Writer) error {
	var snaps []stats.Snapshot
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		got, err := stats.ParseSnapshots(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for i, s := range got {
			if err := s.Validate(); err != nil {
				return fmt.Errorf("%s[%d]: %w", path, i, err)
			}
		}
		snaps = append(snaps, got...)
	}
	if len(snaps) == 0 {
		return fmt.Errorf("no snapshots in %v", paths)
	}
	fmt.Fprint(out, harness.RenderAttribution(snaps))
	return nil
}
