// Command jppreport regenerates the paper's tables and figures.
//
// Usage:
//
//	jppreport                 # everything, full-size inputs
//	jppreport -exp fig5       # one artifact
//	jppreport -size small     # faster, smaller inputs
//	jppreport -bench health   # restrict to one benchmark
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/olden"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (default: all); one of "+strings.Join(repro.ExperimentIDs(), ","))
		size  = flag.String("size", "full", "test|small|full")
		bench = flag.String("bench", "", "restrict to a comma-separated benchmark list")
	)
	flag.Parse()

	cfg := repro.ExpConfig{}
	switch *size {
	case "test":
		cfg.Size = olden.SizeTest
	case "small":
		cfg.Size = olden.SizeSmall
	case "full":
		cfg.Size = olden.SizeFull
	default:
		fmt.Fprintf(os.Stderr, "jppreport: unknown size %q\n", *size)
		os.Exit(1)
	}
	if *bench != "" {
		cfg.Benches = strings.Split(*bench, ",")
	}

	ids := repro.ExperimentIDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := repro.Reproduce(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jppreport: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(rep.Text)
		fmt.Printf("[%s regenerated in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
