package main

import (
	"strings"
	"testing"

	"repro"
)

// TestRunAllExperimentsTestSize drives the command end to end on the
// unit-test input size and asserts a non-empty report is printed for
// every experiment ID.
func TestRunAllExperimentsTestSize(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-size", "test"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	prev := 0
	for _, id := range repro.ExperimentIDs() {
		marker := "[" + id + " regenerated in "
		i := strings.Index(text[prev:], marker)
		if i < 0 {
			t.Errorf("no output for experiment %q", id)
			continue
		}
		// The report text sits between the previous marker and this one.
		if strings.TrimSpace(text[prev:prev+i]) == "" {
			t.Errorf("empty report text for experiment %q", id)
		}
		prev += i + len(marker)
	}
}

func TestRunSingleExperimentWithWorkers(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-size", "test", "-exp", "fig5", "-bench", "health,treeadd", "-j", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 5", "health", "treeadd"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("fig5 report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-size", "enormous"}, &out); err == nil {
		t.Error("bad -size accepted")
	}
	if err := run([]string{"-size", "test", "-exp", "fig9"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}
