package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/stats"
)

// TestRunAllExperimentsTestSize drives the command end to end on the
// unit-test input size and asserts a non-empty report is printed for
// every experiment ID.
func TestRunAllExperimentsTestSize(t *testing.T) {
	doc := `{"sim_mips": {"mst": {"none": 4.0}}, "sim_mips_geomean": 4.0}`
	benchPath := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(benchPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-size", "test", "-bench-json", benchPath}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	prev := 0
	for _, id := range repro.ExperimentIDs() {
		marker := "[" + id + " regenerated in "
		i := strings.Index(text[prev:], marker)
		if i < 0 {
			t.Errorf("no output for experiment %q", id)
			continue
		}
		// The report text sits between the previous marker and this one.
		if strings.TrimSpace(text[prev:prev+i]) == "" {
			t.Errorf("empty report text for experiment %q", id)
		}
		prev += i + len(marker)
	}
}

func TestRunSingleExperimentWithWorkers(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-size", "test", "-exp", "fig5", "-bench", "health,treeadd", "-j", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 5", "health", "treeadd"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("fig5 report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-size", "enormous"}, &out); err == nil {
		t.Error("bad -size accepted")
	}
	if err := run([]string{"-size", "test", "-exp", "fig9"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunStatsTable feeds jppsim-format stats JSON (one single-object
// file, exactly the -stats-json layout, plus one array file) through
// the -stats mode and checks the attribution table comes out.
func TestRunStatsTable(t *testing.T) {
	dir := t.TempDir()
	var snaps []stats.Snapshot
	for _, scheme := range []repro.Scheme{repro.SchemeNone, repro.SchemeCooperative} {
		res, err := repro.Simulate(repro.Config{Bench: "health", Scheme: scheme, Size: repro.SizeTest})
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, res.Stats)
	}
	// Single object, as `jppsim -stats-json > file` produces.
	one, err := json.MarshalIndent(snaps[0], "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	onePath := filepath.Join(dir, "none.json")
	if err := os.WriteFile(onePath, append(one, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	// Array, as BENCH_jpp.json-style files hold.
	many, err := json.Marshal(snaps[1:])
	if err != nil {
		t.Fatal(err)
	}
	manyPath := filepath.Join(dir, "rest.json")
	if err := os.WriteFile(manyPath, many, 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{"-stats", onePath + "," + manyPath}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"Cycle attribution", "health", "none", "coop", "ldmiss%", "cov"} {
		if !strings.Contains(text, want) {
			t.Errorf("attribution table missing %q:\n%s", want, text)
		}
	}
	if got := strings.Count(text, "health"); got != len(snaps) {
		t.Errorf("want %d rows, got %d:\n%s", len(snaps), got, text)
	}
}

func TestRunStatsRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-stats", filepath.Join(dir, "missing.json")}, &out); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-stats", bad}, &out); err == nil {
		t.Error("malformed JSON accepted")
	}
	// A parseable snapshot violating the accounting invariants must be
	// rejected, not rendered.
	invalid := filepath.Join(dir, "invalid.json")
	s := stats.Snapshot{Version: stats.SchemaVersion, Bench: "x", Cycles: 10}
	s.CyclesByCategory.Busy = 3 // sums to 3, not 10
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(invalid, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-stats", invalid}, &out); err == nil {
		t.Error("invariant-violating snapshot accepted")
	}
}
