// Command jpptrace dumps a per-instruction pipeline trace of a
// simulated run: dispatch, issue and completion cycles for a window of
// the committed instruction stream.  Useful for inspecting how a
// prefetching scheme reshapes the timing of a pointer-chasing loop.
//
// Usage:
//
//	jpptrace -bench health -scheme coop -skip 50000 -n 40
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dbp"
	"repro/internal/harness"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/olden"
)

type tracer struct {
	out         io.Writer
	skip, count uint64
	limit       uint64
}

func (t *tracer) Trace(d *ir.DynInst, dispatched, issued, done uint64) {
	if d.Seq <= t.skip || t.count >= t.limit {
		return
	}
	t.count++
	extra := ""
	switch {
	case d.Class == ir.Load:
		extra = fmt.Sprintf(" addr=%08x", d.Addr)
		if d.Flags&ir.FLDS != 0 {
			extra += " LDS"
		}
	case d.Class == ir.Prefetch:
		extra = fmt.Sprintf(" addr=%08x", d.Addr)
		if d.Flags&ir.FJumpChase != 0 {
			extra += " JUMP"
		}
	case d.Class == ir.Branch:
		if d.Taken {
			extra = " taken"
		}
	}
	fmt.Fprintf(t.out, "%8d  pc=%06x %-6s disp=%-9d issue=+%-4d done=+%-4d%s\n",
		d.Seq, d.PC, d.Class, dispatched, issued-dispatched, done-dispatched, extra)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jpptrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jpptrace", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		bench  = fs.String("bench", "health", "benchmark name")
		scheme = fs.String("scheme", "none", "none|dbp|sw|coop|hw")
		size   = fs.String("size", "small", "test|small|full|large")
		skip   = fs.Uint64("skip", 0, "instructions to skip before tracing")
		n      = fs.Uint64("n", 50, "instructions to trace")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	b, ok := harness.BenchByName(*bench)
	if !ok {
		return fmt.Errorf("unknown benchmark %q", *bench)
	}
	var params olden.Params
	switch *size {
	case "test":
		params.Size = olden.SizeTest
	case "small":
		params.Size = olden.SizeSmall
	case "full":
		params.Size = olden.SizeFull
	case "large":
		params.Size = olden.SizeLarge
	default:
		return fmt.Errorf("unknown size %q", *size)
	}
	switch *scheme {
	case "none":
		params.Scheme = core.SchemeNone
	case "dbp":
		params.Scheme = core.SchemeDBP
	case "sw":
		params.Scheme = core.SchemeSoftware
	case "coop":
		params.Scheme = core.SchemeCooperative
	case "hw":
		params.Scheme = core.SchemeHardware
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}

	img := mem.NewImage()
	alloc := heap.New(img)
	memP := cache.Defaults()
	memP.EnablePB = params.Scheme.UsesHardware()
	hier := cache.New(memP)
	pred := bpred.New(bpred.Defaults())

	var eng cpu.PrefetchEngine
	switch params.Scheme {
	case core.SchemeHardware:
		eng = core.NewHWEngine(dbp.Defaults(), core.DefaultHWConfig(), hier, alloc)
	case core.SchemeDBP, core.SchemeCooperative:
		eng = dbp.NewEngine(dbp.Defaults(), hier, alloc)
	}

	cfg := cpu.Defaults()
	cfg.Tracer = &tracer{out: out, skip: *skip, limit: *n}
	gen := ir.NewGen(alloc, b.Kernel(params))
	c := cpu.New(cfg, hier, pred, eng)
	fmt.Fprintf(out, "# %s / %s — seq, pc, class, dispatch cycle, issue/done deltas\n", *bench, *scheme)
	stats := c.Run(gen)
	fmt.Fprintf(out, "# run: %d cycles, %d instructions, IPC %.2f\n",
		stats.Cycles, stats.Insts, stats.IPC())
	return nil
}
