package main

import (
	"strconv"
	"strings"
	"testing"
)

// TestRunTraceSmoke drives a tiny traced run end-to-end and checks the
// output shape: a header, per-instruction lines with the pipeline
// columns, and the closing run summary.
func TestRunTraceSmoke(t *testing.T) {
	var out strings.Builder
	args := []string{"-bench", "health", "-scheme", "coop", "-size", "test", "-n", "10"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"# health / coop",
		"disp=", "issue=+", "done=+",
		"# run:", "IPC",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("trace output missing %q:\n%s", want, got)
		}
	}
	// -n bounds the trace: header + 10 instruction lines + summary.
	if lines := strings.Count(got, "\n"); lines != 12 {
		t.Errorf("want 12 output lines (2 comments + 10 traced), got %d:\n%s", lines, got)
	}
}

// TestRunTraceSkip checks that -skip drops the first instructions: every
// traced sequence number must be beyond the skip point.
func TestRunTraceSkip(t *testing.T) {
	var out strings.Builder
	args := []string{"-bench", "treeadd", "-scheme", "none", "-size", "test",
		"-skip", "100", "-n", "5"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		seq, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			t.Fatalf("unparseable trace line %q: %v", line, err)
		}
		if seq <= 100 {
			t.Errorf("traced seq %d despite -skip 100", seq)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-bench", "nosuch"},
		{"-scheme", "warp"},
		{"-size", "enormous"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
