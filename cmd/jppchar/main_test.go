package main

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/core"
)

// TestRunCharSmoke runs the characterization dump on one benchmark at
// the test size and checks the table shape: the header plus one row per
// scheme, each carrying the bench name.
func TestRunCharSmoke(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "health", "-size", "test"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, col := range []string{"bench", "cycles", "IPC", "L1Dmiss", "footKB"} {
		if !strings.Contains(got, col) {
			t.Errorf("header missing column %q:\n%s", col, got)
		}
	}
	rows := 0
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "health") {
			rows++
		}
	}
	if want := len(core.Schemes()); rows != want {
		t.Errorf("want %d scheme rows for health, got %d:\n%s", want, rows, got)
	}
}

// TestRunCharBenchList checks the comma-separated -bench filter.
func TestRunCharBenchList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bench", "treeadd,mst", "-size", "test"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"treeadd", "mst"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing bench %q:\n%s", want, got)
		}
	}
	for _, b := range repro.Benchmarks() {
		if b.Name == "treeadd" || b.Name == "mst" {
			continue
		}
		if strings.Contains(got, b.Name) {
			t.Errorf("output includes unrequested bench %q:\n%s", b.Name, got)
		}
	}
}

func TestRunCharRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-size", "enormous"},
		{"-bench", "nosuch", "-size", "test"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
