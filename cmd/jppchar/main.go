// Command jppchar dumps the raw per-benchmark characterization data
// behind the paper's Table 1: execution-time decomposition, miss mix,
// miss parallelism and working-set footprint, for every scheme.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/core"
)

func main() {
	var (
		size  = flag.String("size", "full", "test|small|full")
		bench = flag.String("bench", "", "restrict to a comma-separated benchmark list")
	)
	flag.Parse()

	var sz repro.Size
	switch *size {
	case "test":
		sz = repro.SizeTest
	case "small":
		sz = repro.SizeSmall
	case "full":
		sz = repro.SizeFull
	default:
		fmt.Fprintf(os.Stderr, "jppchar: unknown size %q\n", *size)
		os.Exit(1)
	}

	names := []string{}
	for _, b := range repro.Benchmarks() {
		names = append(names, b.Name)
	}
	if *bench != "" {
		names = strings.Split(*bench, ",")
	}

	fmt.Printf("%-10s %-5s %9s %9s %7s %8s %8s %9s %8s\n",
		"bench", "schm", "cycles", "insts", "IPC", "L1Dmiss", "L2miss", "B/inst", "footKB")
	for _, name := range names {
		for _, scheme := range core.Schemes() {
			res, err := repro.Simulate(repro.Config{
				Bench: name, Scheme: scheme, Size: sz,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "jppchar:", err)
				os.Exit(1)
			}
			fmt.Printf("%-10s %-5v %9d %9d %7.3f %8d %8d %9.2f %8d\n",
				name, scheme, res.CPU.Cycles, res.CPU.Insts, res.CPU.IPC(),
				res.Cache.L1DMisses, res.Cache.L2Misses,
				float64(res.Cache.L1L2Bytes)/float64(res.Insts.OrigInsts),
				res.Cache.DistinctL1Lines*32/1024)
		}
	}
}
