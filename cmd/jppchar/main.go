// Command jppchar dumps the raw per-benchmark characterization data
// behind the paper's Table 1: execution-time decomposition, miss mix,
// miss parallelism and working-set footprint, for every scheme.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jppchar:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jppchar", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		size  = fs.String("size", "full", "test|small|full|large")
		bench = fs.String("bench", "", "restrict to a comma-separated benchmark list")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sz repro.Size
	switch *size {
	case "test":
		sz = repro.SizeTest
	case "small":
		sz = repro.SizeSmall
	case "full":
		sz = repro.SizeFull
	case "large":
		sz = repro.SizeLarge
	default:
		return fmt.Errorf("unknown size %q", *size)
	}

	names := []string{}
	for _, b := range repro.Benchmarks() {
		names = append(names, b.Name)
	}
	if *bench != "" {
		names = strings.Split(*bench, ",")
	}

	fmt.Fprintf(out, "%-10s %-5s %9s %9s %7s %8s %8s %9s %8s\n",
		"bench", "schm", "cycles", "insts", "IPC", "L1Dmiss", "L2miss", "B/inst", "footKB")
	for _, name := range names {
		for _, scheme := range core.Schemes() {
			res, err := repro.Simulate(repro.Config{
				Bench: name, Scheme: scheme, Size: sz,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-10s %-5v %9d %9d %7.3f %8d %8d %9.2f %8d\n",
				name, scheme, res.CPU.Cycles, res.CPU.Insts, res.CPU.IPC(),
				res.Cache.L1DMisses, res.Cache.L2Misses,
				float64(res.Cache.L1L2Bytes)/float64(res.Insts.OrigInsts),
				res.Cache.DistinctL1Lines*32/1024)
		}
	}
	return nil
}
