// Package repro reproduces "Effective Jump-Pointer Prefetching for
// Linked Data Structures" (Amir Roth and Gurindar S. Sohi, ISCA 1999)
// as a cycle-level simulation study in pure Go.
//
// The package is a facade over the simulator stack:
//
//   - a 4-wide out-of-order core and the paper's Table 2 memory
//     hierarchy (internal/cpu, internal/cache);
//   - dependence-based prefetching, the paper's hardware baseline
//     (internal/dbp);
//   - the jump-pointer prefetching framework — four idioms x three
//     implementations — that is the paper's contribution
//     (internal/core);
//   - ten Olden-style pointer-intensive workloads (internal/olden);
//   - experiment drivers that regenerate every table and figure of the
//     paper's evaluation (internal/harness).
//
// # Quick start
//
//	res, err := repro.Simulate(repro.Config{
//		Bench:  "health",
//		Scheme: repro.SchemeCooperative,
//	})
//	if err != nil { ... }
//	fmt.Printf("%d cycles, IPC %.2f\n", res.Cycles(), res.CPU.IPC())
//
// To regenerate a paper artifact:
//
//	rep, err := repro.Reproduce("fig5", repro.ExpConfig{})
//	fmt.Println(rep.Text)
package repro

import (
	"fmt"
	"io"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dbp"
	"repro/internal/harness"
	"repro/internal/olden"
	"repro/internal/prefetch"
	"repro/internal/validate"
)

// Scheme selects a prefetching implementation (paper section 3).
type Scheme = core.Scheme

// Prefetching schemes.
const (
	// SchemeNone is the unoptimized baseline.
	SchemeNone = core.SchemeNone
	// SchemeDBP is dependence-based prefetching (the hardware baseline).
	SchemeDBP = core.SchemeDBP
	// SchemeSoftware is software-only jump-pointer prefetching.
	SchemeSoftware = core.SchemeSoftware
	// SchemeCooperative does jump-pointer prefetching in software and
	// chained prefetching in hardware.
	SchemeCooperative = core.SchemeCooperative
	// SchemeHardware is hardware-only jump-pointer prefetching.
	SchemeHardware = core.SchemeHardware
)

// Idiom selects a jump-pointer prefetching idiom (paper section 2.2).
type Idiom = core.Idiom

// Prefetching idioms.
const (
	// IdiomDefault picks the benchmark's representative idiom.
	IdiomDefault = core.IdiomNone
	// IdiomQueue prefetches a backbone through queue-method pointers.
	IdiomQueue = core.IdiomQueue
	// IdiomFull uses jump-pointer prefetches for backbone and ribs.
	IdiomFull = core.IdiomFull
	// IdiomChain reaches ribs with chained prefetches.
	IdiomChain = core.IdiomChain
	// IdiomRoot chases whole small structures from a root pointer.
	IdiomRoot = core.IdiomRoot
)

// Size selects workload scaling.
type Size = olden.Size

// Workload sizes.
const (
	// SizeTest runs in microseconds (unit tests).
	SizeTest = olden.SizeTest
	// SizeSmall runs in milliseconds.
	SizeSmall = olden.SizeSmall
	// SizeFull drives the reported tables and figures.
	SizeFull = olden.SizeFull
	// SizeLarge stresses paper-scale inputs (structures 2-4x SizeFull).
	SizeLarge = olden.SizeLarge
)

// Config describes one simulation.
type Config struct {
	// Bench names an Olden workload; see Benchmarks().
	Bench string
	// Scheme is the prefetching implementation to apply.
	Scheme Scheme
	// Idiom overrides the benchmark's representative idiom for the
	// software and cooperative schemes.
	Idiom Idiom
	// Engine names a registered prefetch engine (see Engines) to attach
	// instead of the scheme's default, so any workload can run under any
	// prefetcher ("" keeps the scheme's engine).
	Engine string
	// Interval is the jump-pointer distance in nodes (0 = 8, Table 2).
	Interval int
	// Size scales the workload (default SizeFull).
	Size Size
	// MemLatency overrides the 70-cycle main memory latency.
	MemLatency int

	// Sampling, when non-nil, switches the run to SMARTS-style sampled
	// simulation: detailed warmup + measured intervals with functional
	// fast-forward in between.  Architectural results are bit-identical
	// to a full run; cycle counts are extrapolated estimates carrying
	// error bars (Result.Stats.Sampling).  Zero fields take defaults
	// (cpu.DefaultSampling).
	Sampling *cpu.SamplingConfig

	// Machine, when non-nil, replaces the whole Table 2 memory system.
	Machine *cache.Params
	// Core, when non-nil, replaces the Table 2 out-of-order core.
	Core *cpu.Config
	// DBP, when non-nil, replaces the Table 2 prefetch engine sizing.
	DBP *dbp.Config
	// HW, when non-nil, replaces the Table 2 JQT/JPR configuration.
	HW *core.HWConfig
}

// Result is a completed simulation: cycle counts, cache and predictor
// statistics, instruction mix, and (for hardware schemes) prefetch
// engine counters.
type Result = harness.Result

// Decomposition splits execution time into compute and memory-stall
// portions using the paper's two-run method.
type Decomposition = harness.Decomposition

func (c Config) spec() harness.Spec {
	spec := harness.Spec{
		Bench:  c.Bench,
		Engine: c.Engine,
		Params: olden.Params{
			Scheme:   c.Scheme,
			Idiom:    c.Idiom,
			Interval: c.Interval,
			Size:     c.Size,
		},
		Mem:      c.Machine,
		CPU:      c.Core,
		DBP:      c.DBP,
		HW:       c.HW,
		Sampling: c.Sampling,
	}
	if c.MemLatency > 0 && spec.Mem == nil {
		m := cache.Defaults()
		m.MemLatency = c.MemLatency
		spec.Mem = &m
	}
	return spec
}

// Simulate runs one configuration to completion.
func Simulate(c Config) (Result, error) {
	return harness.Run(c.spec())
}

// Split runs a configuration twice (realistic and perfect data memory)
// and returns the compute/memory-stall decomposition.
func Split(c Config) (Decomposition, error) {
	return harness.Decompose(c.spec())
}

// Engines lists the registered prefetch engines: the paper's own
// dependence-based ("dbp") and hardware jump-pointer ("hw") engines
// plus the competitor zoo ("stride", "markov", "hybrid").
func Engines() []string { return prefetch.Names() }

// BenchmarkInfo describes one workload of the suite.
type BenchmarkInfo struct {
	Name        string
	Description string
	Structures  string
	Idioms      []Idiom
	Traversals  int
}

// Benchmarks lists the available workloads from both kernel families:
// the Olden suite and the modern internal/kernels family.
func Benchmarks() []BenchmarkInfo {
	var out []BenchmarkInfo
	for _, b := range harness.AllBenches() {
		out = append(out, BenchmarkInfo{
			Name:        b.Name,
			Description: b.Description,
			Structures:  b.Structures,
			Idioms:      b.Idioms,
			Traversals:  b.Traversals,
		})
	}
	return out
}

// ExpConfig parameterizes experiment reproduction.
type ExpConfig = harness.ExpConfig

// Report is a rendered experiment.
type Report = harness.Report

// ExperimentIDs lists the reproducible paper artifacts in paper order.
func ExperimentIDs() []string {
	var out []string
	for _, e := range harness.Experiments() {
		out = append(out, e.ID)
	}
	return out
}

// ValidationFailure is one divergence found by Validate: a timing-core
// run whose committed instruction stream, heap state or cycle count
// broke an architectural invariant.
type ValidationFailure = validate.Failure

// ValidationOptions configures Validate.  The zero value runs every
// registered benchmark plus 25 seeded random micro-IR programs at the
// test input size, under every prefetch scheme, with cycle skipping
// both on and off.
type ValidationOptions = validate.MatrixOptions

// Validate runs the differential validation matrix: every workload
// executes on the out-of-order core and its commit stream is checked
// byte-for-byte against an in-order functional oracle (and, for
// generated programs, an independent reference interpreter).  Progress
// lines go to w (nil discards); the returned slice is empty when the
// simulator is self-consistent.
func Validate(w io.Writer, o ValidationOptions) []ValidationFailure {
	return validate.RunMatrix(w, o)
}

// Reproduce regenerates one paper artifact ("table1", "table2", "fig4",
// "fig5", "fig6", "fig7" or "costs").
func Reproduce(id string, cfg ExpConfig) (Report, error) {
	fn, ok := harness.ExperimentByID(id)
	if !ok {
		return Report{}, fmt.Errorf("repro: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	return fn(cfg)
}
