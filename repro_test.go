package repro

import (
	"strings"
	"testing"
)

func TestSimulateBasic(t *testing.T) {
	res, err := Simulate(Config{Bench: "health", Scheme: SchemeNone, Size: SizeTest})
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Cycles == 0 {
		t.Fatal("empty run")
	}
}

func TestSimulateUnknownBench(t *testing.T) {
	if _, err := Simulate(Config{Bench: "nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSplit(t *testing.T) {
	d, err := Split(Config{Bench: "treeadd", Scheme: SchemeNone, Size: SizeTest})
	if err != nil {
		t.Fatal(err)
	}
	if d.Compute == 0 || d.Compute > d.Total {
		t.Fatalf("bad split: %+v", d)
	}
}

func TestMemLatencyOverride(t *testing.T) {
	slow, err := Simulate(Config{Bench: "treeadd", Scheme: SchemeNone, Size: SizeTest, MemLatency: 500})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Simulate(Config{Bench: "treeadd", Scheme: SchemeNone, Size: SizeTest, MemLatency: 10})
	if err != nil {
		t.Fatal(err)
	}
	if slow.CPU.Cycles <= fast.CPU.Cycles {
		t.Fatalf("latency override has no effect: %d vs %d", slow.CPU.Cycles, fast.CPU.Cycles)
	}
}

func TestBenchmarksListing(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 19 { // 10 Olden + 2 section-6 extensions + 7 kernels
		t.Fatalf("%d benchmarks", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		names[b.Name] = true
	}
	for _, want := range []string{"health", "em3d", "mst", "treeadd",
		"hashchurn", "skiplist", "bptree", "lru", "multilist", "quicklist", "txmix"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestEnginesListing(t *testing.T) {
	have := map[string]bool{}
	for _, n := range Engines() {
		have[n] = true
	}
	for _, want := range []string{"dbp", "hw", "stride", "markov", "hybrid"} {
		if !have[want] {
			t.Errorf("Engines() missing %q: %v", want, Engines())
		}
	}
}

func TestEngineOverride(t *testing.T) {
	res, err := Simulate(Config{Bench: "health", Scheme: SchemeNone, Engine: "stride", Size: SizeTest})
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineName != "stride" {
		t.Fatalf("EngineName = %q, want stride", res.EngineName)
	}
	if _, err := Simulate(Config{Bench: "health", Engine: "nonesuch", Size: SizeTest}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := ExperimentIDs()
	want := []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "costs", "shootout", "mips"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestReproduceTable2(t *testing.T) {
	rep, err := Reproduce("table2", ExpConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"64KB", "512KB", "70 cycles", "JQT"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestReproduceUnknown(t *testing.T) {
	if _, err := Reproduce("fig99", ExpConfig{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestIdiomOverride(t *testing.T) {
	for _, idiom := range []Idiom{IdiomQueue, IdiomChain, IdiomRoot, IdiomFull} {
		res, err := Simulate(Config{
			Bench: "health", Scheme: SchemeSoftware, Idiom: idiom, Size: SizeTest,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Insts.OvhdInsts == 0 {
			t.Errorf("idiom %v emitted no prefetch code", idiom)
		}
	}
}
