package repro

import (
	"flag"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/olden"
)

// BenchmarkCore measures raw simulator throughput, one sub-benchmark
// per Olden kernel (plus the §6 extensions), under the cooperative
// scheme — the configuration that exercises every engine path.  Each
// sub-benchmark reports:
//
//	sim_mips     simulated (committed) instructions per host second, /1e6
//	simcycles/s  simulated cycles per host second
//
// The geometric mean of sim_mips across kernels is the simulator's
// headline throughput number (see README "Simulator performance"); the
// CI smoke step asserts it stays present and positive in
// BENCH_jpp.json.
func BenchmarkCore(b *testing.B) {
	for _, bm := range harness.AllBenches() {
		b.Run(bm.Name, func(b *testing.B) {
			var insts, cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Spec{
					Bench:  bm.Name,
					Params: olden.Params{Scheme: core.SchemeCooperative, Size: benchSize},
				})
				if err != nil {
					b.Fatal(err)
				}
				insts += res.CPU.Insts
				cycles += res.CPU.Cycles
			}
			sec := b.Elapsed().Seconds()
			b.ReportMetric(float64(insts)/sec/1e6, "sim_mips")
			b.ReportMetric(float64(cycles)/sec, "simcycles/s")
		})
	}
}

// perfSmoke gates TestReplayPerfSmoke: the test measures wall-clock
// throughput, so it only runs when asked for explicitly (the CI perf
// step) rather than inside every `go test ./...`.
var perfSmoke = flag.Bool("perfsmoke", false,
	"run the replay on/off throughput smoke (wall-clock sensitive)")

// TestReplayPerfSmoke asserts the block-replay front end is never
// slower than the per-instruction path beyond noise: it interleaves
// replay-on and replay-off runs of a few representative kernels (small
// inputs, cooperative scheme), takes the best sim-MIPS of each mode per
// kernel, and requires the replay-on geomean to stay above 75% of the
// replay-off geomean — a bound loose enough for shared CI runners but
// far above any systematic replay regression.
func TestReplayPerfSmoke(t *testing.T) {
	if !*perfSmoke {
		t.Skip("pass -perfsmoke to run the replay throughput smoke")
	}
	kernels := []string{"health", "mst", "treeadd"}
	const rounds = 3

	best := make(map[string][2]float64) // kernel -> [replay-on, replay-off] best sim-MIPS
	measure := func(bench string, disable bool) float64 {
		cfg := cpu.Defaults()
		cfg.DisableBlockReplay = disable
		start := time.Now()
		res, err := harness.Run(harness.Spec{
			Bench:  bench,
			Params: olden.Params{Scheme: core.SchemeCooperative, Size: olden.SizeSmall},
			CPU:    &cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.CPU.Insts) / time.Since(start).Seconds() / 1e6
	}
	// Interleave modes within each round so host-load drift hits both
	// sides equally; best-of-rounds discards transient slowdowns.
	for r := 0; r < rounds; r++ {
		for _, k := range kernels {
			b := best[k]
			if m := measure(k, false); m > b[0] {
				b[0] = m
			}
			if m := measure(k, true); m > b[1] {
				b[1] = m
			}
			best[k] = b
		}
	}

	logOn, logOff := 0.0, 0.0
	for _, k := range kernels {
		b := best[k]
		t.Logf("%-10s replay-on %.2f sim-MIPS, replay-off %.2f (%.2fx)", k, b[0], b[1], b[0]/b[1])
		logOn += math.Log(b[0])
		logOff += math.Log(b[1])
	}
	on := math.Exp(logOn / float64(len(kernels)))
	off := math.Exp(logOff / float64(len(kernels)))
	t.Logf("geomean: replay-on %.2f sim-MIPS, replay-off %.2f (%.2fx)", on, off, on/off)
	if on < 0.75*off {
		t.Errorf("replay-on geomean %.2f sim-MIPS below 75%% of replay-off %.2f", on, off)
	}
}
