package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/olden"
)

// BenchmarkCore measures raw simulator throughput, one sub-benchmark
// per Olden kernel (plus the §6 extensions), under the cooperative
// scheme — the configuration that exercises every engine path.  Each
// sub-benchmark reports:
//
//	sim_mips     simulated (committed) instructions per host second, /1e6
//	simcycles/s  simulated cycles per host second
//
// The geometric mean of sim_mips across kernels is the simulator's
// headline throughput number (see README "Simulator performance"); the
// CI smoke step asserts it stays present and positive in
// BENCH_jpp.json.
func BenchmarkCore(b *testing.B) {
	for _, bm := range olden.All() {
		b.Run(bm.Name, func(b *testing.B) {
			var insts, cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(harness.Spec{
					Bench:  bm.Name,
					Params: olden.Params{Scheme: core.SchemeCooperative, Size: benchSize},
				})
				if err != nil {
					b.Fatal(err)
				}
				insts += res.CPU.Insts
				cycles += res.CPU.Cycles
			}
			sec := b.Elapsed().Seconds()
			b.ReportMetric(float64(insts)/sec/1e6, "sim_mips")
			b.ReportMetric(float64(cycles)/sec, "simcycles/s")
		})
	}
}
