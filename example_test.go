package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// Simulate one benchmark under cooperative jump-pointer prefetching and
// inspect the outcome.  (Uses the test-size input so the example runs
// in microseconds; drop Size for the full-size input.)
func ExampleSimulate() {
	res, err := repro.Simulate(repro.Config{
		Bench:  "treeadd",
		Scheme: repro.SchemeCooperative,
		Size:   repro.SizeTest,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.CPU.Insts > 0, res.CPU.Cycles > 0)
	// Output: true true
}

// Split execution time into compute and memory-stall portions with the
// paper's two-run decomposition.
func ExampleSplit() {
	d, err := repro.Split(repro.Config{
		Bench:  "health",
		Scheme: repro.SchemeNone,
		Size:   repro.SizeTest,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Compute+d.Memory() == d.Total)
	// Output: true
}

// Regenerate one of the paper's artifacts as a text report.
func ExampleReproduce() {
	rep, err := repro.Reproduce("table2", repro.ExpConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.ID, len(rep.Text) > 0)
	// Output: table2 true
}

// Enumerate the available workloads.
func ExampleBenchmarks() {
	for _, b := range repro.Benchmarks() {
		if b.Name == "health" {
			fmt.Println(b.Name, b.Idioms[0])
		}
	}
	// Output: health chain
}
