package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/stats"
)

// stubResult fabricates a minimal valid result for RunFunc stubs: the
// zero snapshot satisfies every Validate identity once the schema
// version is set.
func stubResult(spec harness.Spec) (harness.Result, error) {
	var res harness.Result
	res.Spec = spec
	res.Stats = stats.Snapshot{
		Version: stats.SchemaVersion,
		Bench:   spec.Bench,
		Scheme:  spec.Params.Scheme.String(),
		Size:    spec.Params.Size.String(),
	}
	return res, nil
}

func newTestService(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (SubmitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub SubmitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return sub, resp.StatusCode
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

func getRaw(t *testing.T, ts *httptest.Server, path string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), resp.StatusCode
}

// waitTerminal polls a job until it reaches done or failed.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var jr JobResponse
		if code := getJSON(t, ts, "/v1/jobs/"+id, &jr); code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s = %d", id, code)
		}
		if jr.Status == StateDone || jr.Status == StateFailed {
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, jr.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func serverStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	var st StatsResponse
	if code := getJSON(t, ts, "/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", code)
	}
	return st
}

// TestCachedResubmissionByteIdentical is service-level test (a): a
// re-submission of an already-computed spec — written with different
// JSON field order and with every default spelled out explicitly — is
// served from the cache without re-simulating, and GET /v1/results
// returns byte-identical snapshot bytes both times.  The run counter
// proves no second simulation happened.
func TestCachedResubmissionByteIdentical(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 2, EpochSize: 1})

	first := `{"bench":"health","scheme":"coop","size":"test"}`
	sub, code := postJob(t, ts, first)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	jr := waitTerminal(t, ts, sub.ID)
	if jr.Status != StateDone {
		t.Fatalf("first job %s: %s (%s)", sub.ID, jr.Status, jr.Error)
	}
	bytes1, code := getRaw(t, ts, "/v1/results/"+sub.Key)
	if code != http.StatusOK {
		t.Fatalf("GET result = %d", code)
	}
	snaps, err := stats.ParseSnapshots(bytes1)
	if err != nil || len(snaps) != 1 {
		t.Fatalf("served result is not one snapshot: %v", err)
	}
	if err := snaps[0].Validate(); err != nil {
		t.Fatalf("served snapshot invalid: %v", err)
	}

	// Same spec, different field order, defaults spelled out.
	second := `{"size":"test","interval":8,"engine":"dbp","idiom":"chain","scheme":"coop","memlat":70,"bench":"health"}`
	sub2, code := postJob(t, ts, second)
	if code != http.StatusOK || !sub2.Cached {
		t.Fatalf("resubmit = %d cached=%t, want 200 cached", code, sub2.Cached)
	}
	if sub2.Key != sub.Key {
		t.Fatalf("resubmit key %s != original %s", sub2.Key, sub.Key)
	}
	bytes2, code := getRaw(t, ts, "/v1/results/"+sub2.Key)
	if code != http.StatusOK {
		t.Fatalf("GET cached result = %d", code)
	}
	if !bytes.Equal(bytes1, bytes2) {
		t.Fatalf("cached snapshot differs from original:\n%s\nvs\n%s", bytes1, bytes2)
	}
	if st := serverStats(t, ts); st.Runs.Executed != 1 {
		t.Fatalf("runs executed = %d, want exactly 1", st.Runs.Executed)
	}
	// The cached submission's job record reads back as done+cached.
	jr2 := waitTerminal(t, ts, sub2.ID)
	if !jr2.Cached || jr2.Status != StateDone {
		t.Fatalf("cached job record: status=%s cached=%t", jr2.Status, jr2.Cached)
	}
}

// TestQueueFullReturns429NeverDrops is service-level test (b): with one
// worker wedged and the two-deep queue full, the next submission is
// rejected with 429 + Retry-After — and every job that was accepted
// (202) still runs to completion once the worker resumes.
func TestQueueFullReturns429NeverDrops(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(gate) }) }
	defer release()

	srv, ts := newTestService(t, Config{
		Workers:    1,
		QueueDepth: 2,
		RunFunc: func(spec harness.Spec) (harness.Result, error) {
			started <- struct{}{}
			<-gate
			return stubResult(spec)
		},
	})
	defer srv.Close()

	// Distinct memlat values give every submission its own cache key,
	// so nothing coalesces.
	spec := func(i int) string {
		return fmt.Sprintf(`{"bench":"health","size":"test","memlat":%d}`, 100+i)
	}
	sub1, code := postJob(t, ts, spec(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit 1 = %d", code)
	}
	<-started // the worker now holds job 1; the queue is empty

	var accepted []string
	accepted = append(accepted, sub1.ID)
	for i := 2; i <= 3; i++ {
		sub, code := postJob(t, ts, spec(i))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d, want 202", i, code)
		}
		accepted = append(accepted, sub.ID)
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 Retry-After = %q, want a positive second count", ra)
	}

	release()
	for _, id := range accepted {
		if jr := waitTerminal(t, ts, id); jr.Status != StateDone {
			t.Errorf("accepted job %s ended %s (%s)", id, jr.Status, jr.Error)
		}
	}
	st := serverStats(t, ts)
	if st.Jobs.Rejected != 1 || st.Jobs.Done != 3 || st.Runs.Executed != 3 {
		t.Fatalf("stats after drain: rejected=%d done=%d runs=%d, want 1/3/3",
			st.Jobs.Rejected, st.Jobs.Done, st.Runs.Executed)
	}
	if st.Queue.HighWater != 2 {
		t.Fatalf("queue high water = %d, want 2", st.Queue.HighWater)
	}
}

// TestSingleFlight is service-level test (c): N concurrent clients
// submitting the identical spec produce exactly one simulation; every
// client is attached to the same job and key.
func TestSingleFlight(t *testing.T) {
	gate := make(chan struct{})
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(gate) }) }
	defer release()

	srv, ts := newTestService(t, Config{
		Workers: 4,
		RunFunc: func(spec harness.Spec) (harness.Result, error) {
			<-gate
			return stubResult(spec)
		},
	})
	defer srv.Close()

	const clients = 16
	body := `{"bench":"mst","scheme":"dbp","size":"test"}`
	subs := make([]SubmitResponse, clients)
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			subs[i], codes[i] = postJob(t, ts, body)
		}(i)
	}
	wg.Wait()

	for i := 1; i < clients; i++ {
		if subs[i].Key != subs[0].Key {
			t.Fatalf("client %d got key %s, client 0 got %s", i, subs[i].Key, subs[0].Key)
		}
		if subs[i].ID != subs[0].ID {
			t.Fatalf("client %d got job %s, client 0 got %s — not coalesced", i, subs[i].ID, subs[0].ID)
		}
	}
	release()
	if jr := waitTerminal(t, ts, subs[0].ID); jr.Status != StateDone {
		t.Fatalf("shared job ended %s (%s)", jr.Status, jr.Error)
	}
	st := serverStats(t, ts)
	if st.Runs.Executed != 1 {
		t.Fatalf("runs executed = %d, want exactly 1 for %d clients", st.Runs.Executed, clients)
	}
	if st.Jobs.Coalesced != clients-1 {
		t.Fatalf("coalesced = %d, want %d", st.Jobs.Coalesced, clients-1)
	}
}

// TestPanicFailsOnlyItsJob is service-level test (d): a job whose
// simulation panics reaches failed with the recovered message, while
// concurrent jobs complete and the server keeps serving.
func TestPanicFailsOnlyItsJob(t *testing.T) {
	srv, ts := newTestService(t, Config{
		Workers: 2,
		RunFunc: func(spec harness.Spec) (harness.Result, error) {
			if spec.Bench == "bh" {
				panic("poisoned spec")
			}
			return stubResult(spec)
		},
	})
	defer srv.Close()

	bad, code := postJob(t, ts, `{"bench":"bh","size":"test"}`)
	if code != http.StatusAccepted {
		t.Fatalf("bad submit = %d", code)
	}
	good1, _ := postJob(t, ts, `{"bench":"health","size":"test"}`)
	good2, _ := postJob(t, ts, `{"bench":"mst","size":"test"}`)

	jr := waitTerminal(t, ts, bad.ID)
	if jr.Status != StateFailed || !strings.Contains(jr.Error, "poisoned spec") {
		t.Fatalf("poisoned job: status=%s error=%q, want failed with the panic message", jr.Status, jr.Error)
	}
	for _, id := range []string{good1.ID, good2.ID} {
		if jr := waitTerminal(t, ts, id); jr.Status != StateDone {
			t.Errorf("job %s ended %s (%s)", id, jr.Status, jr.Error)
		}
	}
	// Failures are not cached: the same spec retries with a fresh job.
	retry, code := postJob(t, ts, `{"bench":"bh","size":"test"}`)
	if code != http.StatusAccepted || retry.Cached || retry.ID == bad.ID {
		t.Fatalf("retry after failure: code=%d cached=%t id=%s (failed id %s)", code, retry.Cached, retry.ID, bad.ID)
	}
	if jr := waitTerminal(t, ts, retry.ID); jr.Status != StateFailed {
		t.Fatalf("retry status = %s, want failed again", jr.Status)
	}
	st := serverStats(t, ts)
	if st.Jobs.Failed != 2 || st.Jobs.Done != 2 {
		t.Fatalf("failed=%d done=%d, want 2/2", st.Jobs.Failed, st.Jobs.Done)
	}
}

// TestJobDeadlineEndToEnd drives a real simulation through the real
// harness with a 1ms deadline: the job must fail with the deadline
// error, and the configured MaxCycles backstop bounds the abandoned
// background goroutine.
func TestJobDeadlineEndToEnd(t *testing.T) {
	srv, ts := newTestService(t, Config{Workers: 1, MaxCycles: 2_000_000})
	defer srv.Close()
	sub, code := postJob(t, ts, `{"bench":"health","scheme":"none","size":"full","timeout_ms":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	jr := waitTerminal(t, ts, sub.ID)
	if jr.Status != StateFailed || !strings.Contains(jr.Error, "deadline") {
		t.Fatalf("deadline job: status=%s error=%q, want failed with deadline", jr.Status, jr.Error)
	}
}

// TestCachePersistsAcrossRestart exercises the on-disk layer: a result
// computed by one server instance is served as a cache hit by a fresh
// instance over the same directory, without re-simulating.
func TestCachePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1 := newTestService(t, Config{Workers: 2, CacheDir: dir, EpochSize: 1})
	body := `{"bench":"treeadd","scheme":"sw","size":"test"}`
	sub, code := postJob(t, ts1, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	if jr := waitTerminal(t, ts1, sub.ID); jr.Status != StateDone {
		t.Fatalf("job ended %s (%s)", jr.Status, jr.Error)
	}
	bytes1, code := getRaw(t, ts1, "/v1/results/"+sub.Key)
	if code != http.StatusOK {
		t.Fatalf("GET result = %d", code)
	}
	srv1.Close() // flushes the final epoch to disk
	if _, err := os.Stat(filepath.Join(dir, sub.Key+".json")); err != nil {
		t.Fatalf("persisted entry missing: %v", err)
	}

	srv2, ts2 := newTestService(t, Config{Workers: 2, CacheDir: dir})
	defer srv2.Close()
	sub2, code := postJob(t, ts2, body)
	if code != http.StatusOK || !sub2.Cached {
		t.Fatalf("restart resubmit = %d cached=%t, want 200 cached", code, sub2.Cached)
	}
	bytes2, code := getRaw(t, ts2, "/v1/results/"+sub2.Key)
	if code != http.StatusOK || !bytes.Equal(bytes1, bytes2) {
		t.Fatalf("restarted cache served different bytes (code %d)", code)
	}
	if st := serverStats(t, ts2); st.Runs.Executed != 0 {
		t.Fatalf("restarted server executed %d runs, want 0", st.Runs.Executed)
	}
}

// TestBadRequests locks down the validation surface: malformed bodies,
// unknown registry names, unknown fields, and malformed keys are
// rejected with 400, unknown ids/keys with 404.
func TestBadRequests(t *testing.T) {
	srv, ts := newTestService(t, Config{Workers: 1, RunFunc: stubResult})
	defer srv.Close()
	for _, body := range []string{
		``,
		`{`,
		`{"bench":""}`,
		`{"bench":"nosuch"}`,
		`{"bench":"health","scheme":"warp"}`,
		`{"bench":"health","idiom":"spiral"}`,
		`{"bench":"health","size":"enormous"}`,
		`{"bench":"health","engine":"nosuch"}`,
		`{"bench":"health","interval":-1}`,
		`{"bench":"health","memlat":-5}`,
		`{"bench":"health","timeout_ms":-1}`,
		`{"bench":"health","typo_field":1}`,
	} {
		if _, code := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("body %q = %d, want 400", body, code)
		}
	}
	if code := getJSON(t, ts, "/v1/jobs/j-999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", code)
	}
	if _, code := getRaw(t, ts, "/v1/results/not-a-key"); code != http.StatusBadRequest {
		t.Errorf("malformed key = %d, want 400", code)
	}
	if _, code := getRaw(t, ts, "/v1/results/"+strings.Repeat("ab", 32)); code != http.StatusNotFound {
		t.Errorf("unknown key = %d, want 404", code)
	}
}

// TestStatsShapeAndEpochMerge checks the versioned stats payload and
// that worker-local stores actually merge: after the system quiesces,
// the cache holds the completed results and at least one epoch merge
// has been counted.
func TestStatsShapeAndEpochMerge(t *testing.T) {
	srv, ts := newTestService(t, Config{Workers: 2, EpochSize: 3, RunFunc: stubResult})
	defer srv.Close()
	var ids []string
	for i := 0; i < 5; i++ {
		sub, code := postJob(t, ts, fmt.Sprintf(`{"bench":"health","size":"test","memlat":%d}`, 200+i))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		ids = append(ids, sub.ID)
	}
	for _, id := range ids {
		if jr := waitTerminal(t, ts, id); jr.Status != StateDone {
			t.Fatalf("job %s ended %s", id, jr.Status)
		}
	}
	// Workers merge on idle; give the scheduler a moment, then insist.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := serverStats(t, ts)
		if st.Cache.Entries == 5 && st.Cache.EpochMerges > 0 {
			if st.Version != StatsVersion {
				t.Fatalf("stats version = %d, want %d", st.Version, StatsVersion)
			}
			if st.Jobs.Done != 5 || st.Cache.Misses != 5 {
				t.Fatalf("done=%d misses=%d, want 5/5", st.Jobs.Done, st.Cache.Misses)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("epoch merge never happened: entries=%d merges=%d",
				st.Cache.Entries, st.Cache.EpochMerges)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCloseDrainsAcceptedJobs: shutting down with queued work drains it
// — every accepted job reaches a terminal state before Close returns.
func TestCloseDrainsAcceptedJobs(t *testing.T) {
	srv, ts := newTestService(t, Config{Workers: 1, QueueDepth: 8, RunFunc: stubResult})
	var ids []string
	for i := 0; i < 6; i++ {
		sub, code := postJob(t, ts, fmt.Sprintf(`{"bench":"health","size":"test","memlat":%d}`, 300+i))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		ids = append(ids, sub.ID)
	}
	srv.Close()
	for _, id := range ids {
		jr := waitTerminal(t, ts, id) // reads still served after Close
		if jr.Status != StateDone {
			t.Errorf("job %s ended %s after Close", id, jr.Status)
		}
	}
	if _, code := postJob(t, ts, `{"bench":"health","size":"test"}`); code != http.StatusServiceUnavailable {
		t.Errorf("submit after Close = %d, want 503", code)
	}
}

// TestUncacheableResultsNeverCached: truncated and sampled snapshots
// are partial/extrapolated results — admitting them to the result cache
// would serve approximate answers for a spec's canonical key forever.
// Resubmitting the same spec must re-execute, and the key must stay
// absent from /v1/results.
func TestUncacheableResultsNeverCached(t *testing.T) {
	cases := []struct {
		name   string
		memlat int
		mark   func(*stats.Snapshot)
	}{
		{"truncated", 901, func(s *stats.Snapshot) { s.Truncated = true }},
		{"sampled", 902, func(s *stats.Snapshot) {
			s.Sampled = true
			s.Sampling = &stats.SamplingReport{Intervals: 1}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestService(t, Config{
				Workers:   1,
				EpochSize: 1,
				RunFunc: func(spec harness.Spec) (harness.Result, error) {
					res, err := stubResult(spec)
					tc.mark(&res.Stats)
					return res, err
				},
			})
			body := fmt.Sprintf(`{"bench":"health","size":"test","memlat":%d}`, tc.memlat)
			sub, code := postJob(t, ts, body)
			if code != http.StatusAccepted {
				t.Fatalf("first submit = %d, want 202", code)
			}
			if jr := waitTerminal(t, ts, sub.ID); jr.Status != StateDone {
				t.Fatalf("first job: %s (%s)", jr.Status, jr.Error)
			}
			if _, code := getRaw(t, ts, "/v1/results/"+sub.Key); code != http.StatusNotFound {
				t.Fatalf("GET result for %s run = %d, want 404", tc.name, code)
			}
			sub2, code := postJob(t, ts, body)
			if code != http.StatusAccepted || sub2.Cached {
				t.Fatalf("resubmit = %d cached=%t, want 202 not-cached", code, sub2.Cached)
			}
			if jr := waitTerminal(t, ts, sub2.ID); jr.Status != StateDone {
				t.Fatalf("second job: %s (%s)", jr.Status, jr.Error)
			}
			if st := serverStats(t, ts); st.Runs.Executed != 2 {
				t.Fatalf("runs executed = %d, want 2 (no cache admission)", st.Runs.Executed)
			}
		})
	}
}
