package server

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/harness"
)

// Job states, as rendered in API responses.
const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued = "queued"
	// StateRunning: a worker is simulating it.
	StateRunning = "running"
	// StateDone: finished; the snapshot is available.
	StateDone = "done"
	// StateFailed: the run errored, panicked, or overran its deadline;
	// the job's Error carries the cause.  Failures are never cached, so
	// a re-submission retries.
	StateFailed = "failed"
)

// job is one accepted unit of work.  The id/key/spec/done fields are
// immutable after creation; state, errMsg and result are guarded by
// Server.mu, and done is closed exactly once when the job reaches a
// terminal state (result/errMsg are immutable from then on).
type job struct {
	id   string
	key  Key
	spec harness.Spec
	done chan struct{}

	state  string
	errMsg string
	result []byte
	// cached marks a synthetic record for a submission served entirely
	// from the result cache (no simulation, no queueing).
	cached bool
}

// localEntry is one completed result in a worker's shard-local store,
// waiting for the next epoch merge into the shared cache.
type localEntry struct {
	key  Key
	data []byte
	j    *job
}

// worker is one shard of the pool.  It keeps completed results in a
// local store and merges them into the shared cache on epoch
// boundaries — after EpochSize completions, or whenever the queue runs
// dry — so the global cache lock is amortized over a whole epoch
// instead of taken per job.
func (s *Server) worker() {
	defer s.wg.Done()
	var local []localEntry
	for {
		var j *job
		var ok bool
		select {
		case j, ok = <-s.queue:
		default:
			// Idle moment: nothing queued, so merge the epoch before
			// blocking.  Results become globally visible no later than
			// the instant the system quiesces.
			s.mergeEpoch(&local)
			j, ok = <-s.queue
		}
		if !ok {
			s.mergeEpoch(&local)
			return
		}
		s.runJob(j, &local)
		if len(local) >= s.cfg.EpochSize {
			s.mergeEpoch(&local)
		}
	}
}

// mergeEpoch publishes a worker's local store into the shared cache and
// retires the corresponding in-flight entries.  Order matters: an entry
// enters the cache before it leaves the in-flight index, so at every
// instant a submitted key is findable in at least one of the two — the
// invariant the single-flight check in submit relies on.
func (s *Server) mergeEpoch(local *[]localEntry) {
	if len(*local) == 0 {
		return
	}
	for _, e := range *local {
		s.cache.Put(e.key, e.data)
	}
	s.mu.Lock()
	for _, e := range *local {
		if s.inflight[e.key] == e.j {
			delete(s.inflight, e.key)
		}
	}
	s.mu.Unlock()
	s.ctr.epochMerges.Add(1)
	*local = (*local)[:0]
}

// runJob executes one job through the guarded run function and settles
// its terminal state.
func (s *Server) runJob(j *job, local *[]localEntry) {
	s.mu.Lock()
	j.state = StateRunning
	s.queuedGauge--
	s.runningGauge++
	s.mu.Unlock()

	start := time.Now()
	res, err := s.execute(j.spec)
	s.ctr.runsExecuted.Add(1)
	s.observeRunTime(time.Since(start))

	var data []byte
	if err == nil {
		// A snapshot that breaks its own invariants must never enter
		// the content-addressed store: fail the job instead.
		if verr := res.Stats.Validate(); verr != nil {
			err = fmt.Errorf("snapshot failed validation: %w", verr)
		}
	}
	if err == nil {
		data, err = json.Marshal(res.Stats)
	}

	s.mu.Lock()
	s.runningGauge--
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		// A failure must not pin the key: the next submission of the
		// same spec gets a fresh attempt.
		if s.inflight[j.key] == j {
			delete(s.inflight, j.key)
		}
		s.retireLocked(j.id)
		s.mu.Unlock()
		s.ctr.jobsFailed.Add(1)
		close(j.done)
		return
	}
	j.state = StateDone
	j.result = data
	s.retireLocked(j.id)
	uncacheable := res.Stats.Truncated || res.Stats.Sampled
	if uncacheable {
		// A MaxCycles-truncated run is not the spec's true result, and
		// a sampled run's cycle counts are extrapolated estimates;
		// caching either would serve a wrong (or approximate) snapshot
		// forever.  The job still reports it, but the key stays
		// uncached.
		if s.inflight[j.key] == j {
			delete(s.inflight, j.key)
		}
	}
	s.mu.Unlock()
	s.ctr.jobsDone.Add(1)
	close(j.done)
	if !uncacheable {
		*local = append(*local, localEntry{j.key, data, j})
	}
}

// execute runs one simulation through the configured run function.
// harness.RunGuarded already converts kernel panics and deadline
// overruns into errors; this wrapper is the pool's own backstop, so
// even a panic escaping the run function (or a test stub) fails only
// the one job rather than killing the worker and orphaning the queue.
func (s *Server) execute(spec harness.Spec) (res harness.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("server: job panicked: %v", r)
		}
	}()
	return s.run(spec)
}

// observeRunTime folds one run's wall-clock time into the EWMA the
// Retry-After estimate is derived from.
func (s *Server) observeRunTime(d time.Duration) {
	n := uint64(d.Nanoseconds())
	for {
		old := s.ctr.avgRunNanos.Load()
		next := n
		if old != 0 {
			next = (7*old + n) / 8
		}
		if s.ctr.avgRunNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// retireLocked records a terminal job for retention accounting and
// evicts the oldest finished records beyond the retention cap.  Only
// terminal jobs are ever appended, so eviction cannot drop a live one.
// Callers hold s.mu.
func (s *Server) retireLocked(id string) {
	s.finished = append(s.finished, id)
	for len(s.finished) > s.cfg.JobRetention {
		delete(s.byID, s.finished[0])
		s.finished = s.finished[1:]
	}
}
