package server

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/harness"
	"repro/internal/prefetch"
)

func mustKey(t *testing.T, req SpecRequest) Key {
	t.Helper()
	c, err := Normalize(req)
	if err != nil {
		t.Fatalf("Normalize(%+v): %v", req, err)
	}
	return c.Key()
}

// TestKeyDefaultFilling: a bare request and the same request with every
// default spelled out explicitly hash identically.
func TestKeyDefaultFilling(t *testing.T) {
	bare := mustKey(t, SpecRequest{Bench: "health", Scheme: "coop"})
	explicit := mustKey(t, SpecRequest{
		Bench:      "health",
		Scheme:     "coop",
		Idiom:      "chain", // health's representative idiom
		Engine:     "dbp",   // coop's default engine
		Interval:   8,       // Table 2 default
		Size:       "full",
		MemLatency: 70,
	})
	if bare != explicit {
		t.Fatalf("default-filled spec hashes differently:\nbare     %s\nexplicit %s", bare, explicit)
	}
}

// TestKeyIgnoresInertFields: fields a scheme cannot consume (an idiom
// under a hardware scheme, an interval with nothing to look ahead, the
// creation-only flag outside software idiom code, the timeout) do not
// split the key.
func TestKeyIgnoresInertFields(t *testing.T) {
	for _, tc := range []struct {
		name string
		a, b SpecRequest
	}{
		{"idiom under hw scheme", SpecRequest{Bench: "health", Scheme: "hw"},
			SpecRequest{Bench: "health", Scheme: "hw", Idiom: "chain"}},
		{"interval with no consumer", SpecRequest{Bench: "health", Scheme: "none"},
			SpecRequest{Bench: "health", Scheme: "none", Interval: 5}},
		{"creation_only under dbp", SpecRequest{Bench: "health", Scheme: "dbp"},
			SpecRequest{Bench: "health", Scheme: "dbp", CreationOnly: true}},
		{"timeout", SpecRequest{Bench: "health", Scheme: "sw"},
			SpecRequest{Bench: "health", Scheme: "sw", TimeoutMS: 5000}},
		{"explicit default engine", SpecRequest{Bench: "mst", Scheme: "hw"},
			SpecRequest{Bench: "mst", Scheme: "hw", Engine: "hw"}},
	} {
		if ka, kb := mustKey(t, tc.a), mustKey(t, tc.b); ka != kb {
			t.Errorf("%s: keys differ (%s vs %s)", tc.name, ka, kb)
		}
	}
}

// TestKeySplitsOnMeaningfulFields: every semantically meaningful change
// changes the key.
func TestKeySplitsOnMeaningfulFields(t *testing.T) {
	base := SpecRequest{Bench: "health", Scheme: "coop", Size: "small"}
	baseKey := mustKey(t, base)
	for _, tc := range []struct {
		name string
		req  SpecRequest
	}{
		{"bench", SpecRequest{Bench: "mst", Scheme: "coop", Size: "small"}},
		{"scheme", SpecRequest{Bench: "health", Scheme: "sw", Size: "small"}},
		{"idiom", SpecRequest{Bench: "health", Scheme: "coop", Size: "small", Idiom: "queue"}},
		{"engine", SpecRequest{Bench: "health", Scheme: "coop", Size: "small", Engine: "stride"}},
		{"interval", SpecRequest{Bench: "health", Scheme: "coop", Size: "small", Interval: 4}},
		{"size", SpecRequest{Bench: "health", Scheme: "coop", Size: "test"}},
		{"memlat", SpecRequest{Bench: "health", Scheme: "coop", Size: "small", MemLatency: 140}},
		{"creation_only", SpecRequest{Bench: "health", Scheme: "coop", Size: "small", CreationOnly: true}},
	} {
		if k := mustKey(t, tc.req); k == baseKey {
			t.Errorf("changing %s did not change the key", tc.name)
		}
	}
	// An engine override on a scheme that attaches none by default is
	// meaningful too.
	if mustKey(t, SpecRequest{Bench: "health"}) == mustKey(t, SpecRequest{Bench: "health", Engine: "markov"}) {
		t.Error("attaching an engine to the baseline did not change the key")
	}
}

// TestKeyJSONFieldOrder: the same request serialized with different
// JSON member orderings decodes to the same key (the wire-level half of
// canonicalization).
func TestKeyJSONFieldOrder(t *testing.T) {
	bodies := []string{
		`{"bench":"perimeter","scheme":"sw","idiom":"root","size":"small","interval":4}`,
		`{"interval":4,"size":"small","idiom":"root","scheme":"sw","bench":"perimeter"}`,
		`{"size":"small","bench":"perimeter","interval":4,"scheme":"sw","idiom":"root"}`,
	}
	var keys []Key
	for _, b := range bodies {
		var req SpecRequest
		if err := json.Unmarshal([]byte(b), &req); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, mustKey(t, req))
	}
	if keys[0] != keys[1] || keys[1] != keys[2] {
		t.Fatalf("field order changed the key: %v", keys)
	}
}

// TestNormalizeLowersToRunnableSpec: the canonical form round-trips
// into a spec the harness accepts (registry names resolve, overrides
// only materialize when they differ from Table 2).
func TestNormalizeLowersToRunnableSpec(t *testing.T) {
	c, err := Normalize(SpecRequest{Bench: "health", Scheme: "coop", Size: "test"})
	if err != nil {
		t.Fatal(err)
	}
	spec := c.Spec()
	if spec.Mem != nil {
		t.Errorf("default memlat materialized a Mem override")
	}
	if _, err := harness.Run(spec); err != nil {
		t.Fatalf("canonical spec does not run: %v", err)
	}

	c2, err := Normalize(SpecRequest{Bench: "health", MemLatency: 140, Size: "test"})
	if err != nil {
		t.Fatal(err)
	}
	spec2 := c2.Spec()
	if spec2.Mem == nil || spec2.Mem.MemLatency != 140 {
		t.Fatalf("memlat override not lowered: %+v", spec2.Mem)
	}
}

func TestParseKey(t *testing.T) {
	valid := string(mustKey(t, SpecRequest{Bench: "health"}))
	if _, err := ParseKey(valid); err != nil {
		t.Fatalf("ParseKey(own key): %v", err)
	}
	for _, bad := range []string{
		"",
		"abc",
		strings.Repeat("g", 64),              // non-hex
		strings.ToUpper(valid),               // case-sensitive
		"../../../../etc/passwd",             // traversal
		valid[:63] + "/",                     // traversal in last byte
		valid + "0",                          // too long
		strings.Repeat("a", 63) + "\x00",     // NUL
		strings.Repeat("0", 32) + "..\\x\\y", // separators
	} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted", bad)
		}
	}
}

// keyCorpus records canonical-form -> key across all fuzz iterations in
// this process, proving injectivity on the explored corpus: two
// different canonical forms never collide, and one canonical form never
// produces two keys.
var keyCorpus = struct {
	sync.Mutex
	byCanon map[string]Key
	byKey   map[Key]string
}{byCanon: map[string]Key{}, byKey: map[Key]string{}}

// FuzzCacheKey throws mutated requests at the canonicalization pipeline:
// Normalize and Key must never panic, accepted keys must be
// deterministic, parseable, and injective over the seen corpus.
func FuzzCacheKey(f *testing.F) {
	for _, b := range harness.BenchNames() {
		f.Add(b, "coop", "chain", "", 8, "full", 70, false)
	}
	for _, e := range prefetch.Names() {
		f.Add("health", "none", "", e, 0, "test", 0, false)
	}
	f.Add("mst", "sw", "queue", "stride", 16, "small", 140, true)
	f.Add("", "warp", "spiral", "nosuch", -3, "enormous", -70, false)
	f.Fuzz(func(t *testing.T, bench, scheme, idiom, engine string, interval int, size string, memlat int, creation bool) {
		req := SpecRequest{
			Bench: bench, Scheme: scheme, Idiom: idiom, Engine: engine,
			Interval: interval, Size: size, MemLatency: memlat, CreationOnly: creation,
		}
		c, err := Normalize(req)
		if err != nil {
			return // rejected inputs have no key
		}
		k1, k2 := c.Key(), c.Key()
		if k1 != k2 {
			t.Fatalf("non-deterministic key: %s vs %s", k1, k2)
		}
		if _, err := ParseKey(string(k1)); err != nil {
			t.Fatalf("own key fails ParseKey: %v", err)
		}
		canon := c.canonical()
		keyCorpus.Lock()
		defer keyCorpus.Unlock()
		if prev, ok := keyCorpus.byCanon[canon]; ok && prev != k1 {
			t.Fatalf("canonical %q produced keys %s and %s", canon, prev, k1)
		}
		if prevCanon, ok := keyCorpus.byKey[k1]; ok && prevCanon != canon {
			t.Fatalf("key collision: %q and %q both hash to %s", prevCanon, canon, k1)
		}
		keyCorpus.byCanon[canon] = k1
		keyCorpus.byKey[k1] = canon
	})
}
