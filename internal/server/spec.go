// Package server turns the batch simulator into a long-running
// simulation service: an HTTP/JSON API that accepts harness.Spec-shaped
// experiment requests, validates them against the workload and
// prefetch-engine registries, executes them on a worker-per-core
// sharded pool with a bounded job queue, and memoizes every successful
// result in a content-addressed cache so repeated sweeps hit stored
// stats.Snapshots instead of re-simulating.
//
// The design follows the coordinator/per-core-worker split of the
// ROADMAP's service item: each worker keeps a local store of completed
// results and merges it into the shared cache on epoch boundaries
// (every EpochSize completions, or whenever the worker goes idle), so
// the global cache mutex stays off the per-job hot path.  Backpressure
// is explicit: a full queue rejects new work with 429 + Retry-After
// rather than queueing unboundedly, and an accepted job is never
// dropped.  Fault isolation carries over from the batch runner: every
// job runs through harness.RunGuarded, so a panicking or wedged spec
// fails only its own job.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/olden"
	"repro/internal/prefetch"
	"repro/internal/stats"
)

// cacheFormatVersion identifies the cache-key derivation and the layout
// of persisted entries.  Bump it whenever the canonicalization rules or
// the stored byte format change incompatibly: old on-disk entries then
// simply never match and are re-simulated.
const cacheFormatVersion = 1

// SpecRequest is the wire shape of one experiment request (the POST
// /v1/jobs body).  It mirrors the jppsim flag set: every field uses the
// same string vocabulary the CLIs accept, and zero values select the
// same defaults.
type SpecRequest struct {
	// Bench names an Olden-suite workload (required).
	Bench string `json:"bench"`
	// Scheme is none|dbp|sw|coop|hw ("" = none).
	Scheme string `json:"scheme,omitempty"`
	// Idiom is queue|full|chain|root ("" = the benchmark's
	// representative idiom; ignored by non-software schemes).
	Idiom string `json:"idiom,omitempty"`
	// Engine names a registered prefetch engine to attach instead of
	// the scheme's default ("" keeps the default).
	Engine string `json:"engine,omitempty"`
	// Interval is the jump-pointer distance in nodes (0 = 8).
	Interval int `json:"interval,omitempty"`
	// Size is test|small|full|large ("" = full).
	Size string `json:"size,omitempty"`
	// MemLatency overrides the 70-cycle main-memory latency (0 keeps
	// the Table 2 value).
	MemLatency int `json:"memlat,omitempty"`
	// CreationOnly emits jump-pointer creation code but no prefetches
	// (the paper's §4.2 a-priori cost isolation).
	CreationOnly bool `json:"creation_only,omitempty"`
	// TimeoutMS bounds the run's wall-clock time; 0 selects the
	// server's default job deadline.  The timeout does not change what
	// a successful run computes, so it is not part of the cache key.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Canon is a validated, default-filled, semantically normalized spec —
// the canonical form the cache key is derived from.  Two requests that
// differ only in JSON field order, in explicit-versus-default values,
// or in fields their scheme ignores (an idiom on a hardware-only
// scheme, an interval with nothing to look ahead) normalize to the same
// Canon and therefore the same Key.
type Canon struct {
	Bench        string
	Scheme       core.Scheme
	Idiom        core.Idiom
	Engine       string
	Interval     int
	Size         olden.Size
	MemLatency   int
	CreationOnly bool
}

// parseScheme mirrors the jppsim vocabulary ("" = none).
func parseScheme(s string) (core.Scheme, error) {
	switch s {
	case "", "none":
		return core.SchemeNone, nil
	case "dbp":
		return core.SchemeDBP, nil
	case "sw", "software":
		return core.SchemeSoftware, nil
	case "coop", "cooperative":
		return core.SchemeCooperative, nil
	case "hw", "hardware":
		return core.SchemeHardware, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func parseIdiom(s string) (core.Idiom, error) {
	switch s {
	case "", "none":
		return core.IdiomNone, nil
	case "queue":
		return core.IdiomQueue, nil
	case "full":
		return core.IdiomFull, nil
	case "chain":
		return core.IdiomChain, nil
	case "root":
		return core.IdiomRoot, nil
	}
	return 0, fmt.Errorf("unknown idiom %q", s)
}

func parseSize(s string) (olden.Size, error) {
	switch s {
	case "", "full":
		return olden.SizeFull, nil
	case "test":
		return olden.SizeTest, nil
	case "small":
		return olden.SizeSmall, nil
	case "large":
		return olden.SizeLarge, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

// Normalize validates req against the workload and engine registries
// and resolves it to canonical form.  The rules, in order:
//
//   - Bench must name a registered workload; Scheme/Idiom/Size must
//     parse; a negative Interval, MemLatency or TimeoutMS is rejected.
//   - Engine resolves to the scheme's default when empty; an explicit
//     engine must exist in the prefetch registry.  An explicit engine
//     equal to the scheme's default is the default (same key).
//   - Idiom is only meaningful under the software and cooperative
//     schemes; there, "" resolves to the benchmark's representative
//     idiom.  Under every other scheme it normalizes to none.
//   - CreationOnly likewise only exists for software idiom code and
//     normalizes to false elsewhere.
//   - Interval expresses lookahead distance; it is meaningful when
//     software idiom code is emitted or an engine is attached (0
//     resolves to the Table 2 default of 8) and normalizes to 0 when
//     nothing consumes it.
//   - Size "" resolves to full, MemLatency 0 to the Table 2 latency.
func Normalize(req SpecRequest) (Canon, error) {
	if req.Bench == "" {
		return Canon{}, fmt.Errorf("missing bench (have %s)", strings.Join(harness.BenchNames(), ", "))
	}
	bench, ok := harness.BenchByName(req.Bench)
	if !ok {
		return Canon{}, fmt.Errorf("unknown bench %q (have %s)", req.Bench, strings.Join(harness.BenchNames(), ", "))
	}
	if req.Interval < 0 {
		return Canon{}, fmt.Errorf("negative interval %d", req.Interval)
	}
	if req.MemLatency < 0 {
		return Canon{}, fmt.Errorf("negative memlat %d", req.MemLatency)
	}
	if req.TimeoutMS < 0 {
		return Canon{}, fmt.Errorf("negative timeout_ms %d", req.TimeoutMS)
	}
	c := Canon{Bench: bench.Name}
	var err error
	if c.Scheme, err = parseScheme(req.Scheme); err != nil {
		return Canon{}, err
	}
	if c.Idiom, err = parseIdiom(req.Idiom); err != nil {
		return Canon{}, err
	}
	if c.Size, err = parseSize(req.Size); err != nil {
		return Canon{}, err
	}

	c.Engine = req.Engine
	if c.Engine == "" {
		c.Engine = prefetch.DefaultFor(c.Scheme)
	} else if !registered(c.Engine) {
		return Canon{}, fmt.Errorf("unknown engine %q (have %s)", c.Engine, strings.Join(prefetch.Names(), ", "))
	}

	if c.Scheme.UsesSoftwareIdiom() {
		if c.Idiom == core.IdiomNone {
			c.Idiom = bench.DefaultIdiom()
		}
		c.CreationOnly = req.CreationOnly
	} else {
		// Kernels emit no idiom code for these schemes: the fields are
		// inert and must not split the cache key.
		c.Idiom = core.IdiomNone
		c.CreationOnly = false
	}

	switch {
	case c.Scheme.UsesSoftwareIdiom() || c.Engine != "":
		c.Interval = req.Interval
		if c.Interval == 0 {
			c.Interval = core.DefaultInterval
		}
	default:
		// No idiom code and no engine: nothing reads the interval.
		c.Interval = 0
	}

	c.MemLatency = req.MemLatency
	if c.MemLatency == 0 {
		c.MemLatency = cache.Defaults().MemLatency
	}
	return c, nil
}

func registered(engine string) bool {
	for _, n := range prefetch.Names() {
		if n == engine {
			return true
		}
	}
	return false
}

// Key is the content address of a canonical spec's result: the SHA-256
// of the canonical serialization, hex-encoded.  Simulations are
// deterministic, so the key fully identifies the stats.Snapshot the
// spec produces under the current simulator version.
type Key string

// keyHexLen is the length of a rendered Key (sha256 = 32 bytes).
const keyHexLen = 2 * sha256.Size

// canonical renders the fixed-field-order serialization the key hashes.
// It includes the cache format version and the stats schema version, so
// either kind of incompatible change invalidates every old entry.
func (c Canon) canonical() string {
	return fmt.Sprintf("cache%d|stats%d|bench=%s|scheme=%s|idiom=%s|engine=%s|interval=%d|size=%s|memlat=%d|creation=%t",
		cacheFormatVersion, stats.SchemaVersion,
		c.Bench, c.Scheme, c.Idiom, c.Engine, c.Interval, c.Size, c.MemLatency, c.CreationOnly)
}

// Key derives the content address.
func (c Canon) Key() Key {
	sum := sha256.Sum256([]byte(c.canonical()))
	return Key(hex.EncodeToString(sum[:]))
}

// ParseKey validates an externally supplied key (a URL path element
// that will become a cache-directory file name): exactly 64 lowercase
// hex digits, nothing else, so no request can escape the cache dir.
func ParseKey(s string) (Key, error) {
	if len(s) != keyHexLen {
		return "", fmt.Errorf("key must be %d hex digits, got %d", keyHexLen, len(s))
	}
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return "", fmt.Errorf("key has non-hex byte %q at %d", ch, i)
		}
	}
	return Key(s), nil
}

// Spec lowers the canonical form to the harness spec the pool executes.
// The lowering preserves the exact default paths: overrides are only
// materialized when they differ from the Table 2 machine.
func (c Canon) Spec() harness.Spec {
	spec := harness.Spec{
		Bench:  c.Bench,
		Engine: c.Engine,
		Params: olden.Params{
			Scheme:       c.Scheme,
			Idiom:        c.Idiom,
			Interval:     c.Interval,
			Size:         c.Size,
			CreationOnly: c.CreationOnly,
		},
	}
	if def := cache.Defaults(); c.MemLatency != def.MemLatency {
		m := def
		m.MemLatency = c.MemLatency
		spec.Mem = &m
	}
	return spec
}
