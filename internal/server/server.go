package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cpu"
	"repro/internal/harness"
)

// StatsVersion identifies the JSON layout of the /v1/stats payload,
// following the same versioned-snapshot convention as stats.Snapshot.
const StatsVersion = 1

// Config sizes the service.  The zero value selects production
// defaults: one worker per core, a queue four deep per worker, epochs
// of eight completions, a memory-only cache, and no job deadline.
type Config struct {
	// Workers is the pool size (<= 0 selects GOMAXPROCS — one shard
	// per core).
	Workers int
	// QueueDepth bounds the job queue (<= 0 selects 4 * Workers).
	// A submission that finds the queue full is rejected with 429.
	QueueDepth int
	// EpochSize is how many completions a worker accumulates in its
	// local store before merging into the shared cache (<= 0 selects
	// 8).  Workers also merge whenever the queue runs dry.
	EpochSize int
	// CacheDir persists the result cache across restarts ("" keeps it
	// in memory only).
	CacheDir string
	// JobTimeout is the per-job deadline applied when a request does
	// not set timeout_ms (0 = no deadline).
	JobTimeout time.Duration
	// MaxCycles, when nonzero, is a hard simulated-cycle backstop
	// applied to every job, so a deadline-abandoned run's background
	// goroutine cannot simulate forever.  Truncated results are
	// reported but never cached.
	MaxCycles uint64
	// JobRetention caps how many finished job records GET /v1/jobs/{id}
	// keeps addressable (<= 0 selects 4096).  Results themselves live
	// in the content-addressed cache and are never evicted.
	JobRetention int
	// RunFunc executes one simulation (nil selects harness.RunGuarded,
	// which isolates panics and enforces Spec.Timeout).  Tests
	// substitute controllable stubs to exercise queueing and failure
	// paths without real simulations.
	RunFunc func(harness.Spec) (harness.Result, error)
}

// norm fills the config defaults.
func (c Config) norm() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.EpochSize <= 0 {
		c.EpochSize = 8
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 4096
	}
	if c.RunFunc == nil {
		c.RunFunc = harness.RunGuarded
	}
	return c
}

// counters are the monotonic service counters; gauges live on Server
// under mu.
type counters struct {
	submitted    atomic.Uint64
	accepted     atomic.Uint64
	rejected     atomic.Uint64
	coalesced    atomic.Uint64
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	runsExecuted atomic.Uint64
	jobsDone     atomic.Uint64
	jobsFailed   atomic.Uint64
	epochMerges  atomic.Uint64
	avgRunNanos  atomic.Uint64
}

// Server is the jppd simulation service.  It implements http.Handler.
type Server struct {
	cfg   Config
	cache *ResultCache
	run   func(harness.Spec) (harness.Result, error)
	mux   *http.ServeMux
	queue chan *job
	wg    sync.WaitGroup
	ctr   counters

	mu             sync.Mutex
	closed         bool
	nextID         int
	byID           map[string]*job
	inflight       map[Key]*job // queued, running, or done-but-unmerged
	finished       []string     // terminal job ids, oldest first
	queuedGauge    int
	runningGauge   int
	queueHighWater int
}

// New builds the service and starts its worker pool.  Callers must
// Close it to drain the queue and flush the final epoch.
func New(cfg Config) (*Server, error) {
	cfg = cfg.norm()
	cache, err := NewResultCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		cache:    cache,
		run:      cfg.RunFunc,
		queue:    make(chan *job, cfg.QueueDepth),
		byID:     make(map[string]*job),
		inflight: make(map[Key]*job),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Close stops accepting work, lets the workers drain every accepted
// job, and flushes the final epoch merges.  Accepted jobs are never
// dropped: a 202 means the job will reach a terminal state even if the
// server is shut down right after.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// Cache exposes the result store (read-mostly; used by diagnostics and
// tests).
func (s *Server) Cache() *ResultCache { return s.cache }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SubmitResponse is the POST /v1/jobs payload.
type SubmitResponse struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Status string `json:"status"`
	// Cached marks a submission served from the result cache (or from
	// an identical already-completed in-flight job) with no simulation
	// scheduled.
	Cached bool `json:"cached"`
	// Coalesced marks a submission attached to an identical job that
	// was already queued or running (single-flight): poll the returned
	// id — exactly one simulation serves every coalesced submitter.
	Coalesced bool `json:"coalesced,omitempty"`
}

// JobResponse is the GET /v1/jobs/{id} payload.
type JobResponse struct {
	ID       string          `json:"id"`
	Key      string          `json:"key"`
	Status   string          `json:"status"`
	Cached   bool            `json:"cached,omitempty"`
	Error    string          `json:"error,omitempty"`
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
}

// StatsResponse is the GET /v1/stats payload, versioned like every
// other stats JSON the repository emits.
type StatsResponse struct {
	Version   int `json:"version"`
	Workers   int `json:"workers"`
	QueueCap  int `json:"queue_cap"`
	EpochSize int `json:"epoch_size"`
	Jobs      struct {
		Submitted uint64 `json:"submitted"`
		Accepted  uint64 `json:"accepted"`
		Rejected  uint64 `json:"rejected"`
		Coalesced uint64 `json:"coalesced"`
		Done      uint64 `json:"done"`
		Failed    uint64 `json:"failed"`
		Queued    int    `json:"queued"`
		Running   int    `json:"running"`
	} `json:"jobs"`
	Cache struct {
		Hits        uint64 `json:"hits"`
		Misses      uint64 `json:"misses"`
		Entries     int    `json:"entries"`
		EpochMerges uint64 `json:"epoch_merges"`
	} `json:"cache"`
	Queue struct {
		Depth     int `json:"depth"`
		HighWater int `json:"high_water"`
	} `json:"queue"`
	Runs struct {
		Executed uint64  `json:"executed"`
		AvgMS    float64 `json:"avg_ms"`
	} `json:"runs"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.ctr.submitted.Add(1)
	var req SpecRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	canon, err := Normalize(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	key := canon.Key()
	spec := canon.Spec()
	spec.Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	if spec.Timeout == 0 {
		spec.Timeout = s.cfg.JobTimeout
	}
	if s.cfg.MaxCycles > 0 && spec.CPU == nil {
		c := cpu.Defaults()
		c.MaxCycles = s.cfg.MaxCycles
		spec.CPU = &c
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	// Single-flight: any identical submission currently queued,
	// running, or completed-but-unmerged attaches to the existing job
	// instead of scheduling a second simulation.  mergeEpoch removes an
	// in-flight entry only after the cache holds it, so checking
	// inflight then cache under one lock hold cannot miss both.
	if j, ok := s.inflight[key]; ok {
		id, state := j.id, j.state
		if state == StateDone {
			s.mu.Unlock()
			s.ctr.cacheHits.Add(1)
			writeJSON(w, http.StatusOK, SubmitResponse{ID: id, Key: string(key), Status: StateDone, Cached: true})
			return
		}
		s.mu.Unlock()
		s.ctr.coalesced.Add(1)
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: id, Key: string(key), Status: state, Coalesced: true})
		return
	}
	if data, ok := s.cache.Get(key); ok {
		j := s.newCachedJobLocked(key, data)
		s.mu.Unlock()
		s.ctr.cacheHits.Add(1)
		writeJSON(w, http.StatusOK, SubmitResponse{ID: j.id, Key: string(key), Status: StateDone, Cached: true})
		return
	}
	s.nextID++
	j := &job{
		id:    fmt.Sprintf("j-%d", s.nextID),
		key:   key,
		spec:  spec,
		done:  make(chan struct{}),
		state: StateQueued,
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.ctr.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "job queue full (%d deep); retry later", s.cfg.QueueDepth)
		return
	}
	s.byID[j.id] = j
	s.inflight[key] = j
	s.queuedGauge++
	if d := len(s.queue); d > s.queueHighWater {
		s.queueHighWater = d
	}
	s.mu.Unlock()
	s.ctr.accepted.Add(1)
	s.ctr.cacheMisses.Add(1)
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: j.id, Key: string(key), Status: StateQueued})
}

// newCachedJobLocked registers a synthetic, already-done job record for
// a cache-hit submission, so GET /v1/jobs/{id} works uniformly whether
// the result was simulated or served from the store.  Callers hold
// s.mu.
func (s *Server) newCachedJobLocked(key Key, data []byte) *job {
	s.nextID++
	j := &job{
		id:     fmt.Sprintf("j-%d", s.nextID),
		key:    key,
		done:   make(chan struct{}),
		state:  StateDone,
		result: data,
		cached: true,
	}
	close(j.done)
	s.byID[j.id] = j
	s.retireLocked(j.id)
	return j
}

// retryAfterSeconds estimates when queue space should free up: the
// depth of work ahead times the average run time, spread over the
// worker shards; at least one second.
func (s *Server) retryAfterSeconds() int {
	avg := time.Duration(s.ctr.avgRunNanos.Load())
	if avg <= 0 {
		return 1
	}
	est := avg * time.Duration(len(s.queue)+1) / time.Duration(s.cfg.Workers)
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	resp := JobResponse{
		ID:     j.id,
		Key:    string(j.key),
		Status: j.state,
		Cached: j.cached,
		Error:  j.errMsg,
	}
	if j.state == StateDone {
		resp.Snapshot = json.RawMessage(j.result)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key, err := ParseKey(r.PathValue("key"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad key: %v", err)
		return
	}
	if data, ok := s.cache.Get(key); ok {
		s.serveSnapshot(w, data)
		return
	}
	// Completed but not yet merged: serve straight from the job.
	s.mu.Lock()
	var data []byte
	if j, ok := s.inflight[key]; ok && j.state == StateDone {
		data = j.result
	}
	s.mu.Unlock()
	if data != nil {
		s.serveSnapshot(w, data)
		return
	}
	writeError(w, http.StatusNotFound, "no result for key %s", key)
}

// serveSnapshot writes the stored snapshot bytes exactly as cached —
// the byte-identity the content-addressed store guarantees.
func (s *Server) serveSnapshot(w http.ResponseWriter, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats assembles the versioned counter snapshot.
func (s *Server) Stats() StatsResponse {
	var resp StatsResponse
	resp.Version = StatsVersion
	resp.Workers = s.cfg.Workers
	resp.QueueCap = s.cfg.QueueDepth
	resp.EpochSize = s.cfg.EpochSize
	resp.Jobs.Submitted = s.ctr.submitted.Load()
	resp.Jobs.Accepted = s.ctr.accepted.Load()
	resp.Jobs.Rejected = s.ctr.rejected.Load()
	resp.Jobs.Coalesced = s.ctr.coalesced.Load()
	resp.Jobs.Done = s.ctr.jobsDone.Load()
	resp.Jobs.Failed = s.ctr.jobsFailed.Load()
	resp.Cache.Hits = s.ctr.cacheHits.Load()
	resp.Cache.Misses = s.ctr.cacheMisses.Load()
	resp.Cache.Entries = s.cache.Len()
	resp.Cache.EpochMerges = s.ctr.epochMerges.Load()
	resp.Runs.Executed = s.ctr.runsExecuted.Load()
	resp.Runs.AvgMS = float64(s.ctr.avgRunNanos.Load()) / 1e6
	resp.Queue.Depth = len(s.queue)
	s.mu.Lock()
	resp.Jobs.Queued = s.queuedGauge
	resp.Jobs.Running = s.runningGauge
	resp.Queue.HighWater = s.queueHighWater
	s.mu.Unlock()
	return resp
}
