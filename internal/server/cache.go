package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/stats"
)

// ResultCache is the content-addressed result store: canonical spec key
// -> the exact bytes of the marshaled stats.Snapshot that spec
// produced.  Entries are immutable — the simulator is deterministic, so
// a key can only ever map to one byte string, and the first write wins.
// When backed by a directory the cache persists across server restarts:
// every merged entry is written to <dir>/<key>.json with an atomic
// tmp+rename, and an in-memory miss falls back to a disk probe, so a
// restarted daemon re-serves every previously simulated point without
// re-running it.
type ResultCache struct {
	dir string

	mu  sync.RWMutex
	mem map[Key][]byte
}

// NewResultCache opens a cache.  dir == "" selects a memory-only cache;
// otherwise the directory is created if needed and used for
// persistence.
func NewResultCache(dir string) (*ResultCache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("server: cache dir: %w", err)
		}
	}
	return &ResultCache{dir: dir, mem: make(map[Key][]byte)}, nil
}

// path returns the persistence file for k.  Keys are validated hex
// (ParseKey / Canon.Key), so the join cannot escape the cache dir.
func (c *ResultCache) path(k Key) string {
	return filepath.Join(c.dir, string(k)+".json")
}

// Get returns the stored snapshot bytes for k.  A memory miss probes
// the persistence directory; a parseable on-disk entry is memoized and
// served, a corrupt one is treated as a miss (it will be re-simulated
// and rewritten).
func (c *ResultCache) Get(k Key) ([]byte, bool) {
	c.mu.RLock()
	data, ok := c.mem[k]
	c.mu.RUnlock()
	if ok {
		return data, true
	}
	if c.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.path(k))
	if err != nil {
		return nil, false
	}
	// Never serve bytes that do not decode to a current-schema
	// snapshot: a truncated write or a stale-format file is a miss.
	snaps, err := stats.ParseSnapshots(data)
	if err != nil || len(snaps) != 1 || snaps[0].Validate() != nil {
		return nil, false
	}
	c.mu.Lock()
	if prev, dup := c.mem[k]; dup {
		data = prev // another goroutine loaded it first; keep one copy
	} else {
		c.mem[k] = data
	}
	c.mu.Unlock()
	return data, true
}

// Put stores the snapshot bytes for k in memory and, when persistent,
// on disk.  The first write wins; re-putting an existing key is a
// no-op, preserving the byte-identity guarantee for everything already
// served.
func (c *ResultCache) Put(k Key, data []byte) {
	c.mu.Lock()
	if _, dup := c.mem[k]; dup {
		c.mu.Unlock()
		return
	}
	c.mem[k] = data
	c.mu.Unlock()
	if c.dir == "" {
		return
	}
	// Atomic publish: a reader never observes a partial file.  Failures
	// are non-fatal — the entry still serves from memory, and the disk
	// copy is retried the next time the key is re-simulated after a
	// restart.
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(k)); err != nil {
		os.Remove(name)
	}
}

// Len reports the number of in-memory entries (disk-only entries not
// yet probed are not counted).
func (c *ResultCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.mem)
}
