package ir

// Decoded basic-block replay cache.
//
// A kernel emits the same loop bodies over and over: the static side of
// every DynInst (PC, class, flags, branch target) is identical on every
// dynamic pass over a PC region, and only the dynamic slots (addresses,
// values, sequence numbers, branch outcomes) change.  The first dynamic
// pass over a region *captures* the decoded group — a maximal run of
// emissions ending at a control-flow instruction, cut at maxBlockLen
// for control-free runs — into a per-kernel block table keyed by entry
// PC.  Every later pass *replays* the template: the emission fast path
// verifies the static fields against the template, reuses the
// pre-decoded per-instruction dispatch metadata, and defers
// instruction-mix accounting to a single per-block delta, while the
// kernel's own emission calls keep filling in the dynamic slots.
//
// Replay never synthesizes instructions.  The emitted stream is always
// exactly what the kernel's calls produce; a template mismatch (a
// data-dependent emission path) aborts the block — the already
// fast-pathed prefix is re-accounted from the template — and emission
// falls back to the bypass path until the next control-flow boundary
// realigns block capture.  The stream, accounting totals, and metadata
// are therefore bit-identical with replay on or off.
//
// Alongside the instruction batch, replay-enabled generators hand the
// core one InstMeta byte per instruction with the dispatch-relevant
// decode pre-resolved (memory/store/control classification and the
// exact fetch-line-crossing bit), which is what lets internal/cpu
// dispatch whole blocks without per-instruction decode.

// InstMeta is one byte of pre-decoded dispatch metadata accompanying
// each DynInst when block replay is enabled.
type InstMeta uint8

const (
	// MetaMem marks Load/Store/Prefetch instructions (LSQ occupants).
	MetaMem InstMeta = 1 << iota
	// MetaStore marks Store instructions (store-queue occupants).
	MetaStore
	// MetaCtrl marks Branch/Jump instructions (fetch redirect points).
	MetaCtrl
	// MetaNewLine marks an instruction whose PC starts a fetch line the
	// front end has not yet requested.  It is exact, not a hint: the
	// generator tracks the same fetch-line state the core's classic
	// front end evolves (reset on taken control flow, else the line of
	// the previous instruction), so a core consuming metadata needs no
	// fetch-line bookkeeping of its own.
	MetaNewLine
)

// maxBlockLen cuts control-free emission runs so templates stay small
// and a straight-line prologue cannot produce an unbounded block.
const maxBlockLen = 64

// maxBlockAborts evicts a template that keeps mismatching (a block
// whose first-captured variant is not the dominant emission path), so
// the dominant variant can be recaptured at the next entry.
const maxBlockAborts = 64

// instTmpl is the captured static side of one instruction.
type instTmpl struct {
	// key packs PC, class, and final flags for one-compare verification.
	key    uint64
	target uint32
	meta   InstMeta
	class  Class
	flags  Flag
}

// tmplKey packs the statically-verifiable fields of an instruction.
func tmplKey(pc uint32, cl Class, fl Flag) uint64 {
	return uint64(pc) | uint64(cl)<<32 | uint64(fl)<<40
}

// classDelta is one non-zero entry of a block's instruction-mix delta.
type classDelta struct {
	cl Class
	n  uint32
}

// block is one captured basic block.
type block struct {
	entry uint32
	ins   []instTmpl
	// Per-block accounting deltas, applied once when a replay of the
	// whole block completes (the fast path skips per-inst accounting).
	deltas                 []classDelta
	orig, ovhd, lds, other uint32
	aborts                 uint32
}

// replayState is the capture/replay state machine threaded through
// Asm.finish.  It lives by value inside Asm.
type replayState struct {
	// table is the per-kernel block table keyed by entry PC, stored as
	// a dense slice indexed by (PC-CodeBase)/4 (all kernel PCs come
	// from SitePC, so sites are small and dense).
	table []*block
	// tmpl/pos: the template being replayed and the next index in it.
	tmpl *block
	pos  int
	// cap: the block being captured (nil when not capturing).
	cap *block
	// atStart is true when the next emission begins a new block.
	atStart bool
	// simLine mirrors the core's fetch-line state over the emitted
	// stream: 0 after taken control flow, else line(PC)|1 of the
	// previous instruction.
	simLine uint32

	blocksCaptured uint64
	replayedInsts  uint64
	replayAborts   uint64
}

// lookup returns the captured block entered at pc, or nil.
func (r *replayState) lookup(pc uint32) *block {
	idx := int(pc-CodeBase) >> 2
	if idx < 0 || idx >= len(r.table) {
		return nil
	}
	return r.table[idx]
}

// insert stores b in the block table, growing it on demand.
func (r *replayState) insert(b *block) {
	idx := int(b.entry-CodeBase) >> 2
	if idx < 0 {
		return
	}
	for idx >= len(r.table) {
		r.table = append(r.table, make([]*block, idx+1-len(r.table))...)
	}
	r.table[idx] = b
}

// remove evicts the block entered at pc.
func (r *replayState) remove(pc uint32) {
	idx := int(pc-CodeBase) >> 2
	if idx >= 0 && idx < len(r.table) {
		r.table[idx] = nil
	}
}

// liveMeta computes the dispatch metadata for d against the current
// fetch-line state and advances that state.  This is the slow path; the
// replay fast path reuses the template's byte instead.
func (a *Asm) liveMeta(d *DynInst) InstMeta {
	var m InstMeta
	switch d.Class {
	case Load, Prefetch:
		m = MetaMem
	case Store:
		m = MetaMem | MetaStore
	case Branch, Jump:
		m = MetaCtrl
	}
	line := d.PC>>5<<5 | 1
	if line != a.rp.simLine {
		m |= MetaNewLine
	}
	if d.Class == Jump || (d.Class == Branch && d.Taken) {
		a.rp.simLine = 0
	} else {
		a.rp.simLine = line
	}
	return m
}

// finishTracked is the replay-enabled finish: it maintains the block
// table, verifies replayed instructions against their template, and
// produces the per-instruction dispatch metadata.
func (a *Asm) finishTracked(d *DynInst) {
	r := &a.rp
	if r.tmpl == nil && r.atStart {
		r.atStart = false
		if b := r.lookup(d.PC); b != nil {
			r.tmpl, r.pos = b, 0
		} else {
			r.cap = &block{entry: d.PC}
		}
	}
	if t := r.tmpl; t != nil {
		e := &t.ins[r.pos]
		fl := d.Flags
		if a.overhead || d.Class == Prefetch {
			fl |= FOverhead
		}
		if e.key == tmplKey(d.PC, d.Class, fl) && e.target == d.Target {
			// Replay fast path: statics verified, reuse the decoded
			// metadata and defer accounting to the block delta.
			d.Flags = fl
			m := e.meta
			if r.pos == 0 {
				// The entry instruction's line-crossing bit depends on
				// the predecessor block, so it is resolved dynamically.
				m &^= MetaNewLine
				if d.PC>>5<<5|1 != r.simLine {
					m |= MetaNewLine
				}
			}
			a.meta = append(a.meta, m)
			r.pos++
			if r.pos == len(t.ins) {
				a.closeReplay(t, d)
			}
			if len(a.batch) == BatchSize {
				a.sendBatch()
			}
			return
		}
		a.abortReplay(t)
	}

	// Slow path: capture or bypass.  Full per-inst accounting, live
	// metadata.
	a.account(d)
	m := a.liveMeta(d)
	a.meta = append(a.meta, m)
	if b := r.cap; b != nil {
		b.ins = append(b.ins, instTmpl{
			key:    tmplKey(d.PC, d.Class, d.Flags),
			target: d.Target,
			meta:   m,
			class:  d.Class,
			flags:  d.Flags,
		})
		if d.IsCtrl() || len(b.ins) == maxBlockLen {
			a.closeCapture(b)
		}
	} else if d.IsCtrl() {
		// Bypass (post-abort) realigns at the next control boundary.
		r.atStart = true
	}
	if len(a.batch) == BatchSize {
		a.sendBatch()
	}
}

// closeReplay finishes a fully-replayed block: applies the block's
// accounting delta, advances the fetch-line state past the final
// instruction d, and re-arms block-start detection.
func (a *Asm) closeReplay(t *block, d *DynInst) {
	for _, cd := range t.deltas {
		a.counts[cd.cl] += uint64(cd.n)
	}
	a.origInsts += uint64(t.orig)
	a.ovhdInsts += uint64(t.ovhd)
	a.ldsLoads += uint64(t.lds)
	a.otherLoads += uint64(t.other)
	a.rp.replayedInsts += uint64(len(t.ins))
	if d.Class == Jump || (d.Class == Branch && d.Taken) {
		a.rp.simLine = 0
	} else {
		a.rp.simLine = d.PC>>5<<5 | 1
	}
	a.rp.tmpl = nil
	a.rp.atStart = true
}

// closeCapture seals a captured block: computes its accounting deltas
// and inserts it into the table.
func (a *Asm) closeCapture(b *block) {
	var counts [NumClasses]uint32
	for i := range b.ins {
		e := &b.ins[i]
		counts[e.class]++
		if e.flags&FOverhead != 0 {
			b.ovhd++
		} else {
			b.orig++
		}
		if e.class == Load {
			if e.flags&FLDS != 0 {
				b.lds++
			} else {
				b.other++
			}
		}
	}
	for cl, n := range counts {
		if n != 0 {
			b.deltas = append(b.deltas, classDelta{cl: Class(cl), n: n})
		}
	}
	a.rp.insert(b)
	a.rp.blocksCaptured++
	a.rp.cap = nil
	a.rp.atStart = true
}

// accountPrefix applies the deferred per-instruction accounting for the
// first n template entries of t (a fast-pathed prefix whose block-level
// delta will never be applied).
func (a *Asm) accountPrefix(t *block, n int) {
	for i := 0; i < n; i++ {
		e := &t.ins[i]
		a.counts[e.class]++
		if e.flags&FOverhead != 0 {
			a.ovhdInsts++
		} else {
			a.origInsts++
		}
		if e.class == Load {
			if e.flags&FLDS != 0 {
				a.ldsLoads++
			} else {
				a.otherLoads++
			}
		}
	}
}

// finishReplayTail settles a stream that ends mid-replay: the prefix of
// the in-flight block is accounted from its template.  Called (once)
// when stats are collected; idempotent.
func (a *Asm) finishReplayTail() {
	if t := a.rp.tmpl; t != nil {
		a.accountPrefix(t, a.rp.pos)
		a.rp.tmpl = nil
	}
}

// abortReplay handles a template mismatch mid-block: the fast-pathed
// prefix [0, pos) skipped per-inst accounting, so it is re-accounted
// from the template, the block's abort count advances (evicting
// persistently wrong templates), and emission drops to the bypass path
// until the next control boundary.
func (a *Asm) abortReplay(t *block) {
	r := &a.rp
	a.accountPrefix(t, r.pos)
	if r.pos > 0 {
		// The fast path defers fetch-line tracking to block close;
		// advance it past the replayed prefix (interior instructions
		// are never control flow, so the line is that of the last
		// prefix instruction).
		a.rp.simLine = uint32(t.ins[r.pos-1].key)>>5<<5 | 1
	}
	r.replayAborts++
	if t.aborts++; t.aborts >= maxBlockAborts {
		r.remove(t.entry)
	}
	r.tmpl = nil
	// Note: atStart stays false — bypass until the next control-flow
	// instruction realigns block boundaries.
}
