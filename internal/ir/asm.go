package ir

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/mem"
)

// Val is a register value handle.  Workload kernels thread Vals between
// Asm calls; each Val carries the concrete 32-bit value (so the kernel
// can compute with it in Go) and the dynamic sequence number of the
// producing instruction (so the timing core can track dependences).
//
// The zero Val is the constant 0: always ready, produced by nothing.
type Val struct {
	seq uint64
	v   uint32
}

// Imm returns a constant value, always ready.
func Imm(v uint32) Val { return Val{v: v} }

// U32 returns the concrete value.
func (v Val) U32() uint32 { return v.v }

// IsNil reports whether the value is a null pointer.
func (v Val) IsNil() bool { return v.v == 0 }

// Sites 0..63 are reserved for the simulated runtime (malloc, free).
// Workload kernels must use sites >= FirstUserSite.
const (
	mallocSite    = 0
	mallocSiteEnd = 15
	freeSite      = 16
	freeSiteEnd   = 23
	// FirstUserSite is the first static-instruction site available to
	// workload kernels.
	FirstUserSite = 64
)

// SitePC converts a static site id to its simulated program counter.
func SitePC(site int) uint32 { return CodeBase + uint32(site)*4 }

// Asm builds a workload's dynamic instruction stream.  It is handed to
// the kernel function by NewGen and must not be retained after the
// kernel returns.
//
// Emission writes each decoded instruction directly into its final slot
// of the outgoing batch (the decoded-trace buffer the timing core
// replays from): one struct store per instruction, no scratch copy and
// no per-instruction closure call.  The batch is handed to the consumer
// only at the exact instant it fills — immediately after the
// BatchSize'th instruction's accounting, before any further functional
// execution — so the memory image and allocator state the timing side
// observes at each handoff are identical to the historical
// emit-callback path.
type Asm struct {
	img  *mem.Image
	heap *heap.Allocator

	// batch is the in-progress decoded batch (cap BatchSize); send
	// blocks until the consumer has drained a full batch and handed the
	// buffer back.  meta carries one pre-decoded dispatch byte per
	// batch slot when block replay is enabled (nil otherwise) and is
	// handed over with the batch.
	batch []DynInst
	meta  []InstMeta
	send  func([]DynInst, []InstMeta)

	// rp is the basic-block capture/replay state machine (see
	// replay.go); active only when meta is non-nil.
	rp replayState

	seq      uint64
	sp       uint32
	overhead bool

	counts     [NumClasses]uint64
	origInsts  uint64 // non-overhead instructions
	ovhdInsts  uint64 // overhead (prefetch-transformation) instructions
	ldsLoads   uint64
	otherLoads uint64
}

// newAsm is called by NewGen.  When replay is true the Asm captures and
// replays decoded basic blocks and emits per-instruction dispatch
// metadata alongside each batch.
func newAsm(alloc *heap.Allocator, send func([]DynInst, []InstMeta), replay bool) *Asm {
	a := &Asm{
		img:   alloc.Image(),
		heap:  alloc,
		batch: make([]DynInst, 0, BatchSize),
		send:  send,
		sp:    StackBase,
	}
	if replay {
		a.meta = make([]InstMeta, 0, BatchSize)
		a.rp.atStart = true
	}
	return a
}

// slot extends the batch by one instruction and returns the slot to
// decode into.  The caller must fill every field (slots are reused
// across batches) and then call finish.
func (a *Asm) slot() *DynInst {
	n := len(a.batch)
	a.batch = a.batch[:n+1]
	return &a.batch[n]
}

// flushTail hands any unsent instructions to the consumer; NewGen calls
// it after the kernel returns.
func (a *Asm) flushTail() {
	if len(a.batch) > 0 {
		a.sendBatch()
	}
}

// sendBatch hands the filled batch (and its metadata, when replay is
// enabled) to the consumer and resets the buffers.
func (a *Asm) sendBatch() {
	a.send(a.batch, a.meta)
	a.batch = a.batch[:0]
	if a.meta != nil {
		a.meta = a.meta[:0]
	}
}

// Heap returns the simulated allocator, for workloads that need direct
// inspection (e.g. padding-slot addresses for software jump-pointers).
func (a *Asm) Heap() *heap.Allocator { return a.heap }

// Image returns the simulated memory image.
func (a *Asm) Image() *mem.Image { return a.img }

func (a *Asm) next(site int) (uint64, uint32) {
	a.seq++
	return a.seq, SitePC(site)
}

// finish completes the instruction decoded into d (the most recent
// slot): classification accounting, overhead tagging, and the batch
// handoff when d was the batch's last slot.  With block replay enabled
// it routes through the capture/replay state machine instead.
func (a *Asm) finish(d *DynInst) {
	if a.meta != nil {
		a.finishTracked(d)
		return
	}
	a.account(d)
	if len(a.batch) == BatchSize {
		a.sendBatch()
	}
}

// account applies per-instruction classification accounting and
// finalizes d's flags (overhead tagging).
func (a *Asm) account(d *DynInst) {
	a.counts[d.Class]++
	if a.overhead || d.Class == Prefetch {
		d.Flags |= FOverhead
	}
	if d.Flags&FOverhead != 0 {
		a.ovhdInsts++
	} else {
		a.origInsts++
	}
	if d.Class == Load {
		if d.Flags&FLDS != 0 {
			a.ldsLoads++
		} else {
			a.otherLoads++
		}
	}
}

// Overhead runs fn with all emitted instructions tagged FOverhead.  The
// prefetching idioms wrap jump-pointer creation and prefetch code in it
// so that overhead accounting (Figure 6 normalization, the costs table)
// is automatic.
func (a *Asm) Overhead(fn func()) {
	prev := a.overhead
	a.overhead = true
	fn()
	a.overhead = prev
}

// Op emits an instruction of class c whose result the kernel computed in
// Go.  x and y are the register inputs (use Imm for constants).
func (a *Asm) Op(site int, c Class, result uint32, x, y Val) Val {
	seq, pc := a.next(site)
	d := a.slot()
	*d = DynInst{Seq: seq, PC: pc, Class: c, Src1: x.seq, Src2: y.seq, Value: result}
	a.finish(d)
	return Val{seq: seq, v: result}
}

// Alu emits a single-cycle integer operation.
func (a *Asm) Alu(site int, result uint32, x, y Val) Val {
	return a.Op(site, IntAlu, result, x, y)
}

// AddImm emits the common pointer-arithmetic idiom x + k.
func (a *Asm) AddImm(site int, x Val, k uint32) Val {
	return a.Op(site, IntAlu, x.v+k, x, Val{})
}

// Load emits a binding load from base+off and returns the loaded value.
func (a *Asm) Load(site int, base Val, off uint32, flags Flag) Val {
	seq, pc := a.next(site)
	addr := base.v + off
	v := a.img.ReadWord(addr)
	d := a.slot()
	*d = DynInst{
		Seq: seq, PC: pc, Class: Load, Src1: base.seq,
		Addr: addr, Value: v, BaseValue: base.v,
		Flags: flags,
	}
	a.finish(d)
	return Val{seq: seq, v: v}
}

// LoadIdx emits a load from base+idx+off with two register inputs
// (array indexing).
func (a *Asm) LoadIdx(site int, base, idx Val, off uint32, flags Flag) Val {
	seq, pc := a.next(site)
	addr := base.v + idx.v + off
	v := a.img.ReadWord(addr)
	d := a.slot()
	*d = DynInst{
		Seq: seq, PC: pc, Class: Load, Src1: base.seq, Src2: idx.seq,
		Addr: addr, Value: v, BaseValue: base.v,
		Flags: flags,
	}
	a.finish(d)
	return Val{seq: seq, v: v}
}

// Store emits a store of val to base+off.
func (a *Asm) Store(site int, base Val, off uint32, val Val) {
	seq, pc := a.next(site)
	addr := base.v + off
	a.img.WriteWord(addr, val.v)
	d := a.slot()
	*d = DynInst{
		Seq: seq, PC: pc, Class: Store, Src1: base.seq, Src2: val.seq,
		Addr: addr, Value: val.v, BaseValue: base.v,
	}
	a.finish(d)
}

// Prefetch emits a non-binding software prefetch of the block at
// base+off.  Prefetches are always overhead instructions.
func (a *Asm) Prefetch(site int, base Val, off uint32, flags Flag) {
	seq, pc := a.next(site)
	addr := base.v + off
	d := a.slot()
	*d = DynInst{
		Seq: seq, PC: pc, Class: Prefetch, Src1: base.seq,
		Addr: addr, BaseValue: base.v,
		Flags: flags,
	}
	a.finish(d)
}

// Branch emits a conditional branch at site, jumping to targetSite when
// taken.  x and y are the compared register inputs.
func (a *Asm) Branch(site int, taken bool, targetSite int, x, y Val) {
	seq, pc := a.next(site)
	d := a.slot()
	*d = DynInst{
		Seq: seq, PC: pc, Class: Branch, Src1: x.seq, Src2: y.seq,
		Taken: taken, Target: SitePC(targetSite),
	}
	a.finish(d)
}

// Jump emits an unconditional jump to targetSite.
func (a *Asm) Jump(site, targetSite int, flags Flag) {
	seq, pc := a.next(site)
	d := a.slot()
	*d = DynInst{Seq: seq, PC: pc, Class: Jump, Taken: true,
		Target: SitePC(targetSite), Flags: flags}
	a.finish(d)
}

// Call emits a procedure call (jump flagged FCall).
func (a *Asm) Call(site, targetSite int) { a.Jump(site, targetSite, FCall) }

// Ret emits a procedure return (jump flagged FReturn; returns are
// predicted perfectly, standing in for a return-address stack).
func (a *Asm) Ret(site int) { a.Jump(site, site, FReturn) }

// Push spills v to the simulated stack (register save).
func (a *Asm) Push(site int, v Val) {
	a.sp -= mem.WordBytes
	a.storeAbs(site, a.sp, v)
}

// Pop reloads the most recent spill.
func (a *Asm) Pop(site int) Val {
	v := a.loadAbs(site, a.sp, 0)
	a.sp += mem.WordBytes
	return v
}

func (a *Asm) loadAbs(site int, addr uint32, flags Flag) Val {
	seq, pc := a.next(site)
	v := a.img.ReadWord(addr)
	d := a.slot()
	*d = DynInst{Seq: seq, PC: pc, Class: Load, Addr: addr, Value: v, Flags: flags}
	a.finish(d)
	return Val{seq: seq, v: v}
}

func (a *Asm) storeAbs(site int, addr uint32, val Val) {
	seq, pc := a.next(site)
	a.img.WriteWord(addr, val.v)
	d := a.slot()
	*d = DynInst{Seq: seq, PC: pc, Class: Store, Src1: val.seq, Addr: addr, Value: val.v}
	a.finish(d)
}

// LoadGlobal emits a load from the static data area.
func (a *Asm) LoadGlobal(site int, off uint32) Val {
	return a.loadAbs(site, GlobalBase+off, 0)
}

// StoreGlobal emits a store to the static data area.
func (a *Asm) StoreGlobal(site int, off uint32, val Val) {
	a.storeAbs(site, GlobalBase+off, val)
}

// mallocMeta is the global address of the simulated allocator's
// metadata, touched by Malloc/FreeNode to charge realistic allocator
// cache behaviour.
const mallocMeta = GlobalBase + 0x1000

// Malloc allocates n payload bytes on the simulated heap and emits the
// instruction cost of a size-class allocator call: a handful of integer
// operations plus free-list metadata accesses.  The returned Val is the
// block pointer.
func (a *Asm) Malloc(n uint32) Val { return a.MallocIn(0, n) }

// MallocIn is Malloc into a specific arena (locality domain).
func (a *Asm) MallocIn(id heap.ArenaID, n uint32) Val {
	// Size-class computation.
	v := a.Alu(mallocSite, n, Imm(n), Val{})
	v = a.Alu(mallocSite+1, heap.SizeClass(n), v, Val{})
	// Free-list head load, unlink, store back.
	cls := heap.SizeClass(n)
	head := a.loadAbs(mallocSite+2, mallocMeta+cls, 0)
	addr := a.heap.AllocIn(id, n)
	p := a.Alu(mallocSite+3, addr, head, v)
	a.storeAbs(mallocSite+4, mallocMeta+cls, p)
	// Bookkeeping arithmetic typical of dlmalloc-style allocators.
	p = a.Alu(mallocSite+5, addr, p, Val{})
	a.Branch(mallocSite+6, false, mallocSite, p, Val{})
	return Val{seq: p.seq, v: addr}
}

// FreeNode releases the block at p, emitting free-list relink cost.
func (a *Asm) FreeNode(p Val) {
	cls := a.heap.BlockSize(p.v)
	a.heap.Free(p.v)
	head := a.loadAbs(freeSite, mallocMeta+cls, 0)
	v := a.Alu(freeSite+1, p.v, p, head)
	a.storeAbs(freeSite+2, mallocMeta+cls, v)
}

// Nop emits a no-op (used to pad loop bodies when calibrating work per
// iteration in tests).
func (a *Asm) Nop(site int) {
	seq, pc := a.next(site)
	d := a.slot()
	*d = DynInst{Seq: seq, PC: pc, Class: Nop}
	a.finish(d)
}

// Stats summarizes what a kernel emitted.
type Stats struct {
	Counts     [NumClasses]uint64
	OrigInsts  uint64
	OvhdInsts  uint64
	LDSLoads   uint64
	OtherLoads uint64

	// Replay-cache counters (all zero when block replay is disabled).
	// BlocksCaptured counts decoded blocks inserted into the table,
	// ReplayedInsts counts instructions emitted through the replay fast
	// path as part of a completed block, and ReplayAborts counts
	// template mismatches (data-dependent emission paths).
	BlocksCaptured uint64
	ReplayedInsts  uint64
	ReplayAborts   uint64
}

// Total returns the total dynamic instruction count.
func (s Stats) Total() uint64 { return s.OrigInsts + s.OvhdInsts }

func (a *Asm) stats() Stats {
	a.finishReplayTail()
	return Stats{
		Counts:         a.counts,
		OrigInsts:      a.origInsts,
		OvhdInsts:      a.ovhdInsts,
		LDSLoads:       a.ldsLoads,
		OtherLoads:     a.otherLoads,
		BlocksCaptured: a.rp.blocksCaptured,
		ReplayedInsts:  a.rp.replayedInsts,
		ReplayAborts:   a.rp.replayAborts,
	}
}

// Seq returns the number of instructions emitted so far.
func (a *Asm) Seq() uint64 { return a.seq }

func (s Stats) String() string {
	return fmt.Sprintf("insts=%d (orig=%d ovhd=%d) loads=%d/%d(lds/other)",
		s.Total(), s.OrigInsts, s.OvhdInsts, s.LDSLoads, s.OtherLoads)
}
