package ir

import "repro/internal/heap"

// BatchSize is the number of instructions handed from the kernel
// goroutine to the timing model at a time.  It bounds how far the
// functional execution (and therefore the memory image) can run ahead of
// the timing model: prefetch engines may observe stores up to one batch
// early, which is far below the reuse distances that matter for these
// workloads.
const BatchSize = 4096

// stopGen is the panic value used to unwind a kernel goroutine when the
// consumer stops early.
type stopGen struct{}

// batchMsg is one batch handoff: the decoded instructions plus their
// per-instruction dispatch metadata (nil when block replay is
// disabled).
type batchMsg struct {
	ins  []DynInst
	meta []InstMeta
}

// Gen produces a workload's dynamic instruction stream.  The kernel
// function runs on its own goroutine, but execution is strictly
// ping-pong: while the consumer drains a batch the kernel is blocked, so
// the memory image is never accessed concurrently.
type Gen struct {
	ch   chan batchMsg
	ack  chan struct{}
	quit chan struct{}

	asm *Asm

	cur     []DynInst
	curMeta []InstMeta
	pos     int
	done    bool
	hasMeta bool

	stats   Stats
	kernErr any
}

// GenOptions configures a generator.
type GenOptions struct {
	// DisableReplay turns off the decoded basic-block replay cache (and
	// with it the per-instruction dispatch metadata), forcing the
	// per-instruction emission path.  The emitted stream and accounting
	// are identical either way.
	DisableReplay bool
}

// NewGen starts a kernel and returns its instruction stream with block
// replay enabled.  The kernel must emit at least one instruction before
// returning.
func NewGen(alloc *heap.Allocator, kernel func(*Asm)) *Gen {
	return NewGenWith(alloc, kernel, GenOptions{})
}

// NewGenWith is NewGen with explicit options.
func NewGenWith(alloc *heap.Allocator, kernel func(*Asm), opt GenOptions) *Gen {
	g := &Gen{
		ch:      make(chan batchMsg),
		ack:     make(chan struct{}),
		quit:    make(chan struct{}),
		hasMeta: !opt.DisableReplay,
	}
	// send hands a filled batch to the consumer and blocks until it has
	// been drained (the ack); the Asm owns the batch buffer and writes
	// decoded instructions straight into it (see Asm.slot).
	send := func(batch []DynInst, meta []InstMeta) {
		select {
		case g.ch <- batchMsg{ins: batch, meta: meta}:
		case <-g.quit:
			panic(stopGen{})
		}
		select {
		case <-g.ack:
		case <-g.quit:
			panic(stopGen{})
		}
	}
	g.asm = newAsm(alloc, send, !opt.DisableReplay)
	go func() {
		defer close(g.ch)
		defer func() {
			if r := recover(); r != nil {
				if _, stopped := r.(stopGen); !stopped {
					g.kernErr = r
				}
			}
		}()
		kernel(g.asm)
		g.asm.flushTail()
	}()
	return g
}

// HasMeta reports whether the stream carries per-instruction dispatch
// metadata (block replay enabled), i.e. whether NextBatch returns a
// metadata slice the core's block-granular front end can consume.
func (g *Gen) HasMeta() bool { return g.hasMeta }

// Next returns the next dynamic instruction, or nil when the kernel has
// finished.  The returned pointer is valid only until the following
// BatchSize'th call.
func (g *Gen) Next() *DynInst {
	if g.pos < len(g.cur) {
		d := &g.cur[g.pos]
		g.pos++
		return d
	}
	if g.done {
		return nil
	}
	if g.cur != nil {
		// Let the kernel refill.
		g.ack <- struct{}{}
	}
	b, ok := <-g.ch
	if !ok {
		g.done = true
		g.finish()
		return nil
	}
	g.cur, g.curMeta, g.pos = b.ins, b.meta, 1
	return &g.cur[0]
}

// NextBatch returns all not-yet-delivered instructions of the current
// batch together with their dispatch metadata, requesting a refill from
// the kernel when the batch is exhausted.  It returns nil slices when
// the kernel has finished.  The batch refill happens at exactly the
// same stream position as under Next, so the memory-image run-ahead
// the prefetch engines observe is identical in both modes.  The
// returned slices are valid until the next NextBatch (or Next) call
// that crosses a batch boundary.
func (g *Gen) NextBatch() ([]DynInst, []InstMeta) {
	if g.pos < len(g.cur) {
		ins := g.cur[g.pos:]
		meta := g.curMeta
		if meta != nil {
			meta = meta[g.pos:]
		}
		g.pos = len(g.cur)
		return ins, meta
	}
	if g.done {
		return nil, nil
	}
	if g.cur != nil {
		g.ack <- struct{}{}
	}
	b, ok := <-g.ch
	if !ok {
		g.done = true
		g.finish()
		return nil, nil
	}
	g.cur, g.curMeta = b.ins, b.meta
	g.pos = len(b.ins)
	return b.ins, b.meta
}

func (g *Gen) finish() {
	g.stats = g.asm.stats()
	if g.kernErr != nil {
		panic(g.kernErr)
	}
}

// Stop abandons the stream, unwinding the kernel goroutine.  Safe to
// call at any point, including after exhaustion.
func (g *Gen) Stop() {
	if g.done {
		return
	}
	close(g.quit)
	// Drain until the kernel goroutine exits: with quit closed, an
	// in-flight send on ch either completes (and is discarded here) or
	// selects quit, and the following ack wait always selects quit, so
	// the goroutine unwinds after at most one more batch.  No acks are
	// needed — sending them here would only race the quit path.
	for range g.ch {
	}
	g.done = true
	g.stats = g.asm.stats()
}

// Stats reports what the kernel emitted.  Valid after Next has returned
// nil (or after Stop).
func (g *Gen) Stats() Stats { return g.stats }
