package ir

import "repro/internal/heap"

// BatchSize is the number of instructions handed from the kernel
// goroutine to the timing model at a time.  It bounds how far the
// functional execution (and therefore the memory image) can run ahead of
// the timing model: prefetch engines may observe stores up to one batch
// early, which is far below the reuse distances that matter for these
// workloads.
const BatchSize = 4096

// stopGen is the panic value used to unwind a kernel goroutine when the
// consumer stops early.
type stopGen struct{}

// Gen produces a workload's dynamic instruction stream.  The kernel
// function runs on its own goroutine, but execution is strictly
// ping-pong: while the consumer drains a batch the kernel is blocked, so
// the memory image is never accessed concurrently.
type Gen struct {
	ch   chan []DynInst
	ack  chan struct{}
	quit chan struct{}

	asm *Asm

	cur  []DynInst
	pos  int
	done bool

	stats   Stats
	kernErr any
}

// NewGen starts a kernel and returns its instruction stream.  The kernel
// must emit at least one instruction before returning.
func NewGen(alloc *heap.Allocator, kernel func(*Asm)) *Gen {
	g := &Gen{
		ch:   make(chan []DynInst),
		ack:  make(chan struct{}),
		quit: make(chan struct{}),
	}
	// send hands a filled batch to the consumer and blocks until it has
	// been drained (the ack); the Asm owns the batch buffer and writes
	// decoded instructions straight into it (see Asm.slot).
	send := func(batch []DynInst) {
		select {
		case g.ch <- batch:
		case <-g.quit:
			panic(stopGen{})
		}
		select {
		case <-g.ack:
		case <-g.quit:
			panic(stopGen{})
		}
	}
	g.asm = newAsm(alloc, send)
	go func() {
		defer close(g.ch)
		defer func() {
			if r := recover(); r != nil {
				if _, stopped := r.(stopGen); !stopped {
					g.kernErr = r
				}
			}
		}()
		kernel(g.asm)
		g.asm.flushTail()
	}()
	return g
}

// Next returns the next dynamic instruction, or nil when the kernel has
// finished.  The returned pointer is valid only until the following
// BatchSize'th call.
func (g *Gen) Next() *DynInst {
	if g.pos < len(g.cur) {
		d := &g.cur[g.pos]
		g.pos++
		return d
	}
	if g.done {
		return nil
	}
	if g.cur != nil {
		// Let the kernel refill.
		g.ack <- struct{}{}
	}
	batch, ok := <-g.ch
	if !ok {
		g.done = true
		g.finish()
		return nil
	}
	g.cur, g.pos = batch, 1
	return &g.cur[0]
}

func (g *Gen) finish() {
	g.stats = g.asm.stats()
	if g.kernErr != nil {
		panic(g.kernErr)
	}
}

// Stop abandons the stream, unwinding the kernel goroutine.  Safe to
// call at any point, including after exhaustion.
func (g *Gen) Stop() {
	if g.done {
		return
	}
	close(g.quit)
	// Drain until the kernel goroutine exits: with quit closed, an
	// in-flight send on ch either completes (and is discarded here) or
	// selects quit, and the following ack wait always selects quit, so
	// the goroutine unwinds after at most one more batch.  No acks are
	// needed — sending them here would only race the quit path.
	for range g.ch {
	}
	g.done = true
	g.stats = g.asm.stats()
}

// Stats reports what the kernel emitted.  Valid after Next has returned
// nil (or after Stop).
func (g *Gen) Stats() Stats { return g.stats }
