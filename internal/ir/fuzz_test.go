package ir_test

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
)

// fuzzKernel interprets prog as a tiny program over the Asm surface:
// every 3 bytes select an operation and its operands.  It exercises the
// assembler the way real kernels do — dependent values, loads, stores,
// prefetches, control flow, malloc/free, stack traffic — while keeping
// every emitted program finite and well-formed (frees only live blocks,
// pops only pushed values).
func fuzzKernel(prog []byte) func(*ir.Asm) {
	const (
		maxOps    = 2000
		maxAllocs = 128
		siteSpan  = 97
	)
	return func(a *ir.Asm) {
		// The generator contract requires at least one instruction.
		a.Nop(ir.FirstUserSite)
		vals := []ir.Val{ir.Imm(1)}
		var blocks []ir.Val
		pushed := 0
		v := func(b byte) ir.Val { return vals[int(b)%len(vals)] }
		ops := 0
		for i := 0; i+2 < len(prog) && ops < maxOps; i, ops = i+3, ops+1 {
			op, b1, b2 := prog[i], prog[i+1], prog[i+2]
			s := ir.FirstUserSite + 1 + int(op)%siteSpan
			switch op % 12 {
			case 0:
				vals = append(vals, a.Alu(s, uint32(b1)|uint32(b2)<<8, v(b1), v(b2)))
			case 1:
				vals = append(vals, a.AddImm(s, v(b1), uint32(b2)))
			case 2:
				vals = append(vals, a.Load(s, v(b1), uint32(b2%32), 0))
			case 3:
				if len(blocks) > 0 {
					base := blocks[int(b1)%len(blocks)]
					a.Store(s, base, uint32(b2%2)*4, v(b2))
				}
			case 4:
				a.Prefetch(s, v(b1), uint32(b2%32), 0)
			case 5:
				a.Branch(s, b1%2 == 0, ir.FirstUserSite+1+int(b2)%siteSpan, v(b1), v(b2))
			case 6:
				a.Jump(s, ir.FirstUserSite+1+int(b2)%siteSpan, 0)
			case 7:
				if len(blocks) < maxAllocs {
					p := a.Malloc(uint32(b1%64) + 1)
					blocks = append(blocks, p)
					vals = append(vals, p)
				}
			case 8:
				if len(blocks) > 0 {
					idx := int(b1) % len(blocks)
					a.FreeNode(blocks[idx])
					blocks = append(blocks[:idx], blocks[idx+1:]...)
				}
			case 9:
				a.Push(s, v(b1))
				pushed++
			case 10:
				if pushed > 0 {
					vals = append(vals, a.Pop(s))
					pushed--
				}
			case 11:
				vals = append(vals, a.LoadIdx(s, v(b1), v(b2), 4, 0))
			}
			if len(vals) > 64 {
				vals = vals[len(vals)-64:]
			}
		}
		for pushed > 0 {
			vals = append(vals, a.Pop(ir.FirstUserSite))
			pushed--
		}
	}
}

// FuzzAsm runs arbitrary programs through the assembler, the stream
// generator and the full timing core, checking the accounting
// identities the stats layer guarantees for well-formed kernels hold
// for adversarial ones too: emitted == committed instructions, every
// cycle attributed, every prefetch resolved to an outcome.
func FuzzAsm(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{7, 0, 0, 3, 0, 0, 2, 1, 4, 8, 0, 0})             // malloc/store/load/free
	f.Add([]byte{7, 9, 9, 4, 1, 7, 5, 2, 6, 9, 1, 1, 10, 0, 0})   // prefetch/branch/stack
	f.Add([]byte{11, 3, 5, 6, 2, 2, 1, 200, 100, 0, 255, 255, 9}) // jumps, wide operands
	f.Fuzz(func(t *testing.T, prog []byte) {
		img := mem.NewImage()
		alloc := heap.New(img)
		hier := cache.New(cache.Defaults())
		pred := bpred.New(bpred.Defaults())
		cfg := cpu.Defaults()
		cfg.MaxCycles = 1 << 18 // fuzz programs are tiny; this is a hang guard
		gen := ir.NewGen(alloc, fuzzKernel(prog))
		core := cpu.New(cfg, hier, pred, nil)
		s := core.Run(gen)

		emitted := gen.Stats()
		if got := emitted.OrigInsts + emitted.OvhdInsts; got != emitted.Total() {
			t.Fatalf("Stats.Total()=%d but orig+ovhd=%d", emitted.Total(), got)
		}
		var byClass uint64
		for _, n := range emitted.Counts {
			byClass += n
		}
		if byClass != emitted.Total() {
			t.Fatalf("class counts sum to %d, total %d", byClass, emitted.Total())
		}
		if !s.Truncated && s.Insts != emitted.Total() {
			t.Fatalf("committed %d instructions, emitted %d", s.Insts, emitted.Total())
		}
		if got := s.Attribution.Total(); got != s.Cycles {
			t.Fatalf("cycle attribution sums to %d, want Cycles=%d", got, s.Cycles)
		}
		p := hier.PrefetchStats()
		if p.OutcomeTotal() != p.Issued {
			t.Fatalf("prefetch outcomes sum to %d, issued %d", p.OutcomeTotal(), p.Issued)
		}
		if !s.Truncated && p.Issued != s.CommitByCl[ir.Prefetch] {
			t.Fatalf("tracker saw %d prefetches, core committed %d",
				p.Issued, s.CommitByCl[ir.Prefetch])
		}
	})
}
