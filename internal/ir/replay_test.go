package ir

import (
	"testing"

	"repro/internal/heap"
	"repro/internal/mem"
)

// drainWith runs a kernel under the given options and collects its
// instructions, metadata (via NextBatch), and stats.
func drainWith(t *testing.T, kernel func(*Asm), opt GenOptions) ([]DynInst, []InstMeta, Stats) {
	t.Helper()
	alloc := heap.New(mem.NewImage())
	g := NewGenWith(alloc, kernel, opt)
	var ins []DynInst
	var meta []InstMeta
	for {
		b, m := g.NextBatch()
		if b == nil {
			break
		}
		ins = append(ins, b...)
		meta = append(meta, m...)
	}
	return ins, meta, g.Stats()
}

// refMeta independently recomputes the dispatch metadata a stream must
// carry: pure function of the instruction sequence, mirroring the
// classic front end's fetch-line evolution.
func refMeta(ins []DynInst) []InstMeta {
	var line uint32
	out := make([]InstMeta, len(ins))
	for i := range ins {
		d := &ins[i]
		var m InstMeta
		switch d.Class {
		case Load, Prefetch:
			m = MetaMem
		case Store:
			m = MetaMem | MetaStore
		case Branch, Jump:
			m = MetaCtrl
		}
		l := d.PC>>5<<5 | 1
		if l != line {
			m |= MetaNewLine
		}
		if d.Class == Jump || (d.Class == Branch && d.Taken) {
			line = 0
		} else {
			line = l
		}
		out[i] = m
	}
	return out
}

// loopKernel emits a uniform pointer-chase-style loop: the bread and
// butter replay case (one block, replayed n-1 times).
func loopKernel(n int) func(*Asm) {
	return func(a *Asm) {
		p := a.Malloc(64)
		for i := 0; i < n; i++ {
			v := a.Load(100, p, 0, FLDS)
			w := a.Alu(101, v.U32()+1, v, Val{})
			a.Store(102, p, 0, w)
			a.Branch(103, i+1 < n, 100, w, Val{})
		}
	}
}

// divergentKernel takes a data-dependent emission path inside the loop
// body every third iteration, forcing replay aborts and bypass
// realignment.
func divergentKernel(n int) func(*Asm) {
	return func(a *Asm) {
		p := a.Malloc(64)
		for i := 0; i < n; i++ {
			a.Load(100, p, 0, 0)
			if i%3 == 1 {
				a.Alu(101, uint32(i), Val{}, Val{})
			}
			a.Alu(102, 2, Val{}, Val{})
			a.Branch(103, i+1 < n, 100, Val{}, Val{})
		}
	}
}

// overheadKernel toggles overhead tagging across iterations of the same
// PC region, so the same entry PC is seen with different final flags.
func overheadKernel(n int) func(*Asm) {
	return func(a *Asm) {
		p := a.Malloc(64)
		for i := 0; i < n; i++ {
			body := func() {
				a.Load(100, p, 0, FLDS)
				a.Prefetch(101, p, 32, 0)
				a.Branch(102, i+1 < n, 100, Val{}, Val{})
			}
			if i%2 == 0 {
				a.Overhead(body)
			} else {
				body()
			}
		}
	}
}

// straightKernel emits a long control-free run, exercising the
// maxBlockLen cut.
func straightKernel(n int) func(*Asm) {
	return func(a *Asm) {
		for i := 0; i < n; i++ {
			for s := 0; s < 3*maxBlockLen; s++ {
				a.Alu(100+s, uint32(s), Val{}, Val{})
			}
			a.Jump(100+3*maxBlockLen, 100, 0)
		}
	}
}

var replayKernels = map[string]func(*Asm){
	"loop":      loopKernel(700),
	"divergent": divergentKernel(700),
	"overhead":  overheadKernel(700),
	"straight":  straightKernel(40),
	"batchspan": loopKernel(3 * BatchSize), // blocks straddling batch boundaries
}

// TestReplayStreamIdentical locks the core replay invariant: the
// emitted instruction stream and the accounting totals are bit-identical
// with replay on and off.
func TestReplayStreamIdentical(t *testing.T) {
	for name, kern := range replayKernels {
		t.Run(name, func(t *testing.T) {
			on, _, statsOn := drainWith(t, kern, GenOptions{})
			off, offMeta, statsOff := drainWith(t, kern, GenOptions{DisableReplay: true})
			if offMeta != nil {
				t.Fatal("replay-off stream must carry no metadata")
			}
			if len(on) != len(off) {
				t.Fatalf("stream lengths differ: %d vs %d", len(on), len(off))
			}
			for i := range on {
				if on[i] != off[i] {
					t.Fatalf("inst %d differs:\n  on:  %+v\n  off: %+v", i, on[i], off[i])
				}
			}
			// Accounting identical modulo the replay counters themselves.
			statsOn.BlocksCaptured, statsOn.ReplayedInsts, statsOn.ReplayAborts = 0, 0, 0
			if statsOn != statsOff {
				t.Fatalf("stats differ:\n  on:  %+v\n  off: %+v", statsOn, statsOff)
			}
		})
	}
}

// TestReplayMetaExact checks every metadata byte — including across
// aborts, overhead toggles, block cuts, and batch boundaries — against
// an independent recomputation from the stream.
func TestReplayMetaExact(t *testing.T) {
	for name, kern := range replayKernels {
		t.Run(name, func(t *testing.T) {
			ins, meta, _ := drainWith(t, kern, GenOptions{})
			if len(meta) != len(ins) {
				t.Fatalf("%d meta bytes for %d instructions", len(meta), len(ins))
			}
			want := refMeta(ins)
			for i := range want {
				if meta[i] != want[i] {
					t.Fatalf("inst %d (%s pc=%#x): meta %#x, want %#x",
						i, ins[i].Class, ins[i].PC, meta[i], want[i])
				}
			}
		})
	}
}

// TestReplayHitRate checks the cache actually replays: a uniform loop
// must capture a handful of blocks and replay nearly every instruction.
func TestReplayHitRate(t *testing.T) {
	_, _, stats := drainWith(t, loopKernel(1000), GenOptions{})
	if stats.BlocksCaptured == 0 {
		t.Fatal("no blocks captured")
	}
	if stats.ReplayAborts != 0 {
		t.Fatalf("uniform loop aborted %d times", stats.ReplayAborts)
	}
	if hit := float64(stats.ReplayedInsts) / float64(stats.Total()); hit < 0.9 {
		t.Fatalf("replay hit rate %.2f for a uniform loop (replayed %d of %d)",
			hit, stats.ReplayedInsts, stats.Total())
	}
}

// TestReplayAborts checks divergent emission paths are detected and
// survive: aborts are counted and the slow path keeps the stream exact
// (stream identity is covered by TestReplayStreamIdentical).
func TestReplayAborts(t *testing.T) {
	_, _, stats := drainWith(t, divergentKernel(700), GenOptions{})
	if stats.ReplayAborts == 0 {
		t.Fatal("divergent kernel recorded no replay aborts")
	}
}

// TestNextBatchMatchesNext checks the two drain APIs deliver the same
// stream, including after a partial per-instruction drain.
func TestNextBatchMatchesNext(t *testing.T) {
	kern := loopKernel(2*BatchSize + 100)
	var viaNext []DynInst
	{
		alloc := heap.New(mem.NewImage())
		g := NewGen(alloc, kern)
		for d := g.Next(); d != nil; d = g.Next() {
			viaNext = append(viaNext, *d)
		}
	}
	var mixed []DynInst
	{
		alloc := heap.New(mem.NewImage())
		g := NewGen(alloc, kern)
		// Start per-instruction, then switch to batch drain mid-batch.
		for i := 0; i < 10; i++ {
			mixed = append(mixed, *g.Next())
		}
		for {
			b, m := g.NextBatch()
			if b == nil {
				break
			}
			if len(m) != len(b) {
				t.Fatalf("meta length %d for batch length %d", len(m), len(b))
			}
			mixed = append(mixed, b...)
		}
	}
	if len(viaNext) != len(mixed) {
		t.Fatalf("lengths differ: %d vs %d", len(viaNext), len(mixed))
	}
	for i := range viaNext {
		if viaNext[i] != mixed[i] {
			t.Fatalf("inst %d differs", i)
		}
	}
}

// benchEmit measures raw emission+handoff cost per instruction.
func benchEmit(b *testing.B, opt GenOptions) {
	const loop = 50000
	kern := loopKernel(loop)
	b.ReportAllocs()
	var total int
	for i := 0; i < b.N; i++ {
		alloc := heap.New(mem.NewImage())
		g := NewGenWith(alloc, kern, opt)
		for {
			ins, _ := g.NextBatch()
			if ins == nil {
				break
			}
			total += len(ins)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(total), "ns/inst")
}

// BenchmarkEmitReplay guards the per-instruction emission cost of the
// replay fast path; BenchmarkEmitNoReplay guards the plain path.
func BenchmarkEmitReplay(b *testing.B)   { benchEmit(b, GenOptions{}) }
func BenchmarkEmitNoReplay(b *testing.B) { benchEmit(b, GenOptions{DisableReplay: true}) }
