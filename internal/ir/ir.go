// Package ir defines the micro instruction representation that connects
// workload kernels to the timing simulator.
//
// Workloads are written against the Asm kernel-builder API.  Each Asm
// call both *functionally executes* (reads and writes the simulated
// memory image, so addresses, pointer values and branch outcomes are
// real) and *emits* a dynamic instruction that the out-of-order core
// times.  This makes the simulator execution-driven in the sense that
// matters for prefetching research: hardware prefetch engines can chase
// real pointers through the memory image, exactly as the paper's DBP and
// JPP hardware does.
package ir

// Class identifies the functional class of an instruction.  Classes map
// one-to-one onto the functional units of the simulated machine
// (paper Table 2).
type Class uint8

// Instruction classes.
const (
	Nop Class = iota
	// IntAlu covers single-cycle integer operations, address arithmetic
	// and compares.
	IntAlu
	// IntMult is the 3-cycle integer multiplier.
	IntMult
	// IntDiv is the 20-cycle integer divider.
	IntDiv
	// FpAdd is the 2-cycle floating point adder.
	FpAdd
	// FpMult is the 4-cycle floating point multiplier.
	FpMult
	// FpDiv is the 24-cycle floating point divider.
	FpDiv
	// Load is a binding memory read.
	Load
	// Store is a memory write.
	Store
	// Prefetch is a non-binding software prefetch: it occupies a memory
	// port for a cycle, completes on issue, may initiate TLB miss
	// handling, and never faults (paper Table 2).
	Prefetch
	// Branch is a conditional branch.
	Branch
	// Jump covers unconditional jumps, calls and returns.
	Jump
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

func (c Class) String() string {
	switch c {
	case Nop:
		return "nop"
	case IntAlu:
		return "ialu"
	case IntMult:
		return "imul"
	case IntDiv:
		return "idiv"
	case FpAdd:
		return "fadd"
	case FpMult:
		return "fmul"
	case FpDiv:
		return "fdiv"
	case Load:
		return "load"
	case Store:
		return "store"
	case Prefetch:
		return "pref"
	case Branch:
		return "branch"
	case Jump:
		return "jump"
	}
	return "?"
}

// Flag carries per-instruction annotations.
type Flag uint8

const (
	// FLDS marks a load that traverses a linked data structure (a
	// pointer-chasing load).  Table 1's characterization separates LDS
	// load misses from array/stack/global misses using this tag.
	FLDS Flag = 1 << iota
	// FOverhead marks an instruction added by a prefetching
	// transformation (jump-pointer creation or prefetch code).  Figure 6
	// normalizes bandwidth by the count of *non*-overhead instructions,
	// and the costs table reports overhead instruction shares.
	FOverhead
	// FJumpChase marks a cooperative jump-pointer prefetch: a single
	// non-binding load of a jump-pointer word.  When it completes, the
	// hardware reads the pointer it fetched and launches a prefetch of
	// the target node, which may in turn spawn chained prefetches
	// through the dependence predictor (paper §3.2).
	FJumpChase
	// FReturn marks a Jump that is a procedure return (predicted
	// perfectly, standing in for a return address stack).
	FReturn
	// FCall marks a Jump that is a procedure call.
	FCall
)

// MemBase/MemStack carve the simulated address space.  Code lives at
// CodeBase (PCs), the heap at heap.Base, and the stack grows down from
// StackBase.
const (
	// CodeBase is the base address of simulated program text.
	CodeBase uint32 = 0x0040_0000
	// StackBase is the initial stack pointer.
	StackBase uint32 = 0xE000_0000
	// GlobalBase is the base of the static data area.
	GlobalBase uint32 = 0x0800_0000
)

// DynInst is one dynamic instruction.  Instances are reused batch by
// batch; consumers must not retain pointers across Gen.Next calls.
type DynInst struct {
	// Seq is the global dynamic sequence number, starting at 1.
	Seq uint64
	// Src1 and Src2 are the sequence numbers of the producing
	// instructions of this instruction's register inputs; zero means the
	// operand is a constant or long-retired value that is always ready.
	Src1, Src2 uint64

	// PC is the static instruction address.
	PC uint32
	// Addr is the effective address for Load/Store/Prefetch.
	Addr uint32
	// Value is the loaded value (Load), stored value (Store), or zero.
	Value uint32
	// BaseValue is the value of the address base register for memory
	// operations.  The dependence predictor's potential-producer window
	// matches on it.
	BaseValue uint32
	// Target is the branch/jump target PC.
	Target uint32

	Class Class
	Flags Flag
	// Taken is the actual outcome of a Branch.
	Taken bool
}

// IsMem reports whether the instruction accesses data memory.
func (d *DynInst) IsMem() bool {
	return d.Class == Load || d.Class == Store || d.Class == Prefetch
}

// IsCtrl reports whether the instruction redirects fetch.
func (d *DynInst) IsCtrl() bool {
	return d.Class == Branch || d.Class == Jump
}
