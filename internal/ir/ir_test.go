package ir

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/heap"
	"repro/internal/mem"
)

// drain runs a kernel and collects its dynamic instructions.
func drain(t *testing.T, kernel func(*Asm)) ([]DynInst, Stats) {
	t.Helper()
	alloc := heap.New(mem.NewImage())
	g := NewGen(alloc, kernel)
	var out []DynInst
	for d := g.Next(); d != nil; d = g.Next() {
		out = append(out, *d)
	}
	return out, g.Stats()
}

func TestSequenceAndPC(t *testing.T) {
	insts, _ := drain(t, func(a *Asm) {
		a.Alu(100, 1, Imm(1), Val{})
		a.Alu(101, 2, Imm(2), Val{})
		a.Nop(102)
	})
	if len(insts) != 3 {
		t.Fatalf("got %d instructions", len(insts))
	}
	for i, d := range insts {
		if d.Seq != uint64(i+1) {
			t.Fatalf("inst %d: seq %d", i, d.Seq)
		}
		if d.PC != SitePC(100+i) {
			t.Fatalf("inst %d: pc %#x, want %#x", i, d.PC, SitePC(100+i))
		}
	}
}

func TestDependencesThreadThroughVals(t *testing.T) {
	insts, _ := drain(t, func(a *Asm) {
		x := a.Alu(100, 5, Imm(5), Val{})
		y := a.Alu(101, 7, x, Val{})
		a.Alu(102, 12, x, y)
	})
	if insts[1].Src1 != insts[0].Seq {
		t.Fatal("second instruction does not depend on the first")
	}
	if insts[2].Src1 != insts[0].Seq || insts[2].Src2 != insts[1].Seq {
		t.Fatal("third instruction's sources wrong")
	}
}

func TestLoadStoreExecuteFunctionally(t *testing.T) {
	insts, _ := drain(t, func(a *Asm) {
		p := a.Malloc(12)
		a.Store(100, p, 4, Imm(0xBEEF))
		v := a.Load(101, p, 4, FLDS)
		if v.U32() != 0xBEEF {
			t.Errorf("loaded %#x, want 0xBEEF", v.U32())
		}
		a.Alu(102, v.U32(), v, Val{})
	})
	// Find the load and check its recorded metadata.
	var ld *DynInst
	for i := range insts {
		if insts[i].Class == Load && insts[i].Flags&FLDS != 0 {
			ld = &insts[i]
		}
	}
	if ld == nil {
		t.Fatal("no LDS load emitted")
	}
	if ld.Value != 0xBEEF {
		t.Fatalf("load value %#x", ld.Value)
	}
	if ld.Addr != ld.BaseValue+4 {
		t.Fatalf("addr %#x base %#x", ld.Addr, ld.BaseValue)
	}
}

func TestOverheadTagging(t *testing.T) {
	_, stats := drain(t, func(a *Asm) {
		p := a.Malloc(12)
		a.Load(100, p, 0, 0)
		a.Overhead(func() {
			a.Load(101, p, 0, 0)
			a.Alu(102, 0, Val{}, Val{})
		})
		a.Prefetch(103, p, 0, 0) // prefetches are always overhead
	})
	if stats.OvhdInsts != 3 {
		t.Fatalf("overhead insts = %d, want 3", stats.OvhdInsts)
	}
}

func TestBranchMetadata(t *testing.T) {
	insts, _ := drain(t, func(a *Asm) {
		a.Branch(100, true, 200, Imm(1), Imm(2))
		a.Branch(101, false, 300, Val{}, Val{})
	})
	if !insts[0].Taken || insts[0].Target != SitePC(200) {
		t.Fatalf("taken branch: %+v", insts[0])
	}
	if insts[1].Taken {
		t.Fatal("not-taken branch marked taken")
	}
}

func TestPushPopRoundTrip(t *testing.T) {
	insts, _ := drain(t, func(a *Asm) {
		x := a.Alu(100, 42, Imm(42), Val{})
		a.Push(101, x)
		y := a.Pop(102)
		if y.U32() != 42 {
			t.Errorf("popped %d, want 42", y.U32())
		}
		a.Alu(103, y.U32(), y, Val{})
	})
	// Push is a store, pop a load, to the same stack address.
	var st, ld *DynInst
	for i := range insts {
		switch insts[i].Class {
		case Store:
			st = &insts[i]
		case Load:
			ld = &insts[i]
		}
	}
	if st == nil || ld == nil || st.Addr != ld.Addr {
		t.Fatal("push/pop did not use the same stack slot")
	}
	if st.Addr < GlobalBase {
		t.Fatal("stack slot below the stack region")
	}
}

func TestMallocEmitsAllocatorCost(t *testing.T) {
	insts, _ := drain(t, func(a *Asm) {
		a.Malloc(12)
	})
	if len(insts) < 5 {
		t.Fatalf("Malloc emitted only %d instructions", len(insts))
	}
	var loads, stores int
	for _, d := range insts {
		switch d.Class {
		case Load:
			loads++
		case Store:
			stores++
		}
	}
	if loads == 0 || stores == 0 {
		t.Fatal("Malloc must touch allocator metadata")
	}
}

func TestGenBatchingAcrossBoundary(t *testing.T) {
	n := BatchSize*2 + 17
	insts, stats := drain(t, func(a *Asm) {
		for i := 0; i < n; i++ {
			a.Alu(100, uint32(i), Val{}, Val{})
		}
	})
	if len(insts) != n {
		t.Fatalf("got %d instructions, want %d", len(insts), n)
	}
	if stats.Total() != uint64(n) {
		t.Fatalf("stats total %d", stats.Total())
	}
	// Values must survive batch reuse (we copied them out).
	for i, d := range insts {
		if d.Value != uint32(i) {
			t.Fatalf("inst %d value %d", i, d.Value)
		}
	}
}

func TestGenStopUnwindsKernel(t *testing.T) {
	alloc := heap.New(mem.NewImage())
	g := NewGen(alloc, func(a *Asm) {
		for i := 0; ; i++ {
			a.Nop(100)
		}
	})
	// Pull a couple of batches, then abandon.
	for i := 0; i < BatchSize+5; i++ {
		if g.Next() == nil {
			t.Fatal("stream ended unexpectedly")
		}
	}
	g.Stop()
	if g.Stats().Total() == 0 {
		t.Fatal("stats unavailable after Stop")
	}
	// Idempotent.
	g.Stop()
}

// TestGenStopLeaksNoGoroutine pins the Stop shutdown contract: the
// kernel goroutine must unwind deterministically (ch closes after at
// most one in-flight batch), not linger blocked on a channel.  Many
// abandoned generators accumulate in a long harness batch, so a leak
// here is a memory leak at scale.
func TestGenStopLeaksNoGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		alloc := heap.New(mem.NewImage())
		g := NewGen(alloc, func(a *Asm) {
			for {
				a.Nop(100)
			}
		})
		// Stop mid-batch: the kernel is blocked sending or filling.
		for j := 0; j < BatchSize+5; j++ {
			if g.Next() == nil {
				t.Fatal("stream ended unexpectedly")
			}
		}
		g.Stop()
	}
	// Stop's drain loop only returns once ch is closed, which the
	// kernel goroutine does as it unwinds — so no settling loop should
	// be needed; the generous retry below only absorbs unrelated
	// runtime goroutines coming and going.
	for try := 0; ; try++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if try >= 100 {
			t.Fatalf("goroutines: %d before, %d after 50 Stops", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestKernelPanicPropagates(t *testing.T) {
	alloc := heap.New(mem.NewImage())
	g := NewGen(alloc, func(a *Asm) {
		a.Nop(100)
		panic("kernel bug")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("kernel panic did not propagate to the consumer")
		}
	}()
	for d := g.Next(); d != nil; d = g.Next() {
	}
}

func TestStatsClassCounts(t *testing.T) {
	_, stats := drain(t, func(a *Asm) {
		p := a.Malloc(12)
		a.Load(100, p, 0, FLDS)
		a.Load(101, p, 4, 0)
		a.Op(102, FpMult, 0, Val{}, Val{})
		a.Branch(103, false, 100, Val{}, Val{})
	})
	if stats.LDSLoads != 1 {
		t.Fatalf("LDS loads = %d", stats.LDSLoads)
	}
	if stats.Counts[FpMult] != 1 || stats.Counts[Branch] != 2 {
		// (Malloc emits one branch of its own.)
		t.Fatalf("class counts: %v", stats.Counts)
	}
}

func TestLoadIdxTwoSources(t *testing.T) {
	insts, _ := drain(t, func(a *Asm) {
		base := a.Alu(100, GlobalBase, Imm(GlobalBase), Val{})
		idx := a.Alu(101, 8, Imm(8), Val{})
		a.StoreGlobal(102, 8, Imm(77))
		v := a.LoadIdx(103, base, idx, 0, 0)
		if v.U32() != 77 {
			t.Errorf("LoadIdx read %d, want 77", v.U32())
		}
	})
	var ld *DynInst
	for i := range insts {
		if insts[i].Class == Load {
			ld = &insts[i]
		}
	}
	if ld.Src1 == 0 || ld.Src2 == 0 {
		t.Fatal("LoadIdx must carry both register sources")
	}
}

func TestGlobalAccess(t *testing.T) {
	drain(t, func(a *Asm) {
		a.StoreGlobal(100, 0x40, Imm(123))
		v := a.LoadGlobal(101, 0x40)
		if v.U32() != 123 {
			t.Errorf("global roundtrip got %d", v.U32())
		}
	})
}

func TestCallRetFlags(t *testing.T) {
	insts, _ := drain(t, func(a *Asm) {
		a.Call(100, 200)
		a.Ret(101)
	})
	if insts[0].Class != Jump || insts[0].Flags&FCall == 0 {
		t.Fatalf("call not flagged: %+v", insts[0])
	}
	if insts[1].Flags&FReturn == 0 {
		t.Fatalf("ret not flagged: %+v", insts[1])
	}
}

func TestClassStrings(t *testing.T) {
	for c := Nop; c < Class(NumClasses); c++ {
		if c.String() == "?" {
			t.Fatalf("class %d has no name", c)
		}
	}
}

func TestAddImm(t *testing.T) {
	drain(t, func(a *Asm) {
		x := a.Alu(100, 10, Imm(10), Val{})
		y := a.AddImm(101, x, 5)
		if y.U32() != 15 {
			t.Errorf("AddImm = %d", y.U32())
		}
	})
}

func TestFreeNodeEmitsAndRecycles(t *testing.T) {
	drain(t, func(a *Asm) {
		p := a.Malloc(12)
		a.FreeNode(p)
		q := a.Malloc(12)
		if q.U32() != p.U32() {
			t.Errorf("free block not recycled through Asm")
		}
	})
}
