package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/olden"
)

// TestPaperShapes pins the paper's qualitative results at full input
// size: who wins, roughly by how much, and where the crossovers fall.
// This is the repository's primary scientific regression test; it takes
// tens of seconds, so it is skipped under -short.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size shape validation")
	}

	norm := map[string]map[core.Scheme]float64{}
	memShare := map[string]float64{}
	for _, bench := range []string{"health", "treeadd", "perimeter", "em3d", "power", "bisort", "mst"} {
		norm[bench] = map[core.Scheme]float64{}
		var base uint64
		for _, scheme := range core.Schemes() {
			d, err := Decompose(Spec{
				Bench:  bench,
				Params: olden.Params{Scheme: scheme, Size: olden.SizeFull},
			})
			if err != nil {
				t.Fatal(err)
			}
			if scheme == core.SchemeNone {
				base = d.Total
				memShare[bench] = float64(d.Memory()) / float64(d.Total)
			}
			norm[bench][scheme] = float64(d.Total) / float64(base)
		}
		t.Logf("%-10s mem=%4.2f none=1.00 dbp=%4.2f sw=%4.2f coop=%4.2f hw=%4.2f",
			bench, memShare[bench],
			norm[bench][core.SchemeDBP], norm[bench][core.SchemeSoftware],
			norm[bench][core.SchemeCooperative], norm[bench][core.SchemeHardware])
	}

	// health (paper's flagship): every JPP implementation produces a
	// sizable speedup; cooperative beats software by eliminating the
	// chained-prefetch serialization; DBP helps far less than JPP.
	h := norm["health"]
	if h[core.SchemeSoftware] > 0.85 {
		t.Errorf("health software JPP too weak: %.2f", h[core.SchemeSoftware])
	}
	if h[core.SchemeCooperative] >= h[core.SchemeSoftware] {
		t.Errorf("health: cooperative (%.2f) must beat software (%.2f)",
			h[core.SchemeCooperative], h[core.SchemeSoftware])
	}
	if h[core.SchemeDBP] <= h[core.SchemeCooperative] {
		t.Errorf("health: DBP (%.2f) must trail cooperative JPP (%.2f)",
			h[core.SchemeDBP], h[core.SchemeCooperative])
	}
	if memShare["health"] < 0.6 {
		t.Errorf("health memory-stall share %.2f, want the memory-bound regime", memShare["health"])
	}

	// treeadd: queue jumping pays; the hardware implementation forfeits
	// part of the savings to its uninstrumented first pass (4.2).
	ta := norm["treeadd"]
	if ta[core.SchemeCooperative] > 0.9 {
		t.Errorf("treeadd cooperative too weak: %.2f", ta[core.SchemeCooperative])
	}
	if ta[core.SchemeHardware] <= ta[core.SchemeCooperative] {
		t.Errorf("treeadd: hardware (%.2f) must trail cooperative (%.2f) on a few-pass program",
			ta[core.SchemeHardware], ta[core.SchemeCooperative])
	}

	// perimeter: a single-traversal program — software installs
	// jump-pointers during the build and wins big; hardware JPP spends
	// the only traversal learning and gains far less.
	pe := norm["perimeter"]
	if pe[core.SchemeSoftware] > 0.8 {
		t.Errorf("perimeter software too weak: %.2f", pe[core.SchemeSoftware])
	}
	if pe[core.SchemeHardware] <= pe[core.SchemeSoftware] {
		t.Errorf("perimeter: hardware (%.2f) must trail software (%.2f) on a one-pass program",
			pe[core.SchemeHardware], pe[core.SchemeSoftware])
	}

	// em3d: backbone-and-ribs with many traversals; cooperative and
	// hardware chain the rib arrays and beat software queue jumping.
	em := norm["em3d"]
	if em[core.SchemeCooperative] >= em[core.SchemeSoftware] ||
		em[core.SchemeHardware] >= em[core.SchemeSoftware] {
		t.Errorf("em3d: coop (%.2f) and hw (%.2f) must beat software (%.2f)",
			em[core.SchemeCooperative], em[core.SchemeHardware], em[core.SchemeSoftware])
	}

	// power: compute bound — software JPP must not help, and its
	// overhead must show as a (small) slowdown.
	pw := norm["power"]
	if pw[core.SchemeSoftware] < 1.0 {
		t.Errorf("power: software JPP sped up a compute-bound program (%.2f)", pw[core.SchemeSoftware])
	}
	if memShare["power"] > 0.15 {
		t.Errorf("power memory share %.2f, want compute-bound", memShare["power"])
	}

	// bisort: extremely volatile — explicit jump-pointer prefetching is
	// adverse; the hardware scheme degrades far less.
	bi := norm["bisort"]
	if bi[core.SchemeSoftware] < 1.1 {
		t.Errorf("bisort: software JPP not adverse (%.2f)", bi[core.SchemeSoftware])
	}
	if bi[core.SchemeHardware] >= bi[core.SchemeSoftware] {
		t.Errorf("bisort: hardware (%.2f) must degrade less than software (%.2f)",
			bi[core.SchemeHardware], bi[core.SchemeSoftware])
	}

	// mst: single effective pass — hardware JPP is the worst scheme.
	ms := norm["mst"]
	for _, s := range []core.Scheme{core.SchemeDBP, core.SchemeSoftware, core.SchemeCooperative} {
		if ms[core.SchemeHardware] <= ms[s] {
			t.Errorf("mst: hardware (%.2f) must be the least effective (vs %v %.2f)",
				ms[core.SchemeHardware], s, ms[s])
		}
	}
}

// TestLatencyScalingShape pins Figure 7's claim: as memory latency
// grows 4x, jump-pointer prefetching keeps (or grows) its relative
// benefit while serial dependence-based prefetching fades.
func TestLatencyScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size latency scaling")
	}
	rel := func(lat int, scheme core.Scheme) float64 {
		spec := Spec{
			Bench:  "health",
			Params: olden.Params{Scheme: scheme, Size: olden.SizeFull},
		}
		if lat != 70 {
			m := defaultsWithLatency(lat)
			spec.Mem = &m
		}
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		base := Spec{
			Bench:  "health",
			Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeFull},
		}
		if lat != 70 {
			m := defaultsWithLatency(lat)
			base.Mem = &m
		}
		b, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		return float64(b.CPU.Cycles) / float64(res.CPU.Cycles) // speedup
	}
	coop70, coop280 := rel(70, core.SchemeCooperative), rel(280, core.SchemeCooperative)
	dbp70, dbp280 := rel(70, core.SchemeDBP), rel(280, core.SchemeDBP)
	t.Logf("coop speedup %.2f -> %.2f; dbp speedup %.2f -> %.2f (70 -> 280 cycles)",
		coop70, coop280, dbp70, dbp280)
	if coop280 < coop70*0.9 {
		t.Errorf("cooperative JPP benefit collapsed at high latency: %.2f -> %.2f", coop70, coop280)
	}
	// DBP's *relative advantage over JPP* must shrink: the gap between
	// coop and dbp widens with latency.
	if coop280-dbp280 <= coop70-dbp70 {
		t.Errorf("JPP's edge over DBP did not grow with latency: %.2f vs %.2f",
			coop280-dbp280, coop70-dbp70)
	}
}
