// Package harness assembles full simulations and reproduces every table
// and figure of the paper's evaluation (see DESIGN.md's per-experiment
// index).
package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dbp"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/olden"
	"repro/internal/stats"
)

// Spec describes one simulation run.
type Spec struct {
	Bench  string
	Params olden.Params

	// Kernel, when non-nil, supplies the workload directly instead of
	// looking Bench up in the Olden registry; Bench then only labels the
	// run.  The validate subsystem runs generated micro-IR programs
	// through the full pipeline this way, and tests use it to inject
	// failing workloads into batches.  The function is invoked once per
	// run and must not build state shared between concurrent runs.
	Kernel func(*ir.Asm)

	// Timeout bounds the run's wall-clock time under RunGuarded and
	// RunBatch; zero means no deadline.  A run that exceeds it is
	// abandoned (its goroutine drains in the background — set
	// CPU.MaxCycles as a hard backstop) and its slot reports a
	// DeadlineError.
	Timeout time.Duration

	// Mem, CPU, DBP, HW override the Table 2 defaults when non-nil.
	Mem *cache.Params
	CPU *cpu.Config
	DBP *dbp.Config
	HW  *core.HWConfig
}

// Result collects every statistic a run produces.
type Result struct {
	Spec  Spec
	CPU   cpu.Stats
	Cache cache.Stats
	Insts ir.Stats
	Bpred bpred.Stats

	// Engine stats are present when the scheme uses hardware.
	Engine *dbp.Stats
	HW     *core.HWStats

	// Stats is the versioned cycle-attribution and
	// prefetch-effectiveness snapshot (the jppsim -stats-json payload).
	Stats stats.Snapshot

	// Hier exposes the hierarchy for tests and diagnostics; Heap
	// exposes the simulated allocator so tests can checksum
	// architectural state.
	Hier *cache.Hierarchy
	Heap *heap.Allocator
}

// Cycles returns the run's execution time in cycles.
func (r Result) Cycles() uint64 { return r.CPU.Cycles }

// Run executes one simulation to completion.
func Run(spec Spec) (Result, error) {
	kernel := spec.Kernel
	if kernel == nil {
		bench, ok := olden.ByName(spec.Bench)
		if !ok {
			return Result{}, fmt.Errorf("harness: unknown benchmark %q", spec.Bench)
		}
		kernel = bench.Kernel(spec.Params)
	}

	memP := cache.Defaults()
	if spec.Mem != nil {
		memP = *spec.Mem
	}
	cpuC := cpu.Defaults()
	if spec.CPU != nil {
		cpuC = *spec.CPU
	}
	dbpC := dbp.Defaults()
	if spec.DBP != nil {
		dbpC = *spec.DBP
	}
	hwC := core.DefaultHWConfig()
	if spec.HW != nil {
		hwC = *spec.HW
	}
	if spec.Params.Interval > 0 {
		hwC.Interval = spec.Params.Interval
	}

	scheme := spec.Params.Scheme
	memP.EnablePB = scheme.UsesHardware() && !memP.PerfectData

	img := mem.NewImage()
	alloc := heap.New(img)
	hier := cache.New(memP)
	pred := bpred.New(bpred.Defaults())

	var eng cpu.PrefetchEngine
	var dbpEng *dbp.Engine
	var hwEng *core.HWEngine
	if scheme.UsesHardware() && !memP.PerfectData {
		switch scheme {
		case core.SchemeHardware:
			hwEng = core.NewHWEngine(dbpC, hwC, hier, alloc)
			eng = hwEng
		default: // DBP, cooperative
			dbpEng = dbp.NewEngine(dbpC, hier, alloc)
			eng = dbpEng
		}
	}

	gen := ir.NewGen(alloc, kernel)
	c := cpu.New(cpuC, hier, pred, eng)
	cpuStats := c.Run(gen)

	res := Result{
		Spec:  spec,
		CPU:   cpuStats,
		Cache: hier.Stats(),
		Insts: gen.Stats(),
		Bpred: pred.Stats(),
		Hier:  hier,
		Heap:  alloc,
	}
	if dbpEng != nil {
		s := dbpEng.Stats()
		res.Engine = &s
	}
	if hwEng != nil {
		s := hwEng.Stats()
		res.Engine = &s
		h := hwEng.HWStats()
		res.HW = &h
	}
	res.Stats = buildSnapshot(&res)
	return res, nil
}

// buildSnapshot assembles the versioned stats record from a finished
// run's counters.  It finalizes the hierarchy's prefetch tracker, so it
// runs once, after the simulation completes.
func buildSnapshot(r *Result) stats.Snapshot {
	p := r.Hier.PrefetchStats()
	rep := stats.PrefetchReport{
		PrefetchStats: p,
		SWIssued:      r.CPU.CommitByCl[ir.Prefetch],
		Derived:       p.Metrics(),
	}
	if r.Engine != nil {
		rep.EngineIssued = r.Engine.IssuedPrefetch + r.Engine.DroppedPresent
	}
	return stats.Snapshot{
		Version:          stats.SchemaVersion,
		Bench:            r.Spec.Bench,
		Scheme:           r.Spec.Params.Scheme.String(),
		Idiom:            r.Spec.Params.Idiom.String(),
		Size:             r.Spec.Params.Size.String(),
		Cycles:           r.CPU.Cycles,
		Insts:            r.CPU.Insts,
		IPC:              r.CPU.IPC(),
		Truncated:        r.CPU.Truncated,
		CyclesByCategory: r.CPU.Attribution,
		Prefetch:         rep,
		Cache: stats.CacheReport{
			L1DAccesses: r.Cache.L1DAccesses,
			L1DMisses:   r.Cache.L1DMisses,
			L2Accesses:  r.Cache.L2Accesses,
			L2Misses:    r.Cache.L2Misses,
			PBHits:      r.Cache.PBHits,
			PBFills:     r.Cache.PBFills,
			L1L2Bytes:   r.Cache.L1L2Bytes,
			MemBytes:    r.Cache.MemBytes,
		},
	}
}

// Decomposition splits a configuration's execution time into compute
// time and memory stall time, following the paper's method: the compute
// portion is a second simulation with uniform single-cycle data memory
// (but realistic port bandwidth); the remainder is memory stall.
type Decomposition struct {
	Total   uint64
	Compute uint64
	// Full is the realistic run's full result.
	Full Result
}

// Memory returns the memory-stall cycles.
func (d Decomposition) Memory() uint64 {
	if d.Total < d.Compute {
		return 0
	}
	return d.Total - d.Compute
}

// perfectSpec derives the perfect-data-memory variant of a spec (the
// compute-time pass of the paper's decomposition method).
func perfectSpec(spec Spec) Spec {
	memP := cache.Defaults()
	if spec.Mem != nil {
		memP = *spec.Mem
	}
	memP.PerfectData = true
	spec.Mem = &memP
	return spec
}

// Decompose runs spec twice (realistic + perfect data memory).  The two
// passes are independent simulations and run concurrently.
func Decompose(spec Spec) (Decomposition, error) {
	var (
		full, perfect       Result
		fullErr, perfectErr error
		wg                  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		perfect, perfectErr = Run(perfectSpec(spec))
	}()
	full, fullErr = Run(spec)
	wg.Wait()
	if fullErr != nil {
		return Decomposition{}, fullErr
	}
	if perfectErr != nil {
		return Decomposition{}, perfectErr
	}
	return Decomposition{
		Total:   full.CPU.Cycles,
		Compute: perfect.CPU.Cycles,
		Full:    full,
	}, nil
}

// defaultsWithLatency returns the Table 2 memory system with a
// different main-memory latency (the Figure 7 sweeps).
func defaultsWithLatency(lat int) cache.Params {
	m := cache.Defaults()
	m.MemLatency = lat
	return m
}
