// Package harness assembles full simulations and reproduces every table
// and figure of the paper's evaluation (see DESIGN.md's per-experiment
// index).
package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dbp"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/olden"
	"repro/internal/prefetch"
	"repro/internal/stats"
)

// Spec describes one simulation run.
type Spec struct {
	Bench  string
	Params olden.Params

	// Engine names a registered prefetch engine (internal/prefetch) to
	// attach to the core; "" selects the scheme's historical default
	// (prefetch.DefaultFor), which preserves the paper-artifact
	// configurations.  Engines never attach to perfect-memory runs.
	Engine string

	// Kernel, when non-nil, supplies the workload directly instead of
	// looking Bench up in the merged workload registry (BenchByName:
	// the Olden suite plus internal/kernels); Bench then only labels the
	// run.  The validate subsystem runs generated micro-IR programs
	// through the full pipeline this way, and tests use it to inject
	// failing workloads into batches.  The function is invoked once per
	// run and must not build state shared between concurrent runs.
	Kernel func(*ir.Asm)

	// Timeout bounds the run's wall-clock time under RunGuarded and
	// RunBatch; zero means no deadline.  A run that exceeds it is
	// abandoned (its goroutine drains in the background — set
	// CPU.MaxCycles as a hard backstop) and its slot reports a
	// DeadlineError.
	Timeout time.Duration

	// Mem, CPU, DBP, HW override the Table 2 defaults when non-nil.
	Mem *cache.Params
	CPU *cpu.Config
	DBP *dbp.Config
	HW  *core.HWConfig

	// Sampling switches the run to sampled simulation (detailed timing
	// on periodic intervals, functional fast-forward between them; see
	// cpu.SamplingConfig).  Cycle counts become extrapolations with
	// error bars and the snapshot is flagged Sampled; architectural
	// digests stay bit-identical to a full run.  Nil (the default) is
	// full fidelity.
	Sampling *cpu.SamplingConfig
}

// Result collects every statistic a run produces.
type Result struct {
	Spec  Spec
	CPU   cpu.Stats
	Cache cache.Stats
	Insts ir.Stats
	Bpred bpred.Stats

	// EngineName is the resolved registry engine attached to the run
	// ("" when none was attached); PrefEngine is the live engine
	// instance, exposed for conformance tests and diagnostics.
	EngineName string
	PrefEngine cpu.PrefetchEngine

	// Engine stats are present when the attached engine exposes
	// dependence-engine counters (dbp, hw, hybrid); HW when it exposes
	// jump-pointer counters (hw, hybrid).
	Engine *dbp.Stats
	HW     *core.HWStats

	// Stats is the versioned cycle-attribution and
	// prefetch-effectiveness snapshot (the jppsim -stats-json payload).
	Stats stats.Snapshot

	// Hier exposes the hierarchy for tests and diagnostics; Heap
	// exposes the simulated allocator so tests can checksum
	// architectural state.
	Hier *cache.Hierarchy
	Heap *heap.Allocator
}

// Cycles returns the run's execution time in cycles.
func (r Result) Cycles() uint64 { return r.CPU.Cycles }

// Run executes one simulation to completion.
func Run(spec Spec) (Result, error) {
	kernel := spec.Kernel
	if kernel == nil {
		bench, ok := BenchByName(spec.Bench)
		if !ok {
			return Result{}, fmt.Errorf("harness: unknown benchmark %q", spec.Bench)
		}
		kernel = bench.Kernel(spec.Params)
	}

	memP := cache.Defaults()
	if spec.Mem != nil {
		memP = *spec.Mem
	}
	cpuC := cpu.Defaults()
	if spec.CPU != nil {
		cpuC = *spec.CPU
	}
	dbpC := dbp.Defaults()
	if spec.DBP != nil {
		dbpC = *spec.DBP
	}
	hwC := core.DefaultHWConfig()
	if spec.HW != nil {
		hwC = *spec.HW
	}

	// Resolve the prefetch engine through the registry: an explicit
	// Spec.Engine wins, otherwise the scheme's historical default.
	// Spec.Params.Interval is routed uniformly through the factory
	// config, so every engine's lookahead honors a swept interval.
	engineName := spec.Engine
	if engineName == "" {
		engineName = prefetch.DefaultFor(spec.Params.Scheme)
	}
	attach := engineName != "" && !memP.PerfectData
	memP.EnablePB = attach

	img := mem.NewImage()
	alloc := heap.New(img)
	hier := cache.New(memP)
	pred := bpred.New(bpred.Defaults())

	var eng cpu.PrefetchEngine
	if attach {
		var err error
		eng, err = prefetch.New(engineName, prefetch.Config{
			DBP:      dbpC,
			HW:       hwC,
			Interval: spec.Params.Interval,
		}, hier, alloc)
		if err != nil {
			return Result{}, err
		}
	}

	if spec.Sampling != nil {
		sc := *spec.Sampling
		cpuC.Sampling = &sc
	}

	// Block replay is disabled together with the core's block-granular
	// dispatch: one knob governs both ends of the batch channel, so a
	// replay-off run exercises the per-instruction emission and fetch
	// paths end to end.
	gen := ir.NewGenWith(alloc, kernel, ir.GenOptions{
		DisableReplay: cpuC.DisableBlockReplay,
	})
	c := cpu.New(cpuC, hier, pred, eng)
	cpuStats := c.Run(gen)

	res := Result{
		Spec:       spec,
		CPU:        cpuStats,
		Cache:      hier.Stats(),
		Insts:      gen.Stats(),
		Bpred:      pred.Stats(),
		PrefEngine: eng,
		Hier:       hier,
		Heap:       alloc,
	}
	if attach {
		res.EngineName = engineName
	}
	if ds, ok := eng.(interface{ Stats() dbp.Stats }); ok {
		s := ds.Stats()
		res.Engine = &s
	}
	if hs, ok := eng.(interface{ HWStats() core.HWStats }); ok {
		h := hs.HWStats()
		res.HW = &h
	}
	res.Stats = buildSnapshot(&res)
	return res, nil
}

// buildSnapshot assembles the versioned stats record from a finished
// run's counters.  It finalizes the hierarchy's prefetch tracker, so it
// runs once, after the simulation completes.
func buildSnapshot(r *Result) stats.Snapshot {
	p := r.Hier.PrefetchStats()
	rep := stats.PrefetchReport{
		PrefetchStats: p,
		SWIssued:      r.CPU.CommitByCl[ir.Prefetch],
		Derived:       p.Metrics(),
	}
	if rq, ok := r.PrefEngine.(prefetch.Requester); ok {
		// Issued fills + already-present discards: both reached the
		// hierarchy choke point, so both were counted by the Tracker
		// (the dropped ones retire immediately as useless).  This is
		// the engine's exact share of the Tracker's Issued count; the
		// per-source identity SWIssued + EngineIssued == Issued is
		// enforced by Snapshot.Validate for complete realistic runs.
		issued, dropped := rq.CacheRequests()
		rep.EngineIssued = issued + dropped
	}
	// The replay section is present exactly when block replay ran
	// (the default; Spec.CPU can opt out).  Zero counters with the
	// section present are meaningful: a workload the cache could not
	// capture at all.
	var repRep *stats.ReplayReport
	if r.Spec.CPU == nil || !r.Spec.CPU.DisableBlockReplay {
		repRep = &stats.ReplayReport{
			BlocksCaptured: r.Insts.BlocksCaptured,
			ReplayedInsts:  r.Insts.ReplayedInsts,
			ReplayAborts:   r.Insts.ReplayAborts,
		}
		if total := r.Insts.Total(); total > 0 {
			repRep.HitRate = float64(r.Insts.ReplayedInsts) / float64(total)
		}
	}
	var samRep *stats.SamplingReport
	if sam := r.CPU.Sample; sam != nil {
		samRep = &stats.SamplingReport{
			Intervals:      sam.Intervals,
			MeasuredInsts:  sam.MeasuredInsts,
			MeasuredCycles: sam.MeasuredCycles,
			FFInsts:        sam.FFInsts,
			CPIMean:        sam.CPIMean,
			CPIStdErr:      sam.CPIStdErr,
			CyclesLo:       sam.CyclesLo,
			CyclesHi:       sam.CyclesHi,
		}
	}
	return stats.Snapshot{
		Version:          stats.SchemaVersion,
		Bench:            r.Spec.Bench,
		Scheme:           r.Spec.Params.Scheme.String(),
		Idiom:            r.Spec.Params.Idiom.String(),
		Engine:           r.EngineName,
		PerfectMem:       r.Spec.Mem != nil && r.Spec.Mem.PerfectData,
		Size:             r.Spec.Params.Size.String(),
		Cycles:           r.CPU.Cycles,
		Insts:            r.CPU.Insts,
		IPC:              r.CPU.IPC(),
		Truncated:        r.CPU.Truncated,
		Sampled:          samRep != nil,
		Sampling:         samRep,
		CyclesByCategory: r.CPU.Attribution,
		Prefetch:         rep,
		Cache: stats.CacheReport{
			L1DAccesses: r.Cache.L1DAccesses,
			L1DMisses:   r.Cache.L1DMisses,
			L2Accesses:  r.Cache.L2Accesses,
			L2Misses:    r.Cache.L2Misses,
			PBHits:      r.Cache.PBHits,
			PBFills:     r.Cache.PBFills,
			L1L2Bytes:   r.Cache.L1L2Bytes,
			MemBytes:    r.Cache.MemBytes,
		},
		Replay: repRep,
	}
}

// Decomposition splits a configuration's execution time into compute
// time and memory stall time, following the paper's method: the compute
// portion is a second simulation with uniform single-cycle data memory
// (but realistic port bandwidth); the remainder is memory stall.
type Decomposition struct {
	Total   uint64
	Compute uint64
	// Full is the realistic run's full result.
	Full Result
}

// Memory returns the memory-stall cycles.
func (d Decomposition) Memory() uint64 {
	if d.Total < d.Compute {
		return 0
	}
	return d.Total - d.Compute
}

// perfectSpec derives the perfect-data-memory variant of a spec (the
// compute-time pass of the paper's decomposition method).
func perfectSpec(spec Spec) Spec {
	memP := cache.Defaults()
	if spec.Mem != nil {
		memP = *spec.Mem
	}
	memP.PerfectData = true
	spec.Mem = &memP
	return spec
}

// Decompose runs spec twice (realistic + perfect data memory).  The two
// passes are independent simulations and run concurrently.
//
// A spec that already requests perfect data memory has no memory stall
// to measure: the single run is its own compute pass, so Decompose runs
// it once and reports Total == Compute rather than simulating the same
// perfect machine twice.
func Decompose(spec Spec) (Decomposition, error) {
	if spec.Mem != nil && spec.Mem.PerfectData {
		full, err := Run(spec)
		if err != nil {
			return Decomposition{}, err
		}
		return Decomposition{
			Total:   full.CPU.Cycles,
			Compute: full.CPU.Cycles,
			Full:    full,
		}, nil
	}
	var (
		full, perfect       Result
		fullErr, perfectErr error
		wg                  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		perfect, perfectErr = Run(perfectSpec(spec))
	}()
	full, fullErr = Run(spec)
	wg.Wait()
	if fullErr != nil {
		return Decomposition{}, fullErr
	}
	if perfectErr != nil {
		return Decomposition{}, perfectErr
	}
	return Decomposition{
		Total:   full.CPU.Cycles,
		Compute: perfect.CPU.Cycles,
		Full:    full,
	}, nil
}

// defaultsWithLatency returns the Table 2 memory system with a
// different main-memory latency (the Figure 7 sweeps).
func defaultsWithLatency(lat int) cache.Params {
	m := cache.Defaults()
	m.MemLatency = lat
	return m
}
