package harness

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/olden"
)

// TestBlockReplayEquivalence pins the block-replay contract end to end:
// for every kernel under every scheme, with cycle skipping both on and
// off, the full statistics snapshot is byte-identical whether the front
// end runs the decoded basic-block replay cache (block-granular
// dispatch in the core, template-verified emission in ir) or the
// per-instruction classic paths.  Replay is a pure simulator
// optimisation and must never be observable in results; the replay
// observability section is the one intentional difference, so it is
// normalized away before comparing.
func TestBlockReplayEquivalence(t *testing.T) {
	t.Parallel()
	for _, b := range AllBenches() {
		for _, scheme := range core.Schemes() {
			for _, noskip := range []bool{false, true} {
				b, scheme, noskip := b, scheme, noskip
				name := b.Name + "/" + scheme.String()
				if noskip {
					name += "/noskip"
				}
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					run := func(disableReplay bool) []byte {
						cfg := cpu.Defaults()
						cfg.DisableCycleSkip = noskip
						cfg.DisableBlockReplay = disableReplay
						res, err := Run(Spec{
							Bench:  b.Name,
							Params: olden.Params{Scheme: scheme, Size: olden.SizeTest},
							CPU:    &cfg,
						})
						if err != nil {
							t.Fatal(err)
						}
						// The replay section exists exactly when replay ran;
						// every architectural field must match without it.
						res.Stats.Replay = nil
						buf, err := json.Marshal(res.Stats)
						if err != nil {
							t.Fatal(err)
						}
						return buf
					}
					replayed, classic := run(false), run(true)
					if string(replayed) != string(classic) {
						t.Errorf("snapshot diverges with block replay enabled\nreplay:  %s\nclassic: %s",
							replayed, classic)
					}
				})
			}
		}
	}
}
