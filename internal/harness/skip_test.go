package harness

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/olden"
)

// TestCycleSkipEquivalence pins the event-driven cycle-skipping
// contract: for every kernel under every scheme, the full statistics
// snapshot — cycles, attribution, prefetch outcomes, cache counters,
// everything — is byte-identical whether the core simulates each
// quiescent cycle or jumps over them.  Skipping is a pure simulator
// optimisation and must never be observable in results; see
// Core.nextEventAt for the invariants that make this hold.
func TestCycleSkipEquivalence(t *testing.T) {
	t.Parallel()
	for _, b := range AllBenches() {
		for _, scheme := range core.Schemes() {
			b, scheme := b, scheme
			t.Run(b.Name+"/"+scheme.String(), func(t *testing.T) {
				t.Parallel()
				run := func(disable bool) []byte {
					cfg := cpu.Defaults()
					cfg.DisableCycleSkip = disable
					res, err := Run(Spec{
						Bench:  b.Name,
						Params: olden.Params{Scheme: scheme, Size: olden.SizeTest},
						CPU:    &cfg,
					})
					if err != nil {
						t.Fatal(err)
					}
					buf, err := json.Marshal(res.Stats)
					if err != nil {
						t.Fatal(err)
					}
					return buf
				}
				skipped, cycled := run(false), run(true)
				if string(skipped) != string(cycled) {
					t.Errorf("snapshot diverges with cycle skipping enabled\nskip:  %s\nplain: %s",
						skipped, cycled)
				}
			})
		}
	}
}

// benchRun measures end-to-end simulator throughput on one
// representative kernel, with and without cycle skipping, so the win
// from event-driven skipping stays visible in `go test -bench`.
func benchRun(b *testing.B, disable bool) {
	cfg := cpu.Defaults()
	cfg.DisableCycleSkip = disable
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(Spec{
			Bench:  "health",
			Params: olden.Params{Scheme: core.SchemeCooperative, Size: olden.SizeSmall},
			CPU:    &cfg,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.CPU.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

func BenchmarkRunSkip(b *testing.B)   { benchRun(b, false) }
func BenchmarkRunNoSkip(b *testing.B) { benchRun(b, true) }
