package harness

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/olden"
	"repro/internal/stats"
)

var update = flag.Bool("update", false, "regenerate golden stats snapshots")

// TestStatsInvariantsAllKernelsAllEngines is the tentpole's acceptance
// gate: for every Olden kernel under every scheme (no prefetching, DBP,
// software, cooperative, hardware), the per-cycle attribution sums
// exactly to Cycles, prefetch outcomes sum exactly to prefetches
// issued, and the derived metrics sit in [0,1].
func TestStatsInvariantsAllKernelsAllEngines(t *testing.T) {
	t.Parallel()
	for _, b := range AllBenches() {
		for _, scheme := range core.Schemes() {
			b, scheme := b, scheme
			t.Run(b.Name+"/"+scheme.String(), func(t *testing.T) {
				t.Parallel()
				res, err := Run(Spec{
					Bench:  b.Name,
					Params: olden.Params{Scheme: scheme, Size: olden.SizeTest},
				})
				if err != nil {
					t.Fatal(err)
				}
				snap := res.Stats
				if err := snap.Validate(); err != nil {
					t.Fatal(err)
				}
				if snap.Cycles == 0 || snap.Insts == 0 {
					t.Fatalf("degenerate run: cycles=%d insts=%d", snap.Cycles, snap.Insts)
				}
				// Cross-layer identity: every prefetch the tracker saw came
				// from either a committed software prefetch instruction or
				// the engine (complete runs only; truncation would leave
				// emitted-but-unissued prefetches).
				if !snap.Truncated {
					got := snap.Prefetch.SWIssued + snap.Prefetch.EngineIssued
					if got != snap.Prefetch.Issued {
						t.Errorf("sw(%d)+engine(%d)=%d prefetches, tracker saw %d",
							snap.Prefetch.SWIssued, snap.Prefetch.EngineIssued,
							got, snap.Prefetch.Issued)
					}
				}
				if scheme == core.SchemeNone && snap.Prefetch.Issued != 0 {
					t.Errorf("no-prefetch run issued %d prefetches", snap.Prefetch.Issued)
				}
			})
		}
	}
}

// TestStatsInvariantsPerfectMemory covers the decomposition pass: with
// PerfectData the hierarchy bypasses the tracker entirely, so the
// prefetch section must be all zeros while the cycle identity still
// holds.
func TestStatsInvariantsPerfectMemory(t *testing.T) {
	spec := perfectSpec(Spec{
		Bench:  "health",
		Params: olden.Params{Scheme: core.SchemeCooperative, Size: olden.SizeTest},
	})
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Stats.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Prefetch.Issued != 0 || res.Stats.Prefetch.OutcomeTotal() != 0 {
		t.Errorf("perfect-memory run tracked prefetches: %+v", res.Stats.Prefetch)
	}
	if res.Stats.CyclesByCategory.LoadMiss != 0 {
		t.Errorf("perfect-memory run charged %d load-miss cycles",
			res.Stats.CyclesByCategory.LoadMiss)
	}
}

// TestStatsAttributionIsMeaningful pins the qualitative shape the paper
// depends on: the no-prefetch run of a pointer-chasing kernel spends a
// large share of its cycles stalled on load misses, and cooperative JPP
// reduces exactly that share.  SizeSmall is the smallest input where
// the structures outgrow the L1 and the jump-pointer queue warms up.
func TestStatsAttributionIsMeaningful(t *testing.T) {
	run := func(scheme core.Scheme) stats.Snapshot {
		res, err := Run(Spec{
			Bench:  "health",
			Params: olden.Params{Scheme: scheme, Size: olden.SizeSmall},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	base := run(core.SchemeNone)
	coop := run(core.SchemeCooperative)
	if base.CyclesByCategory.LoadMiss == 0 {
		t.Fatal("baseline health run shows no load-miss cycles")
	}
	if coop.CyclesByCategory.LoadMiss >= base.CyclesByCategory.LoadMiss {
		t.Errorf("cooperative JPP did not reduce load-miss cycles: %d -> %d",
			base.CyclesByCategory.LoadMiss, coop.CyclesByCategory.LoadMiss)
	}
	if coop.Prefetch.Useful() == 0 {
		t.Error("cooperative JPP recorded no useful prefetches")
	}
}

func marshalSnap(t *testing.T, s stats.Snapshot) []byte {
	t.Helper()
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestStatsDeterministic asserts byte-identical stats JSON across
// repeated runs and across batch-runner worker counts: the stats layer
// must not introduce any scheduling or map-iteration dependence.
func TestStatsDeterministic(t *testing.T) {
	var specs []Spec
	for _, scheme := range core.Schemes() {
		specs = append(specs, Spec{
			Bench:  "health",
			Params: olden.Params{Scheme: scheme, Size: olden.SizeTest},
		})
	}

	ref := make([][]byte, len(specs))
	for i, it := range RunBatch(specs, 1) {
		if it.Err != nil {
			t.Fatal(it.Err)
		}
		ref[i] = marshalSnap(t, it.Result.Stats)
	}

	// Repeated serial run.
	for i, it := range RunBatch(specs, 1) {
		if it.Err != nil {
			t.Fatal(it.Err)
		}
		if got := marshalSnap(t, it.Result.Stats); string(got) != string(ref[i]) {
			t.Errorf("repeat run of %s/%v differs:\n%s\nvs\n%s",
				specs[i].Bench, specs[i].Params.Scheme, got, ref[i])
		}
	}

	// Across worker counts.
	for _, workers := range []int{2, 4, 0} {
		for i, it := range RunBatch(specs, workers) {
			if it.Err != nil {
				t.Fatal(it.Err)
			}
			if got := marshalSnap(t, it.Result.Stats); string(got) != string(ref[i]) {
				t.Errorf("workers=%d run of %s/%v differs from serial",
					workers, specs[i].Bench, specs[i].Params.Scheme)
			}
		}
	}
}

// TestGoldenStats locks the small-scale stats snapshot of every Olden
// kernel under cooperative JPP: any timing-model change shows up as a
// reviewable golden diff.  Regenerate with:
//
//	go test ./internal/harness -run TestGoldenStats -update
func TestGoldenStats(t *testing.T) {
	t.Parallel()
	for _, b := range AllBenches() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(Spec{
				Bench:  b.Name,
				Params: olden.Params{Scheme: core.SchemeCooperative, Size: olden.SizeTest},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Stats.Validate(); err != nil {
				t.Fatal(err)
			}
			got := marshalSnap(t, res.Stats)
			path := filepath.Join("testdata", "stats_"+b.Name+"_coop_test.json")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if string(got) != string(want) {
				t.Errorf("stats snapshot for %s changed (rerun with -update if intended)\ngot:\n%s\nwant:\n%s",
					b.Name, got, want)
			}
			// The golden file itself must parse and validate — it is the
			// published example of the schema.
			snaps, err := stats.ParseSnapshots(want)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range snaps {
				if err := s.Validate(); err != nil {
					t.Errorf("golden file invalid: %v", err)
				}
			}
		})
	}
}

// TestRenderAttribution smoke-tests the Fig. 6-style table: every
// bench/scheme row and every category column must appear.
func TestRenderAttribution(t *testing.T) {
	var snaps []stats.Snapshot
	for _, scheme := range []core.Scheme{core.SchemeNone, core.SchemeCooperative} {
		res, err := Run(Spec{
			Bench:  "treeadd",
			Params: olden.Params{Scheme: scheme, Size: olden.SizeTest},
		})
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, res.Stats)
	}
	text := RenderAttribution(snaps)
	for _, want := range []string{"treeadd", "none", "coop", "busy%", "ldmiss%", "cov", "acc", "timely"} {
		if !strings.Contains(text, want) {
			t.Errorf("attribution table missing %q:\n%s", want, text)
		}
	}
	if got := strings.Count(text, "treeadd"); got != len(snaps) {
		t.Errorf("want one row per snapshot, got %d:\n%s", got, text)
	}
}
