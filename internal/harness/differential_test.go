package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/olden"
)

// TestPrefetchingPreservesArchitecturalState is the differential
// correctness gate: for every kernel of the suite, every prefetching
// scheme (DBP, software, cooperative, hardware) and the perfect-memory
// decomposition passes must leave the simulated heap's architectural
// state — every live block's payload — byte-identical to the
// no-prefetch baseline.  Prefetching is allowed to write jump pointers
// into block padding and scheme-private globals, and nothing else.
func TestPrefetchingPreservesArchitecturalState(t *testing.T) {
	t.Parallel()
	for _, b := range AllBenches() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			run := func(spec Spec) Result {
				res, err := Run(spec)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			spec := func(scheme core.Scheme) Spec {
				return Spec{
					Bench:  b.Name,
					Params: olden.Params{Scheme: scheme, Size: olden.SizeTest},
				}
			}

			base := run(spec(core.SchemeNone))
			if base.Heap.Allocs() == 0 {
				t.Fatalf("%s allocated nothing; checksum would be vacuous", b.Name)
			}
			want := base.Heap.PayloadChecksum()

			for _, scheme := range core.Schemes() {
				if scheme == core.SchemeNone {
					continue
				}
				res := run(spec(scheme))
				if got := res.Heap.PayloadChecksum(); got != want {
					t.Errorf("scheme %v changed architectural state: checksum %#x, want %#x",
						scheme, got, want)
				}
			}

			// The decomposition's perfect-data-memory pass must also be
			// functionally identical (it shares the instruction stream).
			for _, scheme := range []core.Scheme{core.SchemeNone, core.SchemeCooperative} {
				res := run(perfectSpec(spec(scheme)))
				if got := res.Heap.PayloadChecksum(); got != want {
					t.Errorf("perfect-memory %v pass changed architectural state: checksum %#x, want %#x",
						scheme, got, want)
				}
			}
		})
	}
}

// TestChecksumDetectsPayloadChange guards the differential test's own
// sensitivity: the checksum must actually react to a payload word
// changing, or the test above proves nothing.
func TestChecksumDetectsPayloadChange(t *testing.T) {
	res, err := Run(Spec{
		Bench:  "treeadd",
		Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := res.Heap.PayloadChecksum()
	// Flip one payload word of some live block.
	img := res.Heap.Image()
	var flipped bool
	for addr := uint32(0x1000_0000); addr < 0x1000_1000; addr += 4 {
		if res.Heap.BlockSize(addr) != 0 {
			img.WriteWord(addr, img.ReadWord(addr)^1)
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("no live block found in the first heap page")
	}
	if res.Heap.PayloadChecksum() == before {
		t.Fatal("checksum did not change after payload mutation")
	}
}
