package harness

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// The batch runner executes independent simulations concurrently on a
// bounded worker pool.  Each Run builds a fresh mem.Image, heap, cache
// hierarchy and core, so runs share no mutable state; the runner
// exploits that to use every host core while keeping results in
// deterministic input order.  Experiment drivers declare their spec
// sets up front and assemble reports from the ordered batch results,
// which makes report text independent of worker count (see
// TestParallelSerialIdenticalReports).

// RunItem is one slot of a batch result: the run outcome, or the error
// that spec produced.  A failed spec does not abort the batch; the
// other slots are still filled.
type RunItem struct {
	Result Result
	Err    error
	// Elapsed is the wall-clock time of this run.  Under a parallel
	// batch the runs share host cores, so per-item throughput derived
	// from it understates single-run speed; treat it as a smoke
	// indicator (BenchmarkCore measures serial throughput properly).
	Elapsed time.Duration
}

// DecompItem is one slot of a decomposition batch result.
type DecompItem struct {
	Decomp Decomposition
	Err    error
}

// ErrDeadline marks a run abandoned for exceeding its Spec.Timeout.
// Batch slots wrap it, so callers test with errors.Is.
var ErrDeadline = errors.New("run deadline exceeded")

// runRecover executes Run, converting a panicking simulation — a
// kernel bug, a wedged configuration tripping an internal invariant —
// into an ordinary error so one bad configuration cannot take down a
// whole batch.
func runRecover(spec Spec) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("harness: run %s/%v panicked: %v\n%s",
				spec.Bench, spec.Params.Scheme, r, debug.Stack())
		}
	}()
	return Run(spec)
}

// outcome is a finished guarded run: the result, or the error its
// panic/failure was converted to.
type outcome struct {
	res Result
	err error
}

// RunGuarded is the fault-isolated Run used by the batch runner and the
// validation driver: panics become errors, and when spec.Timeout is set
// a wedged run is abandoned after the deadline and reported as
// ErrDeadline.  An abandoned run's goroutine keeps simulating in the
// background until it finishes on its own; callers that need a hard
// stop should also set CPU.MaxCycles.
func RunGuarded(spec Spec) (Result, error) {
	if spec.Timeout <= 0 {
		return runRecover(spec)
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := runRecover(spec)
		ch <- outcome{res, err}
	}()
	timer := time.NewTimer(spec.Timeout)
	defer timer.Stop()
	return awaitRun(spec, ch, timer.C)
}

// awaitRun settles a guarded run against its deadline.  When both the
// run's own outcome and the expired timer are ready — a run (or a
// recovered panic) landing in the same scheduling window as its
// deadline — a bare select would pick at random and could misreport
// the actual outcome as ErrDeadline, hiding a real result or masking a
// kernel panic behind a generic deadline error.  The deadline arm
// therefore re-checks the outcome channel and only reports ErrDeadline
// when the run truly has not finished.
func awaitRun(spec Spec, ch <-chan outcome, deadline <-chan time.Time) (Result, error) {
	select {
	case o := <-ch:
		return o.res, o.err
	case <-deadline:
		select {
		case o := <-ch:
			return o.res, o.err
		default:
		}
		return Result{}, fmt.Errorf("harness: run %s/%v exceeded %v: %w",
			spec.Bench, spec.Params.Scheme, spec.Timeout, ErrDeadline)
	}
}

// normWorkers resolves a worker-count request: values <= 0 select
// GOMAXPROCS, and the pool never exceeds the number of jobs.
func normWorkers(workers, jobs int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RunBatch executes every spec and returns the results in input order.
// At most workers simulations run concurrently (workers <= 0 selects
// GOMAXPROCS).  Every slot is fault-isolated through RunGuarded:
// errors, panics and deadline overruns are captured per slot rather
// than aborting the batch (or, for panics, the whole process).
func RunBatch(specs []Spec, workers int) []RunItem {
	out := make([]RunItem, len(specs))
	if len(specs) == 0 {
		return out
	}
	workers = normWorkers(workers, len(specs))
	if workers == 1 {
		for i, s := range specs {
			start := time.Now()
			out[i].Result, out[i].Err = RunGuarded(s)
			out[i].Elapsed = time.Since(start)
		}
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				start := time.Now()
				out[i].Result, out[i].Err = RunGuarded(specs[i])
				out[i].Elapsed = time.Since(start)
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// DecomposeBatch runs the compute/memory-stall decomposition of every
// spec and returns the results in input order.  Each decomposition's
// two passes (realistic and perfect data memory) are independent
// simulations, so the batch flattens them into a single 2n-run pool:
// the pair for spec i occupies slots 2i (realistic) and 2i+1 (perfect),
// giving the worker pool twice the parallelism of the spec list without
// oversubscribing the host.  A spec that already requests perfect data
// memory contributes a single run (its own compute pass), matching
// Decompose.
func DecomposeBatch(specs []Spec, workers int) []DecompItem {
	out := make([]DecompItem, len(specs))
	if len(specs) == 0 {
		return out
	}
	// perfectAt[i] is the flat-pool index of spec i's perfect pass, or
	// -1 when the realistic run doubles as it.
	flat := make([]Spec, 0, 2*len(specs))
	fullAt := make([]int, len(specs))
	perfectAt := make([]int, len(specs))
	for i, s := range specs {
		fullAt[i] = len(flat)
		flat = append(flat, s)
		if s.Mem != nil && s.Mem.PerfectData {
			perfectAt[i] = -1
			continue
		}
		perfectAt[i] = len(flat)
		flat = append(flat, perfectSpec(s))
	}
	runs := RunBatch(flat, workers)
	for i := range specs {
		full := runs[fullAt[i]]
		if full.Err != nil {
			out[i].Err = full.Err
			continue
		}
		perfect := full
		if perfectAt[i] >= 0 {
			perfect = runs[perfectAt[i]]
			if perfect.Err != nil {
				out[i].Err = perfect.Err
				continue
			}
		}
		out[i].Decomp = Decomposition{
			Total:   full.Result.CPU.Cycles,
			Compute: perfect.Result.CPU.Cycles,
			Full:    full.Result,
		}
	}
	return out
}

// firstErr returns the first captured error of a batch, preserving the
// fail-fast contract of the experiment drivers.
func firstErr(items []RunItem) error {
	for _, it := range items {
		if it.Err != nil {
			return it.Err
		}
	}
	return nil
}

// firstDecompErr is firstErr for decomposition batches.
func firstDecompErr(items []DecompItem) error {
	for _, it := range items {
		if it.Err != nil {
			return it.Err
		}
	}
	return nil
}
