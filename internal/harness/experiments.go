package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dbp"
	"repro/internal/olden"
	"repro/internal/prefetch"
	"repro/internal/stats"
)

// ExpConfig parameterizes experiment reproduction.
type ExpConfig struct {
	// Size selects workload scaling (default olden.SizeFull).
	Size olden.Size
	// Benches restricts the benchmark set (nil = all).
	Benches []string
	// Workers bounds how many simulations run concurrently (<= 0 =
	// GOMAXPROCS, 1 = serial).  Reports are byte-identical for every
	// worker count: the drivers declare their spec sets up front and
	// assemble output from ordered batch results.
	Workers int
	// BenchJSON locates the committed benchmark document consumed by
	// the mips experiment (default "BENCH_jpp.json" in the working
	// directory).  The other experiments ignore it.
	BenchJSON string
}

func (c ExpConfig) benches() []*olden.Benchmark {
	if len(c.Benches) == 0 {
		return olden.Suite()
	}
	var out []*olden.Benchmark
	for _, n := range c.Benches {
		if b, ok := BenchByName(n); ok {
			out = append(out, b)
		}
	}
	return out
}

// Report is a rendered experiment result.
type Report struct {
	ID    string
	Title string
	Text  string
}

func (r Report) String() string { return r.Text }

// ExpFunc runs one experiment.
type ExpFunc func(ExpConfig) (Report, error)

// Experiments returns the registry of reproducible paper artifacts, in
// paper order.
func Experiments() []struct {
	ID  string
	Fn  ExpFunc
	Doc string
} {
	return []struct {
		ID  string
		Fn  ExpFunc
		Doc string
	}{
		{"table1", Table1, "benchmark characterization"},
		{"table2", Table2, "simulated machine configuration"},
		{"fig4", Fig4, "comparing JPP idioms (software & cooperative)"},
		{"fig5", Fig5, "comparing prefetching implementations"},
		{"fig6", Fig6, "bandwidth requirements (L1<->L2 bytes per instruction)"},
		{"fig7", Fig7, "tolerating longer memory latencies (health)"},
		{"costs", Costs, "direct and implicit costs of JPP"},
		{"shootout", Shootout, "cross-prefetcher shootout (every registered engine)"},
		{"mips", Mips, "simulator throughput: per-kernel sim-MIPS vs the growth seed"},
	}
}

// ExperimentByID finds an experiment.
func ExperimentByID(id string) (ExpFunc, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Fn, true
		}
	}
	return nil, false
}

// --- Table 1: benchmark characterization -----------------------------

// Table1 reproduces the paper's benchmark characterization: the share
// of execution time spent stalled on memory, how much of it is due to
// LDS loads, the available miss parallelism, and the structure/idiom
// summary.
func Table1(cfg ExpConfig) (Report, error) {
	benches := cfg.benches()
	specs := make([]Spec, len(benches))
	for i, b := range benches {
		specs[i] = Spec{
			Bench:  b.Name,
			Params: olden.Params{Scheme: core.SchemeNone, Size: cfg.Size},
		}
	}
	items := DecomposeBatch(specs, cfg.Workers)
	if err := firstDecompErr(items); err != nil {
		return Report{}, err
	}
	var rows [][]string
	for i, b := range benches {
		d := items[i].Decomp
		r := d.Full
		memShare := 0.0
		if d.Total > 0 {
			memShare = float64(d.Memory()) / float64(d.Total)
		}
		ldsShare := 0.0
		if m := r.CPU.LDSLoadMiss + r.CPU.OtherMiss; m > 0 {
			ldsShare = float64(r.CPU.LDSLoadMiss) / float64(m)
		}
		idioms := make([]string, len(b.Idioms))
		for j, id := range b.Idioms {
			idioms[j] = id.String()
		}
		rows = append(rows, []string{
			b.Name,
			fmt.Sprintf("%.0f%%", 100*memShare),
			fmt.Sprintf("%.0f%%", 100*ldsShare),
			fmt.Sprintf("%.2f", r.CPU.AvgMissOverlap()),
			fmt.Sprintf("%d", b.Traversals),
			b.Structures,
			strings.Join(idioms, ","),
		})
	}
	text := renderTable("Table 1: benchmark characterization",
		[]string{"bench", "mem-stall", "LDS-miss", "miss-par", "passes", "structures", "idioms"},
		rows)
	return Report{ID: "table1", Title: "Benchmark characterization", Text: text}, nil
}

// --- Table 2: machine configuration ----------------------------------

// Table2 prints the simulated machine configuration actually used,
// mirroring the paper's Table 2.
func Table2(ExpConfig) (Report, error) {
	m := cache.Defaults()
	c := cpu.Defaults()
	d := dbp.Defaults()
	h := core.DefaultHWConfig()
	b := bpred.Defaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: simulated machine configuration\n")
	fmt.Fprintf(&sb, "----------------------------------------\n")
	fmt.Fprintf(&sb, "core:   %d-wide fetch/issue/commit, %d-entry window, %d-entry LSQ, %d cache ports\n",
		c.FetchWidth, c.WindowSize, c.LSQSize, c.MemPorts)
	fmt.Fprintf(&sb, "bpred:  %d-entry combined gshare(%d-bit)/bimodal, %d-entry %d-way BTB\n",
		b.Entries, b.HistoryBits, b.BTBEntries, b.BTBAssoc)
	fmt.Fprintf(&sb, "L1I:    %dKB %dB lines %d-way, %d cycle\n",
		m.L1I.SizeBytes>>10, m.L1I.LineBytes, m.L1I.Assoc, m.L1I.LatCycles)
	fmt.Fprintf(&sb, "L1D:    %dKB %dB lines %d-way, %d cycle, %d MSHRs\n",
		m.L1D.SizeBytes>>10, m.L1D.LineBytes, m.L1D.Assoc, m.L1D.LatCycles, m.MSHRs)
	fmt.Fprintf(&sb, "L2:     %dKB %dB lines %d-way, %d cycle (shared)\n",
		m.L2.SizeBytes>>10, m.L2.LineBytes, m.L2.Assoc, m.L2.LatCycles)
	fmt.Fprintf(&sb, "memory: %d cycles; %dB buses at 1/%d and 1/%d core clock\n",
		m.MemLatency, m.ChunkBytes, m.L1L2ChunkCycles, m.MemChunkCycles)
	fmt.Fprintf(&sb, "TLBs:   %d-entry ITLB, %d-entry DTLB, %d-cycle miss, %dB pages\n",
		m.ITLBEntries, m.DTLBEntries, m.TLBMissCycles, m.PageBytes)
	fmt.Fprintf(&sb, "DBP:    %d-entry %d-way dependence predictor, %d queries/cycle,\n"+
		"        %d-entry PRQ, %dKB %d-way prefetch buffer\n",
		d.DPEntries, d.DPAssoc, d.QueriesPerCycle, d.PRQEntries,
		m.PB.SizeBytes>>10, m.PB.Assoc)
	fmt.Fprintf(&sb, "JPP:    %d-entry fully-associative JQT, interval %d, 1 JPR access/cycle\n",
		h.JQTEntries, h.Interval)
	return Report{ID: "table2", Title: "Machine configuration", Text: sb.String()}, nil
}

// --- Figure 4: comparing idioms --------------------------------------

// fig4Matrix lists which idioms Figure 4 evaluates per benchmark.
var fig4Matrix = []struct {
	Bench  string
	Idioms []core.Idiom
}{
	{"em3d", []core.Idiom{core.IdiomQueue, core.IdiomFull}},
	{"health", []core.Idiom{core.IdiomChain, core.IdiomRoot, core.IdiomQueue, core.IdiomFull}},
	{"mst", []core.Idiom{core.IdiomRoot, core.IdiomQueue}},
	{"treeadd", []core.Idiom{core.IdiomQueue}},
}

// Fig4 reproduces the idiom comparison: for each benchmark with more
// than one applicable idiom, software and cooperative execution times
// per idiom, normalized to the unoptimized run.
func Fig4(cfg ExpConfig) (Report, error) {
	// Declare the whole spec set up front: per benchmark, the baseline
	// followed by every scheme/idiom variant, flattened in render order.
	type entry struct {
		bench  string
		labels []string
	}
	var (
		entries []entry
		specs   []Spec
	)
	for _, ent := range fig4Matrix {
		if len(cfg.Benches) > 0 && !containsStr(cfg.Benches, ent.Bench) {
			continue
		}
		e := entry{bench: ent.Bench, labels: []string{"none"}}
		specs = append(specs, Spec{
			Bench:  ent.Bench,
			Params: olden.Params{Scheme: core.SchemeNone, Size: cfg.Size},
		})
		for _, idiom := range ent.Idioms {
			for _, scheme := range []core.Scheme{core.SchemeSoftware, core.SchemeCooperative} {
				e.labels = append(e.labels, scheme.String()+"/"+idiom.String())
				specs = append(specs, Spec{
					Bench: ent.Bench,
					Params: olden.Params{
						Scheme: scheme, Idiom: idiom, Size: cfg.Size,
					},
				})
			}
		}
		entries = append(entries, e)
	}
	items := DecomposeBatch(specs, cfg.Workers)
	if err := firstDecompErr(items); err != nil {
		return Report{}, err
	}
	var groups []BarGroup
	next := 0
	for _, e := range entries {
		base := items[next].Decomp
		g := BarGroup{Label: e.bench}
		for _, label := range e.labels {
			g.Bars = append(g.Bars, barFromDecomp(label, items[next].Decomp, base.Total))
			next++
		}
		groups = append(groups, g)
	}
	text := renderBars("Figure 4: comparing JPP idioms (normalized execution time)", groups)
	return Report{ID: "fig4", Title: "Comparing idioms", Text: text}, nil
}

// --- Figure 5: comparing implementations ------------------------------

// Fig5 reproduces the implementation comparison: every benchmark under
// none/DBP/software/cooperative/hardware, normalized execution time
// decomposed into compute and memory stall.
func Fig5(cfg ExpConfig) (Report, error) {
	groups, _, err := fig5Data(cfg)
	if err != nil {
		return Report{}, err
	}
	text := renderBars("Figure 5: comparing prefetching implementations (normalized execution time)", groups)
	text += fig5Summary(groups)
	return Report{ID: "fig5", Title: "Comparing implementations", Text: text}, nil
}

func fig5Data(cfg ExpConfig) ([]BarGroup, map[string]map[string]Result, error) {
	benches := cfg.benches()
	schemes := core.Schemes()
	specs := make([]Spec, 0, len(benches)*len(schemes))
	for _, b := range benches {
		for _, scheme := range schemes {
			specs = append(specs, Spec{
				Bench:  b.Name,
				Params: olden.Params{Scheme: scheme, Size: cfg.Size},
			})
		}
	}
	items := DecomposeBatch(specs, cfg.Workers)
	if err := firstDecompErr(items); err != nil {
		return nil, nil, err
	}
	results := map[string]map[string]Result{}
	var groups []BarGroup
	for bi, b := range benches {
		row := items[bi*len(schemes) : (bi+1)*len(schemes)]
		// Capture the baseline explicitly before building any bar, so
		// normalization never depends on scheme iteration order.
		var baseline uint64
		for si, scheme := range schemes {
			if scheme == core.SchemeNone {
				baseline = row[si].Decomp.Total
			}
		}
		g := BarGroup{Label: b.Name}
		results[b.Name] = map[string]Result{}
		for si, scheme := range schemes {
			d := row[si].Decomp
			results[b.Name][scheme.String()] = d.Full
			g.Bars = append(g.Bars, barFromDecomp(scheme.String(), d, baseline))
		}
		groups = append(groups, g)
	}
	return groups, results, nil
}

// fig5Summary computes the paper's headline averages over the
// benchmarks with appreciable memory components (the paper disregards
// bh, bisort, power, tsp and voronoi).
func fig5Summary(groups []BarGroup) string {
	excluded := map[string]bool{
		"bh": true, "bisort": true, "power": true, "tsp": true, "voronoi": true,
	}
	type agg struct {
		speedup float64
		memCut  float64
		n       int
	}
	sums := map[string]*agg{}
	for _, g := range groups {
		if excluded[g.Label] || len(g.Bars) == 0 {
			continue
		}
		base := g.Bars[0]
		for _, b := range g.Bars[1:] {
			if b.Norm <= 0 {
				continue
			}
			a := sums[b.Label]
			if a == nil {
				a = &agg{}
				sums[b.Label] = a
			}
			a.speedup += 1/b.Norm - 1
			if base.Memory > 0 {
				a.memCut += 1 - float64(b.Memory)/float64(base.Memory)
			}
			a.n++
		}
	}
	var keys []string
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("\naverages over memory-bound benchmarks (excl. bh, bisort, power, tsp, voronoi):\n")
	for _, k := range keys {
		a := sums[k]
		fmt.Fprintf(&sb, "  %-5s speedup %+5.0f%%   memory stall cut %5.0f%%\n",
			k, 100*a.speedup/float64(a.n), 100*a.memCut/float64(a.n))
	}
	return sb.String()
}

// --- Figure 6: bandwidth requirements ---------------------------------

// Fig6 reproduces the bandwidth comparison: bytes moved between the L1
// and L2 data caches per original-program dynamic instruction
// (instructions added by the prefetching transformations are not
// counted, as in the paper).
func Fig6(cfg ExpConfig) (Report, error) {
	benches := cfg.benches()
	schemes := core.Schemes()
	header := []string{"bench"}
	for _, s := range schemes {
		header = append(header, s.String())
	}
	specs := make([]Spec, 0, len(benches)*len(schemes))
	for _, b := range benches {
		for _, scheme := range schemes {
			specs = append(specs, Spec{
				Bench:  b.Name,
				Params: olden.Params{Scheme: scheme, Size: cfg.Size},
			})
		}
	}
	runs := RunBatch(specs, cfg.Workers)
	if err := firstErr(runs); err != nil {
		return Report{}, err
	}
	bytesPerInst := func(r Result) float64 {
		if r.Insts.OrigInsts == 0 {
			return 0
		}
		return float64(r.Cache.L1L2Bytes) / float64(r.Insts.OrigInsts)
	}
	var rows [][]string
	ratios := map[string][]float64{}
	for bi, b := range benches {
		row := runs[bi*len(schemes) : (bi+1)*len(schemes)]
		var base float64
		for si, scheme := range schemes {
			if scheme == core.SchemeNone {
				base = bytesPerInst(row[si].Result)
			}
		}
		cells := []string{b.Name}
		for si, scheme := range schemes {
			bpi := bytesPerInst(row[si].Result)
			if base > 0 {
				ratios[scheme.String()] = append(ratios[scheme.String()], bpi/base)
			}
			cells = append(cells, fmt.Sprintf("%.2f", bpi))
		}
		rows = append(rows, cells)
	}
	text := renderTable("Figure 6: L1<->L2 bytes moved per original dynamic instruction",
		header, rows)
	text += "\naverage traffic increase over unoptimized:\n"
	for _, s := range schemes[1:] {
		rs := ratios[s.String()]
		sum := 0.0
		for _, v := range rs {
			sum += v
		}
		if len(rs) > 0 {
			text += fmt.Sprintf("  %-5s %+.0f%%\n", s.String(), 100*(sum/float64(len(rs))-1))
		}
	}
	return Report{ID: "fig6", Title: "Bandwidth requirements", Text: text}, nil
}

// --- Figure 7: tolerating longer latencies ----------------------------

// Fig7 reproduces the latency-scaling study on health: memory latencies
// of 70 and 280 cycles, jump-pointer intervals of 8 and 16.  Bars are
// normalized to the unoptimized run at the same latency.
func Fig7(cfg ExpConfig) (Report, error) {
	type entry struct {
		group  string
		labels []string
	}
	var (
		entries []entry
		specs   []Spec
	)
	for _, lat := range []int{70, 280} {
		memP := defaultsWithLatency(lat)
		e := entry{group: fmt.Sprintf("lat=%d", lat), labels: []string{"none", "dbp"}}
		specs = append(specs, Spec{
			Bench:  "health",
			Params: olden.Params{Scheme: core.SchemeNone, Size: cfg.Size},
			Mem:    &memP,
		}, Spec{
			Bench:  "health",
			Params: olden.Params{Scheme: core.SchemeDBP, Size: cfg.Size},
			Mem:    &memP,
		})
		for _, scheme := range []core.Scheme{core.SchemeSoftware, core.SchemeCooperative, core.SchemeHardware} {
			for _, interval := range []int{8, 16} {
				e.labels = append(e.labels, fmt.Sprintf("%s/i%d", scheme, interval))
				specs = append(specs, Spec{
					Bench: "health",
					Params: olden.Params{
						Scheme: scheme, Size: cfg.Size, Interval: interval,
					},
					Mem: &memP,
				})
			}
		}
		entries = append(entries, e)
	}
	items := DecomposeBatch(specs, cfg.Workers)
	if err := firstDecompErr(items); err != nil {
		return Report{}, err
	}
	var groups []BarGroup
	next := 0
	for _, e := range entries {
		base := items[next].Decomp
		g := BarGroup{Label: e.group}
		for _, label := range e.labels {
			g.Bars = append(g.Bars, barFromDecomp(label, items[next].Decomp, base.Total))
			next++
		}
		groups = append(groups, g)
	}
	text := renderBars("Figure 7: health under longer memory latencies (normalized per latency)", groups)
	return Report{ID: "fig7", Title: "Tolerating longer latencies", Text: text}, nil
}

// --- Costs table -------------------------------------------------------

// Costs quantifies the direct and implicit costs of the software and
// cooperative implementations (paper §4.2-4.3): overhead instruction
// share, the a-priori slowdown of jump-pointer creation alone, and the
// data-footprint change in distinct cache blocks.
func Costs(cfg ExpConfig) (Report, error) {
	benches := []string{"health", "em3d", "treeadd", "mst"}
	if len(cfg.Benches) > 0 {
		benches = cfg.Benches
	}
	// Four runs per benchmark, flattened in this order.
	const (
		runBase = iota
		runSW
		runCreation
		runCoop
		runsPerBench
	)
	specs := make([]Spec, 0, len(benches)*runsPerBench)
	for _, name := range benches {
		specs = append(specs, Spec{
			Bench:  name,
			Params: olden.Params{Scheme: core.SchemeNone, Size: cfg.Size},
		}, Spec{
			Bench:  name,
			Params: olden.Params{Scheme: core.SchemeSoftware, Size: cfg.Size},
		}, Spec{
			Bench: name,
			Params: olden.Params{
				Scheme: core.SchemeSoftware, Size: cfg.Size, CreationOnly: true,
			},
		}, Spec{
			Bench:  name,
			Params: olden.Params{Scheme: core.SchemeCooperative, Size: cfg.Size},
		})
	}
	runs := RunBatch(specs, cfg.Workers)
	if err := firstErr(runs); err != nil {
		return Report{}, err
	}
	var rows [][]string
	for bi, name := range benches {
		row := runs[bi*runsPerBench : (bi+1)*runsPerBench]
		base := row[runBase].Result
		sw := row[runSW].Result
		creation := row[runCreation].Result
		coop := row[runCoop].Result
		instOv := func(r Result) string {
			return fmt.Sprintf("%.0f%%", 100*float64(r.Insts.OvhdInsts)/float64(r.Insts.OrigInsts))
		}
		apriori := float64(creation.CPU.Cycles)/float64(base.CPU.Cycles) - 1
		blocks := float64(sw.Cache.DistinctL1Lines)/float64(base.Cache.DistinctL1Lines) - 1
		rows = append(rows, []string{
			name,
			instOv(sw),
			instOv(coop),
			fmt.Sprintf("%+.0f%%", 100*apriori),
			fmt.Sprintf("%+.0f%%", 100*blocks),
		})
	}
	text := renderTable("JPP costs: instruction overhead, creation-only slowdown, footprint",
		[]string{"bench", "sw-inst-ovh", "coop-inst-ovh", "a-priori-creation", "distinct-blocks"},
		rows)
	return Report{ID: "costs", Title: "JPP costs", Text: text}, nil
}

// --- Prefetcher shootout ----------------------------------------------

// Shootout compares every registered prefetch engine head to head on
// unmodified (scheme-none) kernels: speedup over no prefetching plus
// the coverage/accuracy/timeliness triple and issue volume from the
// stats layer.  It makes the paper's related-work comparison — jump
// pointers against dependence-based, stride and correlation
// prefetching — reproducible from the same harness (the registry built
// for it also backs `jppsim -engine`).
func Shootout(cfg ExpConfig) (Report, error) {
	benches := cfg.benches()
	engines := prefetch.Names()
	// Per benchmark: the engineless baseline first, then every engine,
	// flattened in render order.
	perBench := 1 + len(engines)
	specs := make([]Spec, 0, len(benches)*perBench)
	for _, b := range benches {
		specs = append(specs, Spec{
			Bench:  b.Name,
			Params: olden.Params{Scheme: core.SchemeNone, Size: cfg.Size},
		})
		for _, eng := range engines {
			specs = append(specs, Spec{
				Bench:  b.Name,
				Engine: eng,
				Params: olden.Params{Scheme: core.SchemeNone, Size: cfg.Size},
			})
		}
	}
	runs := RunBatch(specs, cfg.Workers)
	if err := firstErr(runs); err != nil {
		return Report{}, err
	}
	var rows [][]string
	for bi, b := range benches {
		row := runs[bi*perBench : (bi+1)*perBench]
		base := row[0].Result.CPU.Cycles
		for ei, eng := range engines {
			r := row[1+ei].Result
			speedup := 0.0
			if r.CPU.Cycles > 0 {
				speedup = float64(base)/float64(r.CPU.Cycles) - 1
			}
			p := r.Stats.Prefetch
			rows = append(rows, []string{
				b.Name,
				eng,
				fmt.Sprintf("%d", r.CPU.Cycles),
				fmt.Sprintf("%+.0f%%", 100*speedup),
				fmt.Sprintf("%d", p.Issued),
				fmt.Sprintf("%.2f", p.Derived.Coverage),
				fmt.Sprintf("%.2f", p.Derived.Accuracy),
				fmt.Sprintf("%.2f", p.Derived.Timeliness),
			})
		}
	}
	text := renderTable("Prefetcher shootout: registry engines on unmodified kernels",
		[]string{"bench", "engine", "cycles", "speedup", "issued", "cov", "acc", "timely"},
		rows)
	return Report{ID: "shootout", Title: "Prefetcher shootout", Text: text}, nil
}

// --- Simulator throughput ---------------------------------------------

// seedSimMIPS is the per-kernel simulator throughput of the growth
// seed, measured with the BenchmarkCore protocol (small inputs,
// cooperative JPP, best of 3 interleaved runs on the benchmarking box)
// before any of the simulator-speed work landed.  It anchors the
// "vs seed" column of the mips experiment; the numbers match the
// "before" column of README.md's simulator-performance table.
var seedSimMIPS = map[string]float64{
	"bh": 3.16, "bisort": 4.26, "btree": 3.30, "em3d": 2.56,
	"health": 2.34, "mst": 1.69, "perimeter": 3.33, "power": 1.25,
	"spmv": 3.85, "treeadd": 2.08, "tsp": 3.89, "voronoi": 5.06,
}

// Mips renders the simulator-throughput table from the committed
// benchmark document (BENCH_jpp.json): per kernel, the simulated-MIPS
// of every scheme's run, the kernel's geomean across schemes, and —
// where the growth seed was benchmarked on that kernel — the multiple
// over the seed's throughput.  The document's runs execute in a batch
// that shares host cores, so absolute numbers understate the serial
// BenchmarkCore figures; the vs-seed multiples are therefore a floor,
// not a like-for-like comparison.
func Mips(cfg ExpConfig) (Report, error) {
	path := cfg.BenchJSON
	if path == "" {
		path = "BENCH_jpp.json"
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("mips: %w", err)
	}
	var doc struct {
		Size           string                        `json:"size"`
		Snapshots      []stats.Snapshot              `json:"snapshots"`
		SimMIPS        map[string]map[string]float64 `json:"sim_mips"`
		SimMIPSGeomean float64                       `json:"sim_mips_geomean"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return Report{}, fmt.Errorf("mips: %s: %w", path, err)
	}
	if len(doc.SimMIPS) == 0 {
		return Report{}, fmt.Errorf("mips: %s has no sim_mips section", path)
	}

	// Per-kernel replay hit rate, averaged over the runs that carried a
	// replay section, keyed like the sim_mips maps (bench, or bench@size
	// for the off-primary-size sweeps).
	hitSum := make(map[string]float64)
	hitN := make(map[string]int)
	for _, s := range doc.Snapshots {
		if s.Replay == nil {
			continue
		}
		key := s.Bench
		if s.Size != doc.Size {
			key += "@" + s.Size
		}
		hitSum[key] += s.Replay.HitRate
		hitN[key]++
	}

	schemes := core.Schemes()
	header := []string{"kernel"}
	for _, s := range schemes {
		header = append(header, s.String())
	}
	header = append(header, "geomean", "vs-seed", "replay-hit")

	var keys []string
	for k := range doc.SimMIPS {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var rows [][]string
	logSum, logN := 0.0, 0
	for _, k := range keys {
		row := []string{k}
		perScheme := doc.SimMIPS[k]
		kLogSum, kN := 0.0, 0
		for _, s := range schemes {
			v, ok := perScheme[s.String()]
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", v))
			kLogSum += math.Log(v)
			kN++
		}
		if kN == 0 {
			continue
		}
		kGeo := math.Exp(kLogSum / float64(kN))
		row = append(row, fmt.Sprintf("%.2f", kGeo))
		// The large-input sweep keys are bench@size; the seed table is
		// keyed by bare kernel name, so those rows get no multiple.
		if seed, ok := seedSimMIPS[k]; ok {
			row = append(row, fmt.Sprintf("%.2fx", kGeo/seed))
		} else {
			row = append(row, "-")
		}
		if n := hitN[k]; n > 0 {
			row = append(row, fmt.Sprintf("%.2f", hitSum[k]/float64(n)))
		} else {
			row = append(row, "-")
		}
		rows = append(rows, row)
		logSum += math.Log(kGeo)
		logN++
	}
	if logN == 0 {
		return Report{}, fmt.Errorf("mips: %s sim_mips section is empty", path)
	}

	seedLogSum := 0.0
	for _, v := range seedSimMIPS {
		seedLogSum += math.Log(v)
	}
	seedGeo := math.Exp(seedLogSum / float64(len(seedSimMIPS)))

	text := renderTable("Simulator throughput: simulated MIPS per kernel (from "+path+")",
		header, rows)
	text += fmt.Sprintf("\nsuite geomean %.2f sim-MIPS (document: %.2f); seed geomean %.2f => %.2fx over seed\n"+
		"(document runs share host cores; serial BenchmarkCore runs faster)\n",
		math.Exp(logSum/float64(logN)), doc.SimMIPSGeomean, seedGeo,
		math.Exp(logSum/float64(logN))/seedGeo)
	return Report{ID: "mips", Title: "Simulator throughput", Text: text}, nil
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
