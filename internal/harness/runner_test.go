package harness

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/olden"
)

func testSpec(bench string, scheme core.Scheme) Spec {
	return Spec{
		Bench:  bench,
		Params: olden.Params{Scheme: scheme, Size: olden.SizeTest},
	}
}

func TestRunBatchMatchesRun(t *testing.T) {
	specs := []Spec{
		testSpec("health", core.SchemeNone),
		testSpec("health", core.SchemeCooperative),
		testSpec("treeadd", core.SchemeSoftware),
		testSpec("mst", core.SchemeDBP),
	}
	items := RunBatch(specs, 0)
	if len(items) != len(specs) {
		t.Fatalf("got %d items for %d specs", len(items), len(specs))
	}
	for i, spec := range specs {
		want, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if items[i].Err != nil {
			t.Fatalf("slot %d: %v", i, items[i].Err)
		}
		got := items[i].Result
		if got.Spec.Bench != spec.Bench {
			t.Errorf("slot %d: result for %q, want %q (ordering broken)",
				i, got.Spec.Bench, spec.Bench)
		}
		if got.CPU.Cycles != want.CPU.Cycles || got.Cache.L1DMisses != want.Cache.L1DMisses {
			t.Errorf("slot %d (%s/%v): batch %d cycles, serial %d",
				i, spec.Bench, spec.Params.Scheme, got.CPU.Cycles, want.CPU.Cycles)
		}
	}
}

func TestRunBatchCapturesErrorsPerSlot(t *testing.T) {
	specs := []Spec{
		testSpec("health", core.SchemeNone),
		testSpec("no-such-bench", core.SchemeNone),
		testSpec("treeadd", core.SchemeNone),
	}
	items := RunBatch(specs, 2)
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("good specs errored: %v / %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Fatal("bad spec did not error")
	}
	if items[0].Result.CPU.Cycles == 0 || items[2].Result.CPU.Cycles == 0 {
		t.Fatal("a failed spec starved its batch neighbours")
	}
	if err := firstErr(items); err == nil {
		t.Fatal("firstErr missed the captured error")
	}
}

func TestRunBatchEmptyAndWorkerClamping(t *testing.T) {
	if items := RunBatch(nil, 4); len(items) != 0 {
		t.Fatalf("empty batch returned %d items", len(items))
	}
	// More workers than jobs, and negative workers, must both work.
	for _, workers := range []int{-1, 1, 64} {
		items := RunBatch([]Spec{testSpec("health", core.SchemeNone)}, workers)
		if items[0].Err != nil || items[0].Result.CPU.Cycles == 0 {
			t.Fatalf("workers=%d: %+v", workers, items[0].Err)
		}
	}
}

func TestDecomposeBatchMatchesDecompose(t *testing.T) {
	specs := []Spec{
		testSpec("health", core.SchemeNone),
		testSpec("treeadd", core.SchemeCooperative),
	}
	items := DecomposeBatch(specs, 0)
	if err := firstDecompErr(items); err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		want, err := Decompose(spec)
		if err != nil {
			t.Fatal(err)
		}
		got := items[i].Decomp
		if got.Total != want.Total || got.Compute != want.Compute {
			t.Errorf("slot %d: batch total=%d compute=%d, serial total=%d compute=%d",
				i, got.Total, got.Compute, want.Total, want.Compute)
		}
	}
}

func TestDecomposeBatchCapturesErrors(t *testing.T) {
	items := DecomposeBatch([]Spec{
		testSpec("nope", core.SchemeNone),
		testSpec("health", core.SchemeNone),
	}, 0)
	if items[0].Err == nil {
		t.Fatal("bad spec did not error")
	}
	if items[1].Err != nil {
		t.Fatalf("good spec errored: %v", items[1].Err)
	}
	if firstDecompErr(items) == nil {
		t.Fatal("firstDecompErr missed the captured error")
	}
}

// panicSpec injects a kernel that emits some real work and then
// panics mid-emission — the failure mode of a buggy workload or a
// wedged configuration tripping an internal invariant.
func panicSpec() Spec {
	return Spec{
		Bench:  "panicky",
		Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
		Kernel: func(a *ir.Asm) {
			for i := 0; i < 100; i++ {
				a.Op(ir.FirstUserSite, ir.IntAlu, 1, ir.Imm(1), ir.Val{})
			}
			panic("injected kernel panic")
		},
	}
}

// TestRunBatchIsolatesPanics pins the fault-isolation contract: a
// panicking simulation becomes that slot's error, and the neighbouring
// slots still complete, under both the serial and parallel batch paths.
func TestRunBatchIsolatesPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		specs := []Spec{
			testSpec("health", core.SchemeNone),
			panicSpec(),
			testSpec("mst", core.SchemeNone),
		}
		items := RunBatch(specs, workers)
		if items[1].Err == nil || !strings.Contains(items[1].Err.Error(), "injected kernel panic") {
			t.Fatalf("workers=%d: panic slot error = %v, want the recovered panic", workers, items[1].Err)
		}
		for _, i := range []int{0, 2} {
			if items[i].Err != nil {
				t.Errorf("workers=%d: slot %d errored: %v", workers, i, items[i].Err)
			}
			if items[i].Result.CPU.Cycles == 0 {
				t.Errorf("workers=%d: slot %d did not run", workers, i)
			}
		}
	}
}

// RunGuarded without a timeout still converts panics to errors.
func TestRunGuardedRecoversPanic(t *testing.T) {
	_, err := RunGuarded(panicSpec())
	if err == nil || !strings.Contains(err.Error(), "injected kernel panic") {
		t.Fatalf("RunGuarded = %v, want recovered panic", err)
	}
}

// TestRunGuardedDeadline wedges a run (a workload far too large for its
// 1ms deadline) and checks it is abandoned and reported as ErrDeadline.
// The spec also sets CPU.MaxCycles, the documented hard backstop, so
// the abandoned goroutine terminates on its own instead of simulating
// the full workload in the background.
func TestRunGuardedDeadline(t *testing.T) {
	cc := cpu.Defaults()
	cc.MaxCycles = 2_000_000
	spec := Spec{
		Bench:  "wedge",
		Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
		Kernel: func(a *ir.Asm) {
			for i := 0; i < 20_000_000; i++ {
				a.Op(ir.FirstUserSite, ir.IntAlu, uint32(i), ir.Imm(1), ir.Val{})
			}
		},
		Timeout: time.Millisecond,
		CPU:     &cc,
	}
	_, err := RunGuarded(spec)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("RunGuarded = %v, want ErrDeadline", err)
	}
}

// TestAwaitRunPrefersOutcomeOverDeadline pins the double-error path: a
// run that finishes (here: with a recovered panic) in the same
// scheduling window its deadline expires must be reported as itself,
// not as ErrDeadline.  Before awaitRun re-checked the outcome channel,
// the bare select chose between the two ready cases at random, so this
// failed roughly half the iterations.
func TestAwaitRunPrefersOutcomeOverDeadline(t *testing.T) {
	spec := Spec{Bench: "double", Timeout: time.Millisecond}
	panicErr := errors.New("recovered kernel panic")
	for i := 0; i < 200; i++ {
		ch := make(chan outcome, 1)
		ch <- outcome{err: panicErr}
		fired := make(chan time.Time)
		close(fired) // the deadline arm is permanently ready
		_, err := awaitRun(spec, ch, fired)
		if !errors.Is(err, panicErr) {
			t.Fatalf("iteration %d: awaitRun = %v, want the run's own error %v", i, err, panicErr)
		}
	}
}

// TestRunBatchPanicAfterDeadline combines the two fault-isolation
// mechanisms end to end: a kernel that wedges past its deadline and
// then panics.  The slot must report ErrDeadline (the deadline fired
// first), the neighbouring slots must complete, and the late panic in
// the abandoned goroutine must be recovered rather than killing the
// process.
func TestRunBatchPanicAfterDeadline(t *testing.T) {
	gate := make(chan struct{})
	unwound := make(chan struct{})
	late := Spec{
		Bench:  "latepanic",
		Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
		Kernel: func(a *ir.Asm) {
			a.Op(ir.FirstUserSite, ir.IntAlu, 1, ir.Imm(1), ir.Val{})
			defer close(unwound)
			<-gate
			panic("panic after deadline expiry")
		},
		Timeout: time.Millisecond,
	}
	items := RunBatch([]Spec{
		testSpec("health", core.SchemeNone),
		late,
		testSpec("mst", core.SchemeNone),
	}, 3)
	if !errors.Is(items[1].Err, ErrDeadline) {
		t.Fatalf("late-panic slot error = %v, want ErrDeadline", items[1].Err)
	}
	for _, i := range []int{0, 2} {
		if items[i].Err != nil {
			t.Errorf("slot %d errored: %v", i, items[i].Err)
		}
	}
	// Release the abandoned run so it panics now, after its slot was
	// already settled as a deadline overrun.  The recovery chain (kernel
	// goroutine -> generator -> runRecover) must swallow it; if it does
	// not, the unrecovered panic crashes the test process.
	close(gate)
	<-unwound
	time.Sleep(50 * time.Millisecond)
}

// Spec.Kernel runs instead of the registry benchmark, and the run
// produces real architectural state.
func TestRunCustomKernel(t *testing.T) {
	spec := Spec{
		Bench:  "custom",
		Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
		Kernel: func(a *ir.Asm) {
			p := a.Malloc(16)
			a.Store(ir.FirstUserSite, p, 0, ir.Imm(0xabcd))
		},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Insts == 0 || res.CPU.Cycles == 0 {
		t.Fatalf("custom kernel did not run: %+v", res.CPU)
	}
	if res.Heap.Allocs() != 1 {
		t.Fatalf("custom kernel allocations = %d, want 1", res.Heap.Allocs())
	}
}

// TestParallelSerialIdenticalReports is the determinism contract of the
// batch runner: every experiment driver must produce byte-identical
// report text whether its simulations run serially or on every host
// core.  Each Run builds a fresh mem.Image and cache.Hierarchy, so any
// divergence here is a shared-state bug.
func TestParallelSerialIdenticalReports(t *testing.T) {
	parallel := runtime.GOMAXPROCS(0)
	if parallel < 2 {
		parallel = 4
	}
	benchDoc := testBenchDoc(t)
	for _, e := range Experiments() {
		serialCfg := ExpConfig{Size: olden.SizeTest, Workers: 1, BenchJSON: benchDoc}
		parallelCfg := ExpConfig{Size: olden.SizeTest, Workers: parallel, BenchJSON: benchDoc}
		serial, err := e.Fn(serialCfg)
		if err != nil {
			t.Fatalf("%s serial: %v", e.ID, err)
		}
		par, err := e.Fn(parallelCfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", e.ID, err)
		}
		if serial.Text == "" {
			t.Errorf("%s: empty report", e.ID)
		}
		if serial.Text != par.Text {
			t.Errorf("%s: parallel (j=%d) report differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				e.ID, parallel, serial.Text, par.Text)
		}
	}
}
