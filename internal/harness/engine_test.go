package harness

import (
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/olden"
	"repro/internal/prefetch"
)

// TestEngineRegistrySelection covers the registry wiring in Run: scheme
// defaults resolve through prefetch.DefaultFor, explicit Spec.Engine
// overrides them, unknown names error, and perfect-memory runs never
// attach an engine.
func TestEngineRegistrySelection(t *testing.T) {
	for _, c := range []struct {
		scheme core.Scheme
		want   string
	}{
		{core.SchemeNone, ""},
		{core.SchemeSoftware, ""},
		{core.SchemeDBP, "dbp"},
		{core.SchemeCooperative, "dbp"},
		{core.SchemeHardware, "hw"},
	} {
		res, err := Run(Spec{
			Bench:  "health",
			Params: olden.Params{Scheme: c.scheme, Size: olden.SizeTest},
		})
		if err != nil {
			t.Fatalf("%v: %v", c.scheme, err)
		}
		if res.EngineName != c.want || res.Stats.Engine != c.want {
			t.Errorf("%v: engine = %q / snapshot %q, want %q",
				c.scheme, res.EngineName, res.Stats.Engine, c.want)
		}
		if (res.PrefEngine != nil) != (c.want != "") {
			t.Errorf("%v: PrefEngine presence mismatches engine name %q", c.scheme, c.want)
		}
	}

	res, err := Run(Spec{
		Bench:  "health",
		Engine: "markov",
		Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineName != "markov" || res.Stats.Engine != "markov" {
		t.Fatalf("override: engine = %q / snapshot %q", res.EngineName, res.Stats.Engine)
	}
	if err := res.Stats.Validate(); err != nil {
		t.Errorf("override snapshot invalid: %v", err)
	}

	if _, err := Run(Spec{
		Bench:  "health",
		Engine: "nonesuch",
		Params: olden.Params{Size: olden.SizeTest},
	}); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("unknown engine: err = %v", err)
	}

	perfect, err := Run(perfectSpec(Spec{
		Bench:  "health",
		Engine: "stride",
		Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if perfect.EngineName != "" || perfect.PrefEngine != nil {
		t.Errorf("perfect-memory run attached engine %q", perfect.EngineName)
	}
	if !perfect.Stats.PerfectMem {
		t.Error("perfect-memory run not marked in snapshot")
	}
}

// TestEngineIssuedMatchesCacheRequests reconciles the snapshot's
// EngineIssued against the engine's own choke-point counters and the
// tracker identity, for every registered engine.
func TestEngineIssuedMatchesCacheRequests(t *testing.T) {
	for _, name := range prefetch.Names() {
		res, err := Run(Spec{
			Bench:  "health",
			Engine: name,
			Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rq, ok := res.PrefEngine.(prefetch.Requester)
		if !ok {
			t.Fatalf("%s: engine does not implement prefetch.Requester", name)
		}
		issued, dropped := rq.CacheRequests()
		if got := res.Stats.Prefetch.EngineIssued; got != issued+dropped {
			t.Errorf("%s: EngineIssued = %d, want issued %d + dropped %d",
				name, got, issued, dropped)
		}
		if err := res.Stats.Validate(); err != nil {
			t.Errorf("%s: snapshot invalid: %v", name, err)
		}
	}
}

// TestIntervalAffectsEveryEngine is the regression test for the
// interval plumbing bug: Spec.Params.Interval used to override only the
// hardware JQT interval, so the DBP engine (and any registry engine)
// ignored a swept interval.  Now the interval routes through the
// factory config uniformly, so sweeping it must change every engine's
// observable behavior.
func TestIntervalAffectsEveryEngine(t *testing.T) {
	for _, name := range prefetch.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			snap := func(interval int) []byte {
				res, err := Run(Spec{
					Bench:  "health",
					Engine: name,
					Params: olden.Params{
						Scheme:   core.SchemeNone,
						Size:     olden.SizeSmall,
						Interval: interval,
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(res.Stats)
				if err != nil {
					t.Fatal(err)
				}
				return b
			}
			if string(snap(2)) == string(snap(32)) {
				t.Errorf("engine %s: interval 2 and 32 produce identical snapshots", name)
			}
		})
	}
}

// countedKernel is a trivial workload that records how many times it
// was invoked; each Run invokes the kernel exactly once.
func countedKernel(runs *atomic.Int64) func(*ir.Asm) {
	return func(a *ir.Asm) {
		runs.Add(1)
		v := a.Malloc(16)
		a.Store(ir.FirstUserSite, v, 0, ir.Imm(7))
		a.Load(ir.FirstUserSite+1, v, 0, 0)
	}
}

// TestDecomposePerfectRunsOnce is the regression test for the duplicate
// perfect-run bug: a spec that already requests perfect data memory
// used to be simulated twice (identical runs), reporting zero memory
// stall as if measured.  It must run once, with Total == Compute.
func TestDecomposePerfectRunsOnce(t *testing.T) {
	var runs atomic.Int64
	spec := perfectSpec(Spec{
		Bench:  "counted",
		Kernel: countedKernel(&runs),
		Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
	})
	d, err := Decompose(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("perfect spec simulated %d times, want 1", got)
	}
	if d.Total != d.Compute || d.Memory() != 0 {
		t.Errorf("decomposition = %+v, want Total == Compute", d)
	}
	if d.Full.CPU.Cycles != d.Total {
		t.Errorf("Full result cycles %d != Total %d", d.Full.CPU.Cycles, d.Total)
	}
}

// TestDecomposeBatchPerfectRunsOnce covers the same bug in the batch
// flattening path, including slot alignment in a mixed batch.
func TestDecomposeBatchPerfectRunsOnce(t *testing.T) {
	var perfectRuns atomic.Int64
	specs := []Spec{
		{
			Bench:  "health",
			Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
		},
		perfectSpec(Spec{
			Bench:  "counted",
			Kernel: countedKernel(&perfectRuns),
			Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
		}),
		{
			Bench:  "treeadd",
			Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
		},
	}
	items := DecomposeBatch(specs, 2)
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("slot %d: %v", i, it.Err)
		}
	}
	if got := perfectRuns.Load(); got != 1 {
		t.Errorf("perfect spec simulated %d times, want 1", got)
	}
	if d := items[1].Decomp; d.Total != d.Compute {
		t.Errorf("perfect slot: %+v, want Total == Compute", d)
	}
	// Realistic slots still decompose into compute < total-or-equal and
	// keep their identities (slot alignment survived the mixed batch).
	for _, i := range []int{0, 2} {
		d := items[i].Decomp
		if d.Compute == 0 || d.Compute > d.Total {
			t.Errorf("slot %d: bad split %+v", i, d)
		}
		if d.Full.Spec.Bench != specs[i].Bench {
			t.Errorf("slot %d: result for %q, want %q", i, d.Full.Spec.Bench, specs[i].Bench)
		}
	}
}

// TestShootoutReport smoke-tests the cross-prefetcher experiment: every
// registered engine appears in the rendered table.
func TestShootoutReport(t *testing.T) {
	rep, err := Shootout(ExpConfig{Size: olden.SizeTest, Benches: []string{"health"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "shootout" {
		t.Fatalf("report id = %q", rep.ID)
	}
	for _, eng := range prefetch.Names() {
		if !strings.Contains(rep.Text, eng) {
			t.Errorf("shootout table missing engine %q:\n%s", eng, rep.Text)
		}
	}
	for _, col := range []string{"speedup", "cov", "acc", "timely"} {
		if !strings.Contains(rep.Text, col) {
			t.Errorf("shootout table missing column %q", col)
		}
	}
}
