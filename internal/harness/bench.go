package harness

import (
	"repro/internal/kernels"
	"repro/internal/olden"
)

// The harness resolves workload names across both first-class kernel
// families — the Olden suite (internal/olden) and the modern
// pointer-intensive family (internal/kernels) — so jppsim, jppchar,
// jpptrace, jppd and the validation drivers all see one flat namespace.
// Registration enforces that the namespaces never overlap.

// BenchByName resolves a workload name from either family.
func BenchByName(name string) (*olden.Benchmark, bool) {
	if b, ok := olden.ByName(name); ok {
		return b, true
	}
	return kernels.ByName(name)
}

// AllBenches returns every registered workload: the Olden family first,
// then the kernels family, each alphabetical.
func AllBenches() []*olden.Benchmark {
	return append(olden.All(), kernels.All()...)
}

// BenchNames returns the names of every registered workload in
// AllBenches order.
func BenchNames() []string {
	return append(olden.Names(), kernels.Names()...)
}
