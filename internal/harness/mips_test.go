package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testBenchDoc writes a minimal benchmark document for tests that run
// every experiment (the mips driver needs one on disk).
func testBenchDoc(t *testing.T) string {
	t.Helper()
	doc := `{"sim_mips": {"mst": {"none": 4.0}}, "sim_mips_geomean": 4.0}`
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMipsExperiment renders the throughput table from a synthetic
// benchmark document and checks the per-kernel vs-seed multiples and
// the large-input rows (which have no seed reference) come out right.
func TestMipsExperiment(t *testing.T) {
	doc := `{
		"sim_mips": {
			"mst": {"none": 4.0, "coop": 4.0},
			"mst@large": {"none": 3.0}
		},
		"sim_mips_geomean": 3.7
	}`
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Mips(ExpConfig{BenchJSON: path})
	if err != nil {
		t.Fatal(err)
	}
	// mst geomean 4.00, seed 1.69 -> 2.37x; @large row has no seed.
	for _, want := range []string{"2.37x", "mst@large", "vs-seed", "seed geomean 2.86"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("report missing %q:\n%s", want, rep.Text)
		}
	}
	if _, err := Mips(ExpConfig{BenchJSON: filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("missing document did not error")
	}
}
