package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/olden"
)

func TestSmokeHealthAllSchemes(t *testing.T) {
	var base uint64
	for _, scheme := range core.Schemes() {
		res, err := Run(Spec{
			Bench:  "health",
			Params: olden.Params{Scheme: scheme, Size: olden.SizeTest},
		})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if res.CPU.Cycles == 0 || res.CPU.Insts == 0 {
			t.Fatalf("%v: empty run: %+v", scheme, res.CPU)
		}
		if res.CPU.Truncated {
			t.Fatalf("%v: truncated", scheme)
		}
		t.Logf("%-5v cycles=%-8d insts=%-8d ipc=%.2f l1dmiss=%d",
			scheme, res.CPU.Cycles, res.CPU.Insts, res.CPU.IPC(), res.Cache.L1DMisses)
		if scheme == core.SchemeNone {
			base = res.CPU.Cycles
		}
	}
	_ = base
}

func TestSmokeDecompose(t *testing.T) {
	d, err := Decompose(Spec{
		Bench:  "treeadd",
		Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Compute == 0 || d.Compute > d.Total {
		t.Fatalf("bad decomposition: compute=%d total=%d", d.Compute, d.Total)
	}
	t.Logf("treeadd total=%d compute=%d memory=%d", d.Total, d.Compute, d.Memory())
}
