package harness

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Bar is one stacked execution-time bar, the unit of the paper's
// figures: total cycles split into compute and memory-stall portions,
// normalized against a baseline.
type Bar struct {
	Label   string
	Compute uint64
	Memory  uint64
	// Norm is Total/baseline (1.0 = unoptimized).
	Norm float64
}

// Total returns the bar's total cycles.
func (b Bar) Total() uint64 { return b.Compute + b.Memory }

// MemShare returns the memory-stall fraction.
func (b Bar) MemShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.Memory) / float64(t)
}

// BarGroup is a labelled cluster of bars (one benchmark's schemes or
// idioms).
type BarGroup struct {
	Label string
	Bars  []Bar
}

// barFromDecomp builds a normalized bar from a decomposition.
func barFromDecomp(label string, d Decomposition, baseline uint64) Bar {
	return Bar{
		Label:   label,
		Compute: d.Compute,
		Memory:  d.Memory(),
		Norm:    float64(d.Total) / float64(baseline),
	}
}

// renderBars draws bar groups as a text chart: '#' is compute, '='
// memory stall, scaled so the baseline (1.0) spans barWidth cells.
func renderBars(title string, groups []BarGroup) string {
	const barWidth = 40
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	for _, g := range groups {
		for i, b := range g.Bars {
			name := ""
			if i == 0 {
				name = g.Label
			}
			total := b.Norm
			comp := 0.0
			if b.Total() > 0 {
				comp = total * float64(b.Compute) / float64(b.Total())
			}
			cCells := int(comp*barWidth + 0.5)
			tCells := int(total*barWidth + 0.5)
			if tCells > 2*barWidth {
				tCells = 2 * barWidth
			}
			if cCells > tCells {
				cCells = tCells
			}
			bar := strings.Repeat("#", cCells) + strings.Repeat("=", tCells-cCells)
			fmt.Fprintf(&sb, "%-10s %-6s |%-*s| %4.2f (mem %2.0f%%)\n",
				name, b.Label, barWidth, bar, b.Norm, 100*b.MemShare())
		}
		sb.WriteString("\n")
	}
	sb.WriteString("legend: # compute time, = memory stall time; 1.00 = unoptimized\n")
	return sb.String()
}

// RenderAttribution draws the Fig. 6-style cycle-attribution and
// prefetch-effectiveness table from stats snapshots (one row per run).
// Cycle categories are shown as percentages of total cycles so the
// memory-stall story is readable across schemes with different totals.
func RenderAttribution(snaps []stats.Snapshot) string {
	pct := func(b stats.CycleBreakdown, c stats.Category) string {
		return fmt.Sprintf("%5.1f", 100*b.Share(c))
	}
	rows := make([][]string, 0, len(snaps))
	for _, s := range snaps {
		p := s.Prefetch
		rows = append(rows, []string{
			s.Bench, s.Scheme,
			fmt.Sprintf("%d", s.Cycles),
			pct(s.CyclesByCategory, stats.CatBusy),
			pct(s.CyclesByCategory, stats.CatFetchStall),
			pct(s.CyclesByCategory, stats.CatWindowFull),
			pct(s.CyclesByCategory, stats.CatLoadMiss),
			pct(s.CyclesByCategory, stats.CatBusContention),
			pct(s.CyclesByCategory, stats.CatOther),
			fmt.Sprintf("%d", p.Issued),
			fmt.Sprintf("%.2f", p.Derived.Coverage),
			fmt.Sprintf("%.2f", p.Derived.Accuracy),
			fmt.Sprintf("%.2f", p.Derived.Timeliness),
		})
	}
	header := []string{
		"bench", "scheme", "cycles",
		"busy%", "fstall%", "wfull%", "ldmiss%", "bus%", "other%",
		"pf", "cov", "acc", "timely",
	}
	return renderTable("Cycle attribution and prefetch effectiveness", header, rows)
}

// renderTable draws rows with aligned columns.
func renderTable(title string, header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}
