package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/olden"
)

func TestRunAllBenchmarksAllSchemes(t *testing.T) {
	for _, b := range AllBenches() {
		for _, scheme := range core.Schemes() {
			res, err := Run(Spec{
				Bench:  b.Name,
				Params: olden.Params{Scheme: scheme, Size: olden.SizeTest},
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", b.Name, scheme, err)
			}
			if res.CPU.Insts == 0 || res.CPU.Cycles == 0 {
				t.Errorf("%s/%v: empty run", b.Name, scheme)
			}
			if res.CPU.Truncated {
				t.Errorf("%s/%v: truncated", b.Name, scheme)
			}
			if scheme.UsesHardware() && res.Engine == nil {
				t.Errorf("%s/%v: missing engine stats", b.Name, scheme)
			}
			if scheme == core.SchemeHardware && res.HW == nil {
				t.Errorf("%s: missing hardware JPP stats", b.Name)
			}
		}
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run(Spec{Bench: "nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	spec := Spec{
		Bench:  "health",
		Params: olden.Params{Scheme: core.SchemeCooperative, Size: olden.SizeTest},
	}
	r1, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CPU.Cycles != r2.CPU.Cycles || r1.Cache.L1DMisses != r2.Cache.L1DMisses {
		t.Fatalf("nondeterministic: %d vs %d cycles", r1.CPU.Cycles, r2.CPU.Cycles)
	}
}

func TestDecomposeInvariants(t *testing.T) {
	for _, b := range []string{"health", "treeadd", "power"} {
		d, err := Decompose(Spec{
			Bench:  b,
			Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
		})
		if err != nil {
			t.Fatal(err)
		}
		if d.Compute == 0 || d.Compute > d.Total {
			t.Errorf("%s: compute=%d total=%d", b, d.Compute, d.Total)
		}
		if d.Memory()+d.Compute != d.Total {
			t.Errorf("%s: decomposition does not sum", b)
		}
	}
}

func TestExperimentsRunAtTestSize(t *testing.T) {
	cfg := ExpConfig{Size: olden.SizeTest, Benches: []string{"health", "treeadd"},
		BenchJSON: testBenchDoc(t)}
	for _, e := range Experiments() {
		rep, err := e.Fn(cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if rep.Text == "" || rep.ID != e.ID {
			t.Errorf("%s: empty or mislabelled report", e.ID)
		}
	}
}

func TestExperimentByID(t *testing.T) {
	if _, ok := ExperimentByID("fig5"); !ok {
		t.Fatal("fig5 missing")
	}
	if _, ok := ExperimentByID("fig9"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestRenderBars(t *testing.T) {
	out := renderBars("Title", []BarGroup{{
		Label: "bench",
		Bars: []Bar{
			{Label: "none", Compute: 30, Memory: 70, Norm: 1.0},
			{Label: "coop", Compute: 30, Memory: 20, Norm: 0.5},
		},
	}})
	for _, want := range []string{"Title", "bench", "none", "coop", "1.00", "0.50", "mem 70%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered chart missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTable(t *testing.T) {
	out := renderTable("T", []string{"a", "bb"}, [][]string{{"x", "y"}, {"long", "z"}})
	if !strings.Contains(out, "long") || !strings.Contains(out, "bb") {
		t.Errorf("table rendering broken:\n%s", out)
	}
}

func TestBarAccessors(t *testing.T) {
	b := Bar{Compute: 25, Memory: 75, Norm: 1}
	if b.Total() != 100 || b.MemShare() != 0.75 {
		t.Fatalf("bar accessors: total=%d share=%f", b.Total(), b.MemShare())
	}
	if (Bar{}).MemShare() != 0 {
		t.Fatal("zero bar MemShare must be 0")
	}
}
