package olden

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// btree is an extension workload (paper §6: "jump-pointer prefetching
// may be generalized to other classes of data structures with
// serialized access idioms, like ... database trees").
//
// It models a B+-tree index: fixed-fanout inner nodes, and leaves
// threaded on a linked list.  The workload interleaves point lookups
// (root-to-leaf descents, data dependent and hard to prefetch — like
// bh's tree walks) with range scans along the leaf chain (a serialized
// backbone that queue jumping prefetches well).  Jump-pointers are
// installed in the leaf-level list only, exactly where the serialized
// access idiom lives.
//
// Leaf layout:   key0..3(0..12) val0..3(16..28) next(32) count(36)
//
//	[jump(40)] = 40 -> class 64
//
// Inner layout:  key0..3(0..12) child0..4(16..32) count(36) = 40 -> 64
const (
	btKeys  = 0
	btVals  = 16
	btNext  = 32
	btCount = 36
	btJump  = 40

	btChild  = 16
	btFanout = 4
)

const (
	btBuild = ir.FirstUserSite + iota*10
	btFind
	btScan
	btIdiom
	btQueue
)

func init() {
	register(&Benchmark{
		Name:        "btree",
		Description: "B+-tree index: point lookups + leaf-chain range scans (extension)",
		Structures:  "fixed-fanout search tree over a linked leaf level",
		Behavior:    "descents are data dependent; scans serialize on the leaf chain",
		Idioms:      []core.Idiom{core.IdiomQueue},
		Traversals:  20,
		Extension:   true,
		Kernel:      btreeKernel,
	})
}

type btreeCfg struct {
	keys   int
	scans  int
	scanLn int
	points int
}

func btreeSizes(s Size) btreeCfg {
	switch s {
	case SizeTest:
		return btreeCfg{keys: 64, scans: 2, scanLn: 8, points: 8}
	case SizeSmall:
		return btreeCfg{keys: 2 << 10, scans: 16, scanLn: 64, points: 128}
	case SizeLarge:
		// ~3x the full index (~1.1MB), twice the L2.
		return btreeCfg{keys: 36 << 10, scans: 192, scanLn: 768, points: 768}
	default:
		// ~4K leaves + splits x 64B + inner levels = ~380KB of index;
		// scans dominate the instruction mix, as in analytic range
		// queries.
		return btreeCfg{keys: 12 << 10, scans: 128, scanLn: 512, points: 512}
	}
}

func btreeKernel(p Params) func(*ir.Asm) {
	cfg := btreeSizes(p.Size)
	idiom := p.swIdiom(core.IdiomQueue)
	coop := p.coop()

	return func(a *ir.Asm) {
		r := newRNG(0x6c62272e)

		// ---- bulk build: sorted keys packed into leaves, inner levels
		// built bottom-up (the classic bulk-load) ----
		keys := make([]uint32, cfg.keys)
		for i := range keys {
			keys[i] = uint32(i*7 + 3)
		}
		var leaves []ir.Val
		leafArena := a.Heap().NewArena()
		for i := 0; i < len(keys); i += btFanout {
			leaf := a.MallocIn(leafArena, 40)
			n := 0
			for j := i; j < i+btFanout && j < len(keys); j++ {
				a.Store(btBuild, leaf, uint32(btKeys+4*n), ir.Imm(keys[j]))
				a.Store(btBuild+1, leaf, uint32(btVals+4*n), ir.Imm(keys[j]*2))
				n++
			}
			a.Store(btBuild+2, leaf, btCount, ir.Imm(uint32(n)))
			if len(leaves) > 0 {
				a.Store(btBuild+3, leaves[len(leaves)-1], btNext, leaf)
			}
			leaves = append(leaves, leaf)
		}

		type innerRef struct {
			node ir.Val
			min  uint32
		}
		level := make([]innerRef, len(leaves))
		for i, l := range leaves {
			level[i] = innerRef{node: l, min: keys[i*btFanout]}
		}
		innerArena := a.Heap().NewArena()
		height := 0
		for len(level) > 1 {
			height++
			var up []innerRef
			for i := 0; i < len(level); i += btFanout + 1 {
				node := a.MallocIn(innerArena, 40)
				n := 0
				for j := i; j < i+btFanout+1 && j < len(level); j++ {
					a.Store(btBuild+4, node, uint32(btChild+4*n), level[j].node)
					if n > 0 {
						a.Store(btBuild+5, node, uint32(btKeys+4*(n-1)), ir.Imm(level[j].min))
					}
					n++
				}
				a.Store(btBuild+6, node, btCount, ir.Imm(uint32(n)))
				up = append(up, innerRef{node: node, min: level[i].min})
			}
			level = up
		}
		root := level[0].node

		// ---- insert churn: split a third of the leaves.  Splits move
		// half a leaf's keys into a freshly allocated block and relink
		// the chain, scattering it in memory — the steady state of a
		// live index, and the reason leaf scans chase pointers.
		splitArena := a.Heap().NewArena()
		for s := 0; s < len(leaves)/3; s++ {
			i := r.intn(len(leaves))
			old := leaves[i]
			nw := a.MallocIn(splitArena, 40)
			// Move the upper half of the keys.
			for k := 0; k < btFanout/2; k++ {
				kv := a.Load(btBuild+7, old, uint32(btKeys+4*(btFanout/2+k)), ir.FLDS)
				a.Store(btBuild+8, nw, uint32(btKeys+4*k), kv)
				vv := a.Load(btBuild+9, old, uint32(btVals+4*(btFanout/2+k)), ir.FLDS)
				a.Store(btBuild+2, nw, uint32(btVals+4*k), vv)
			}
			a.Store(btBuild+2, old, btCount, ir.Imm(btFanout/2))
			a.Store(btBuild+2, nw, btCount, ir.Imm(btFanout/2))
			nx := a.Load(btBuild+7, old, btNext, ir.FLDS)
			a.Store(btBuild+3, nw, btNext, nx)
			a.Store(btBuild+3, old, btNext, nw)
			leaves = append(leaves, nw)
		}

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, btQueue, 0, p.interval(), btJump)
		}

		// descend runs a root-to-leaf point lookup.
		descend := func(key uint32) ir.Val {
			n := root
			for d := 0; d < height; d++ {
				cnt := a.Load(btFind, n, btCount, ir.FLDS)
				slot := 0
				for s := 0; s < int(cnt.U32())-1; s++ {
					k := a.Load(btFind+1, n, uint32(btKeys+4*s), ir.FLDS)
					go_ := key >= k.U32()
					a.Branch(btFind+2, !go_, btFind+3, k, ir.Imm(key))
					if !go_ {
						break
					}
					slot = s + 1
				}
				n = a.Load(btFind+3, n, uint32(btChild+4*slot), ir.FLDS)
			}
			return n
		}

		// rangeScan walks the leaf chain from a starting leaf.
		rangeScan := func(start ir.Val, leavesToScan int) {
			leaf := start
			for i := 0; i < leavesToScan && !leaf.IsNil(); i++ {
				if idiom == core.IdiomQueue {
					if coop && p.prefetchOn() {
						a.Prefetch(btIdiom, leaf, btJump, ir.FJumpChase)
					} else if p.prefetchOn() {
						a.Overhead(func() {
							j := a.Load(btIdiom, leaf, btJump, 0)
							a.Prefetch(btIdiom+1, j, 0, 0)
						})
					}
					queue.Visit(leaf)
				}
				cnt := a.Load(btScan, leaf, btCount, ir.FLDS)
				acc := ir.Val{}
				for s := 0; s < int(cnt.U32()); s++ {
					v := a.Load(btScan+1, leaf, uint32(btVals+4*s), ir.FLDS)
					acc = a.Alu(btScan+2, acc.U32()+v.U32(), acc, v)
				}
				a.StoreGlobal(btScan+3, 0x100, acc)
				nxt := a.Load(btScan+4, leaf, btNext, ir.FLDS)
				a.Branch(btScan+5, i+1 < leavesToScan, btScan, nxt, ir.Val{})
				leaf = nxt
			}
		}

		// ---- the workload: interleaved lookups and scans ----
		// Scan starts are skewed toward a handful of hot ranges, as in
		// real index traffic; rescans of a hot range find the jump
		// pointers installed by the previous scan over it.
		hot := make([]int, 8)
		for i := range hot {
			hot[i] = r.intn(len(leaves))
		}
		for s := 0; s < cfg.scans; s++ {
			for q := 0; q < cfg.points/cfg.scans; q++ {
				descend(keys[r.intn(len(keys))])
			}
			var startIdx int
			if r.intn(4) != 0 {
				startIdx = hot[r.intn(len(hot))]
			} else {
				startIdx = r.intn(len(leaves))
			}
			if queue != nil {
				// A fresh queue per scan: jump pointers never cross scan
				// boundaries into unrelated leaves.
				queue.Reset()
			}
			rangeScan(leaves[startIdx], cfg.scanLn/btFanout)
		}
	}
}
