package olden

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// treeadd sums the values in a balanced binary tree with a recursive
// depth-first walk.  A backbone-only structure: queue jumping is the
// only applicable idiom (Table 1).  The original makes a handful of
// passes; the hardware implementation spends the first pass installing
// jump-pointers and therefore forfeits part of the savings (§4.2).
//
// Node layout: value(0) left(4) right(8) level(12) chksum(16)
// = 20 -> class 32; the jump slot is the padding word at 20.
const (
	taValue = 0
	taLeft  = 4
	taRight = 8
	taJump  = 20
)

const (
	tsBuild = ir.FirstUserSite + iota*8
	tsWalk
	tsIdiom
	tsQueue
)

func init() {
	register(&Benchmark{
		Name:        "treeadd",
		Description: "recursive sum over a balanced binary tree",
		Structures:  "static balanced binary tree",
		Behavior:    "built once, traversed a few times in fixed order",
		Idioms:      []core.Idiom{core.IdiomQueue},
		Traversals:  4,
		Kernel:      treeaddKernel,
	})
}

func treeaddSizes(s Size) (depth, passes int) {
	switch s {
	case SizeTest:
		return 6, 2
	case SizeSmall:
		return 12, 3
	case SizeLarge:
		return 17, 3 // 128K nodes x 32B = 4MB, 8x the L2
	default:
		// 32K nodes x 32B = 1MB: twice the L2, so every sweep misses to
		// memory, as the original's million-node tree does.  The paper
		// makes four passes; three keep simulation time in check while
		// preserving the warmup-vs-steady-state ratio that drives the
		// hardware-vs-software comparison.
		return 15, 3
	}
}

func treeaddKernel(p Params) func(*ir.Asm) {
	depth, passes := treeaddSizes(p.Size)
	idiom := p.swIdiom(core.IdiomQueue)
	coop := p.coop()

	return func(a *ir.Asm) {
		r := newRNG(0xabcdef)

		// ---- build (same recursive order as the traversal) ----
		var build func(d int) ir.Val
		build = func(d int) ir.Val {
			n := a.Malloc(20)
			a.Store(tsBuild, n, taValue, ir.Imm(r.next()%100))
			if d > 1 {
				l := build(d - 1)
				rt := build(d - 1)
				a.Store(tsBuild+1, n, taLeft, l)
				a.Store(tsBuild+2, n, taRight, rt)
			}
			return n
		}
		root := build(depth)

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, tsQueue, 0, p.interval(), taJump)
		}

		// ---- passes ----
		var walk func(n ir.Val) ir.Val
		walk = func(n ir.Val) ir.Val {
			// Prefetch the node queued `interval` visits ago's
			// successor: jump-pointer prefetch at visit.
			if idiom == core.IdiomQueue {
				if coop && p.prefetchOn() {
					a.Prefetch(tsIdiom, n, taJump, ir.FJumpChase)
				} else if p.prefetchOn() {
					a.Overhead(func() {
						j := a.Load(tsIdiom, n, taJump, 0)
						a.Prefetch(tsIdiom+1, j, 0, 0)
					})
				}
				queue.Visit(n)
			}
			sum := a.Load(tsWalk, n, taValue, ir.FLDS)
			l := a.Load(tsWalk+1, n, taLeft, ir.FLDS)
			rt := a.Load(tsWalk+2, n, taRight, ir.FLDS)
			a.Branch(tsWalk+3, l.IsNil(), tsWalk+6, l, ir.Val{})
			if !l.IsNil() {
				a.Push(tsWalk+4, rt)
				a.Call(tsWalk+5, tsWalk)
				ls := walk(l)
				rt = a.Pop(tsWalk + 6)
				a.Call(tsWalk+7, tsWalk)
				rs := walk(rt)
				sum = a.Alu(tsIdiom+2, sum.U32()+ls.U32()+rs.U32(), ls, rs)
			}
			a.Ret(tsIdiom + 3)
			return sum
		}
		total := ir.Val{}
		for pass := 0; pass < passes; pass++ {
			s := walk(root)
			total = a.Alu(tsIdiom+4, total.U32()+s.U32(), total, s)
		}
		a.StoreGlobal(tsIdiom+5, 0x100, total)
	}
}
