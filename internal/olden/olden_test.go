package olden

import (
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"bh", "bisort", "em3d", "health", "mst",
		"perimeter", "power", "treeadd", "tsp", "voronoi"}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("paper suite has %d benchmarks", len(suite))
	}
	for i := range want {
		if suite[i].Name != want[i] {
			t.Fatalf("suite[%d] = %s, want %s", i, suite[i].Name, want[i])
		}
		if suite[i].Extension {
			t.Fatalf("%s wrongly marked as extension", want[i])
		}
	}
	// Extensions exist and are excluded from the paper suite.
	ext := 0
	for _, b := range All() {
		if b.Extension {
			ext++
		}
	}
	if ext != len(All())-len(suite) || ext == 0 {
		t.Fatalf("extension accounting broken: %d extensions, %d total", ext, len(All()))
	}
	for _, b := range All() {
		if b.Kernel == nil || b.Description == "" || b.Structures == "" {
			t.Fatalf("%s: incomplete metadata", b.Name)
		}
		if len(b.Idioms) == 0 {
			t.Fatalf("%s: no idiom characterization", b.Name)
		}
		if b.Traversals <= 0 {
			t.Fatalf("%s: traversal count missing", b.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("health"); !ok {
		t.Fatal("health missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("phantom benchmark")
	}
}

// runKernel drains a kernel and returns its stats.
func runKernel(t *testing.T, b *Benchmark, p Params) ir.Stats {
	t.Helper()
	alloc := heap.New(mem.NewImage())
	g := ir.NewGen(alloc, b.Kernel(p))
	for d := g.Next(); d != nil; d = g.Next() {
	}
	return g.Stats()
}

func TestAllKernelsEmitForAllSchemes(t *testing.T) {
	for _, b := range All() {
		for _, scheme := range core.Schemes() {
			p := Params{Scheme: scheme, Size: SizeTest}
			s := runKernel(t, b, p)
			if s.Total() == 0 {
				t.Errorf("%s/%v: empty stream", b.Name, scheme)
			}
			if s.LDSLoads == 0 {
				t.Errorf("%s/%v: no LDS loads tagged", b.Name, scheme)
			}
		}
	}
}

func TestSchemesPreserveOriginalWork(t *testing.T) {
	// The prefetching transformations add overhead instructions but
	// must not change the original program's instruction stream.
	for _, b := range All() {
		base := runKernel(t, b, Params{Scheme: core.SchemeNone, Size: SizeTest})
		if base.OvhdInsts != 0 {
			t.Errorf("%s: unoptimized run has %d overhead instructions",
				b.Name, base.OvhdInsts)
		}
		for _, scheme := range []core.Scheme{core.SchemeSoftware, core.SchemeCooperative} {
			s := runKernel(t, b, Params{Scheme: scheme, Size: SizeTest})
			if s.OrigInsts != base.OrigInsts {
				t.Errorf("%s/%v: original instructions changed %d -> %d",
					b.Name, scheme, base.OrigInsts, s.OrigInsts)
			}
			if s.OvhdInsts == 0 {
				t.Errorf("%s/%v: no overhead instructions emitted", b.Name, scheme)
			}
		}
		// DBP and hardware leave the code untouched.
		for _, scheme := range []core.Scheme{core.SchemeDBP, core.SchemeHardware} {
			s := runKernel(t, b, Params{Scheme: scheme, Size: SizeTest})
			if s.Total() != base.Total() {
				t.Errorf("%s/%v: instruction count changed", b.Name, scheme)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, b := range All() {
		p := Params{Scheme: core.SchemeCooperative, Size: SizeTest}
		s1 := runKernel(t, b, p)
		s2 := runKernel(t, b, p)
		if s1 != s2 {
			t.Errorf("%s: two identical runs emitted different streams", b.Name)
		}
	}
}

func TestCreationOnlyEmitsNoPrefetches(t *testing.T) {
	for _, b := range All() {
		p := Params{Scheme: core.SchemeSoftware, Size: SizeTest, CreationOnly: true}
		s := runKernel(t, b, p)
		if s.Counts[ir.Prefetch] != 0 {
			t.Errorf("%s: creation-only run emitted %d prefetches",
				b.Name, s.Counts[ir.Prefetch])
		}
	}
}

func TestIdiomVariantsOfHealth(t *testing.T) {
	for _, idiom := range []core.Idiom{core.IdiomQueue, core.IdiomFull, core.IdiomChain, core.IdiomRoot} {
		b, _ := ByName("health")
		p := Params{Scheme: core.SchemeSoftware, Idiom: idiom, Size: SizeTest}
		s := runKernel(t, b, p)
		if s.Counts[ir.Prefetch] == 0 {
			t.Errorf("health/%v emitted no prefetches", idiom)
		}
	}
}

func TestSizesScale(t *testing.T) {
	for _, b := range All() {
		small := runKernel(t, b, Params{Scheme: core.SchemeNone, Size: SizeTest})
		big := runKernel(t, b, Params{Scheme: core.SchemeNone, Size: SizeSmall})
		if big.Total() <= small.Total() {
			t.Errorf("%s: SizeSmall (%d insts) not larger than SizeTest (%d)",
				b.Name, big.Total(), small.Total())
		}
	}
}

func TestDefaultSizeIsFull(t *testing.T) {
	if SizeDefault.String() != "full" {
		t.Fatal("zero-value Size must resolve to the full input")
	}
}

func TestRNGDeterministicAndSpread(t *testing.T) {
	r1, r2 := newRNG(7), newRNG(7)
	buckets := map[int]int{}
	for i := 0; i < 1000; i++ {
		a, b := r1.next(), r2.next()
		if a != b {
			t.Fatal("rng not deterministic")
		}
		buckets[int(a%10)]++
	}
	for d := 0; d < 10; d++ {
		if buckets[d] < 50 {
			t.Fatalf("rng digit %d appeared only %d/1000 times", d, buckets[d])
		}
	}
}
