package olden

import (
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
)

// Tests for the section 6 extension workloads (btree, spmv).

func TestSpmvComputesTheProduct(t *testing.T) {
	b, _ := ByName("spmv")
	for _, scheme := range []core.Scheme{core.SchemeNone, core.SchemeSoftware, core.SchemeHardware} {
		img, _ := runForImage(t, b, Params{Scheme: scheme, Size: SizeTest})
		cfg := spmvSizes(SizeTest)
		// Replay the deterministic build to compute a reference.
		r := newRNG(0x1b873593)
		x := make([]uint32, cfg.rows)
		for i := range x {
			x[i] = r.next() % 100
		}
		type elem struct{ v, col uint32 }
		rows := make([][]elem, cfg.rows)
		for i := range rows {
			for e := 0; e < cfg.nnzPerRow; e++ {
				v := r.next()%50 + 1
				c := uint32(4 * r.intn(cfg.rows))
				// Elements are pushed at the head, so traversal order is
				// reversed; addition is commutative, order is irrelevant.
				rows[i] = append(rows[i], elem{v: v, col: c / 4})
			}
		}
		xBase := uint32(0x2000)
		yBase := xBase + uint32(4*cfg.rows)
		for i := range rows {
			var want uint32
			for _, e := range rows[i] {
				want += e.v * x[e.col]
			}
			got := img.ReadWord(ir.GlobalBase + yBase + uint32(4*i))
			if got != want {
				t.Fatalf("%v: y[%d] = %d, want %d", scheme, i, got, want)
			}
		}
	}
}

func TestBtreeLeafChainComplete(t *testing.T) {
	b, _ := ByName("btree")
	img, _ := runForImage(t, b, Params{Scheme: core.SchemeCooperative, Size: SizeTest})
	cfg := btreeSizes(SizeTest)
	bulkLeaves := (cfg.keys + btFanout - 1) / btFanout
	// Leaves are the first allocations of the first (leaf) arena; the
	// split churn appends more, so the chain is at least the bulk set.
	first := uint32(heap.Base)
	chain := walkList(img, first, btNext, 4*bulkLeaves)
	if len(chain) < bulkLeaves {
		t.Fatalf("leaf chain has %d leaves, want >= %d", len(chain), bulkLeaves)
	}
	// Keys along the chain stay sorted through splits, and leaf counts
	// stay within the fanout.
	last := uint32(0)
	for _, leaf := range chain {
		k := img.ReadWord(leaf + btKeys)
		if k < last {
			t.Fatalf("leaf chain out of order: %d after %d", k, last)
		}
		last = k
		if c := img.ReadWord(leaf + btCount); c == 0 || c > btFanout {
			t.Fatalf("leaf %#x count %d out of range", leaf, c)
		}
	}
}

func TestBtreeJumpPointersLandInLeaves(t *testing.T) {
	b, _ := ByName("btree")
	// A short interval so the tiny test input primes the queue.
	img, alloc := runForImage(t, b, Params{Scheme: core.SchemeSoftware, Size: SizeTest, Interval: 1})
	// Walk the whole leaf chain (bulk leaves + split leaves).
	first := uint32(heap.Base)
	found := 0
	for _, p := range walkList(img, first, btNext, 1<<12) {
		if j := img.ReadWord(p + btJump); j != 0 {
			if !alloc.Contains(j) {
				t.Fatalf("leaf %#x jump pointer %#x dangles", p, j)
			}
			found++
		}
	}
	if found == 0 {
		t.Fatal("range scans installed no jump pointers")
	}
}

func TestExtensionsRunUnderAllSchemes(t *testing.T) {
	for _, name := range []string{"btree", "spmv"} {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if !b.Extension {
			t.Fatalf("%s must be marked as an extension", name)
		}
		for _, scheme := range core.Schemes() {
			s := runKernel(t, b, Params{Scheme: scheme, Size: SizeTest})
			if s.Total() == 0 || s.LDSLoads == 0 {
				t.Errorf("%s/%v: degenerate stream", name, scheme)
			}
		}
	}
}

func TestExtensionsExcludedFromSuite(t *testing.T) {
	for _, b := range Suite() {
		if b.Name == "btree" || b.Name == "spmv" {
			t.Fatalf("extension %s leaked into the paper suite", b.Name)
		}
	}
}

// Ensure runForImage is shared correctly across test files.
var _ = func() *mem.Image { return nil }
