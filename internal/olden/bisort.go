package olden

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// bisort sorts values held in a binary tree with a bitonic merge that
// repeatedly *swaps subtrees* based on comparisons.  The traversal
// order therefore changes from phase to phase, and "any jump-pointer
// prefetches become purely overhead" (§4.2): software/cooperative JPP
// slow the program down, while hardware JPP is merely useless (its
// jump-pointers go stale before a second traversal can profit).
//
// Node layout: value(0) left(4) right(8) = 12 -> class 16, jump at 12.
const (
	bsValue = 0
	bsLeft  = 4
	bsRight = 8
	bsJump  = 12
)

const (
	bbBuild = ir.FirstUserSite + iota*10
	bbWalk
	bbSwap
	bbIdiom
	bbQueue
)

func init() {
	register(&Benchmark{
		Name:        "bisort",
		Description: "bitonic sort over a binary tree with subtree swaps",
		Structures:  "binary tree, extremely volatile (subtree swaps)",
		Behavior:    "traversal order changes every merge phase",
		Idioms:      []core.Idiom{core.IdiomQueue},
		Traversals:  2,
		Kernel:      bisortKernel,
	})
}

func bisortSizes(s Size) (depth, phases int) {
	switch s {
	case SizeTest:
		return 5, 2
	case SizeSmall:
		return 11, 3
	case SizeLarge:
		return 15, 4 // 32K nodes x 16B = 512KB, L2-sized
	default:
		return 13, 4 // 8K nodes x 16B = 128KB
	}
}

func bisortKernel(p Params) func(*ir.Asm) {
	depth, phases := bisortSizes(p.Size)
	idiom := p.swIdiom(core.IdiomQueue)
	coop := p.coop()

	return func(a *ir.Asm) {
		r := newRNG(0xbf58476d)

		var build func(d int) ir.Val
		build = func(d int) ir.Val {
			n := a.Malloc(12)
			a.Store(bbBuild, n, bsValue, ir.Imm(r.next()%100000))
			if d > 1 {
				l := build(d - 1)
				rt := build(d - 1)
				a.Store(bbBuild+1, n, bsLeft, l)
				a.Store(bbBuild+2, n, bsRight, rt)
			}
			return n
		}
		root := build(depth)

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, bbQueue, 0, p.interval(), bsJump)
		}

		// bimerge walks the tree, swapping children when values compare
		// against the phase direction, then recurses.
		var bimerge func(n ir.Val, dir bool) ir.Val
		bimerge = func(n ir.Val, dir bool) ir.Val {
			if idiom == core.IdiomQueue {
				if coop && p.prefetchOn() {
					a.Prefetch(bbIdiom, n, bsJump, ir.FJumpChase)
				} else if p.prefetchOn() {
					a.Overhead(func() {
						j := a.Load(bbIdiom, n, bsJump, 0)
						a.Prefetch(bbIdiom+1, j, 0, 0)
					})
				}
				queue.Visit(n)
			}
			v := a.Load(bbWalk, n, bsValue, ir.FLDS)
			l := a.Load(bbWalk+1, n, bsLeft, ir.FLDS)
			rt := a.Load(bbWalk+2, n, bsRight, ir.FLDS)
			a.Branch(bbWalk+3, l.IsNil(), bbWalk+7, l, ir.Val{})
			if l.IsNil() {
				a.Ret(bbIdiom + 2)
				return v
			}
			lv := a.Load(bbSwap, l, bsValue, ir.FLDS)
			rv := a.Load(bbSwap+1, rt, bsValue, ir.FLDS)
			swap := (lv.U32() > rv.U32()) == dir
			a.Branch(bbSwap+2, swap, bbSwap+3, lv, rv)
			if swap {
				// The structural mutation that invalidates jump-pointers.
				a.Store(bbSwap+3, n, bsLeft, rt)
				a.Store(bbSwap+4, n, bsRight, l)
				l, rt = rt, l
			}
			a.Push(bbWalk+4, rt)
			a.Call(bbWalk+5, bbWalk)
			ls := bimerge(l, dir)
			rt = a.Pop(bbWalk + 6)
			a.Call(bbWalk+7, bbWalk)
			rs := bimerge(rt, !dir)
			out := a.Alu(bbIdiom+3, ls.U32()+rs.U32()+v.U32(), ls, rs)
			a.Ret(bbIdiom + 4)
			return out
		}

		for ph := 0; ph < phases; ph++ {
			s := bimerge(root, ph%2 == 0)
			a.StoreGlobal(bbIdiom+5, 0x100, s)
		}
	}
}
