package olden

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// tsp builds a travelling-salesman tour: cities are partitioned with a
// binary tree, per-partition subtours are formed as doubly-linked
// lists, and merge steps *splice* the lists together, relinking nodes
// constantly.  The tour list is "large and extremely volatile" — by
// the time a jump-pointer's target would be useful the list has been
// rearranged — so explicit jump-pointer prefetching is pure overhead
// (§2.2, §4.2).
//
// City layout: x(0) y(4) next(8) prev(12) weight(16) = 20 -> class 32;
// the jump slot lives in the padding at offset 20.
const (
	tcX    = 0
	tcY    = 4
	tcNext = 8
	tcPrev = 12
	tcJump = 20
)

const (
	tpBuild = ir.FirstUserSite + iota*10
	tpMerge
	tpWalk
	tpIdiom
	tpQueue
)

func init() {
	register(&Benchmark{
		Name:        "tsp",
		Description: "closest-point heuristic travelling-salesman tour",
		Structures:  "doubly-linked tour lists spliced by divide-and-conquer merges",
		Behavior:    "large and extremely volatile",
		Idioms:      []core.Idiom{core.IdiomQueue},
		Traversals:  2,
		Kernel:      tspKernel,
	})
}

func tspSizes(s Size) (cities int) {
	switch s {
	case SizeTest:
		return 32
	case SizeSmall:
		return 1024
	case SizeLarge:
		return 20000 // ~20K x 32B = 640KB tour nodes
	default:
		return 7000 // ~7K x 32B = 224KB tour nodes
	}
}

func tspKernel(p Params) func(*ir.Asm) {
	cities := tspSizes(p.Size)
	idiom := p.swIdiom(core.IdiomQueue)
	coop := p.coop()
	const nodeBytes = uint32(20)
	_ = idiom

	return func(a *ir.Asm) {
		r := newRNG(0xd6e8feb8)

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, tpQueue, 0, p.interval(), tcJump)
		}

		// ---- build cities ----
		nodes := make([]ir.Val, cities)
		for i := range nodes {
			nodes[i] = a.Malloc(nodeBytes)
			a.Store(tpBuild, nodes[i], tcX, ir.Imm(r.next()%10000))
			a.Store(tpBuild+1, nodes[i], tcY, ir.Imm(r.next()%10000))
		}

		// makeTour recursively splits the city slice and splices the
		// two subtours at the closest pair of endpoints, walking both
		// lists to find splice points (the volatile part).
		link := func(x, y ir.Val) {
			a.Store(tpMerge, x, tcNext, y)
			a.Store(tpMerge+1, y, tcPrev, x)
		}
		var makeTour func(lo, hi int) (head, tail ir.Val)
		makeTour = func(lo, hi int) (ir.Val, ir.Val) {
			if hi-lo <= 2 {
				h := nodes[lo]
				t := nodes[hi-1]
				for i := lo; i+1 < hi; i++ {
					link(nodes[i], nodes[i+1])
				}
				return h, t
			}
			mid := (lo + hi) / 2
			h1, t1 := makeTour(lo, mid)
			h2, t2 := makeTour(mid, hi)
			// Walk a prefix of the first subtour comparing distances to
			// choose the splice point (data-dependent, volatile).
			cur := h1
			steps := (mid - lo) % 7
			for s := 0; s < steps; s++ {
				if idiom == core.IdiomQueue {
					if coop && p.prefetchOn() {
						a.Prefetch(tpIdiom, cur, tcJump, ir.FJumpChase)
					} else if p.prefetchOn() {
						a.Overhead(func() {
							j := a.Load(tpIdiom, cur, tcJump, 0)
							a.Prefetch(tpIdiom+1, j, 0, 0)
						})
					}
					queue.Visit(cur)
				}
				x := a.Load(tpWalk, cur, tcX, ir.FLDS)
				y := a.Load(tpWalk+1, cur, tcY, ir.FLDS)
				d := a.Op(tpWalk+2, ir.FpMult, x.U32()+y.U32(), x, y)
				a.Op(tpWalk+3, ir.FpAdd, d.U32(), d, y)
				nx := a.Load(tpWalk+4, cur, tcNext, ir.FLDS)
				a.Branch(tpWalk+5, s+1 < steps, tpWalk, nx, ir.Val{})
				if nx.IsNil() {
					break
				}
				cur = nx
			}
			// Splice: rotate the join point by relinking (mutation).
			link(t1, h2)
			return h1, t2
		}
		head, tail := makeTour(0, cities)
		link(tail, head) // close the cycle

		// ---- tour improvement pass: walk the cycle, occasionally
		// swapping adjacent cities (relinking as it goes) ----
		cur := head
		for i := 0; i < cities; i++ {
			if idiom == core.IdiomQueue {
				if coop && p.prefetchOn() {
					a.Prefetch(tpIdiom+2, cur, tcJump, ir.FJumpChase)
				} else if p.prefetchOn() {
					a.Overhead(func() {
						j := a.Load(tpIdiom+2, cur, tcJump, 0)
						a.Prefetch(tpIdiom+3, j, 0, 0)
					})
				}
				queue.Visit(cur)
			}
			x := a.Load(tpWalk+6, cur, tcX, ir.FLDS)
			nx := a.Load(tpWalk+7, cur, tcNext, ir.FLDS)
			if nx.IsNil() {
				break
			}
			nxx := a.Load(tpWalk+8, nx, tcX, ir.FLDS)
			swap := x.U32() > nxx.U32() && r.intn(4) == 0
			a.Branch(tpMerge+2, swap, tpMerge+3, x, nxx)
			if swap && i+2 < cities {
				// Relink: cur <-> nx swap in the cycle.
				nn := a.Load(tpMerge+3, nx, tcNext, ir.FLDS)
				pv := a.Load(tpMerge+4, cur, tcPrev, ir.FLDS)
				link(pv, nx)
				link(nx, cur)
				link(cur, nn)
				cur = nx
			}
			nx2 := a.Load(tpWalk+9, cur, tcNext, ir.FLDS)
			a.Branch(tpMerge+5, i+1 < cities, tpWalk+6, nx2, ir.Val{})
			if nx2.IsNil() {
				break
			}
			cur = nx2
		}
	}
}
