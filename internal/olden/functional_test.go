package olden

import (
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
)

// Functional-correctness tests: the kernels execute for real against
// the simulated heap, so their data structures can be validated by
// walking the memory image after the run.  Prefetching transformations
// must never change program results.

// runForImage drains a kernel and returns the memory image and heap.
func runForImage(t *testing.T, b *Benchmark, p Params) (*mem.Image, *heap.Allocator) {
	t.Helper()
	alloc := heap.New(mem.NewImage())
	g := ir.NewGen(alloc, b.Kernel(p))
	for d := g.Next(); d != nil; d = g.Next() {
	}
	return alloc.Image(), alloc
}

func TestTreeaddComputesTheSum(t *testing.T) {
	b, _ := ByName("treeadd")
	for _, scheme := range core.Schemes() {
		img, _ := runForImage(t, b, Params{Scheme: scheme, Size: SizeTest})
		// The kernel stores the grand total at GlobalBase+0x100.  Sizes
		// and the RNG are deterministic: recompute the expected value.
		depth, passes := treeaddSizes(SizeTest)
		r := newRNG(0xabcdef)
		var sum uint32
		var count func(d int)
		count = func(d int) {
			sum += r.next() % 100
			if d > 1 {
				count(d - 1)
				count(d - 1)
			}
		}
		count(depth)
		want := sum * uint32(passes)
		got := img.ReadWord(ir.GlobalBase + 0x100)
		if got != want {
			t.Fatalf("%v: treeadd total = %d, want %d", scheme, got, want)
		}
	}
}

// walkList follows forward pointers from a list head in the image.
func walkList(img *mem.Image, head uint32, next uint32, limit int) []uint32 {
	var out []uint32
	for p := head; p != 0 && len(out) < limit; p = img.ReadWord(p + next) {
		out = append(out, p)
	}
	return out
}

func TestHealthListsSurviveChurn(t *testing.T) {
	b, _ := ByName("health")
	for _, scheme := range []core.Scheme{core.SchemeNone, core.SchemeSoftware, core.SchemeHardware} {
		img, alloc := runForImage(t, b, Params{Scheme: scheme, Size: SizeTest})
		cfg := healthSizes(SizeTest)
		villages := 0
		for l := 0; l <= cfg.levels; l++ {
			n := 1
			for i := 0; i < l; i++ {
				n *= 4
			}
			villages += n
		}
		// Walk the village chain from the first village (the first
		// village block is the first allocation of the first arena).
		// Arena layout makes it hard to find blind, so instead verify a
		// structural invariant over every village we can reach from any
		// list node: each waiting list is a NUL-terminated chain of
		// live blocks whose patients are live blocks.
		// Conservation: churn replaces every removal with an admission,
		// so the total patient population is villages*initPerV.
		total := 0
		// Villages were allocated one per arena in post-order; scan the
		// heap for village blocks via their arena-first-block property:
		// instead, exploit determinism: rebuild the allocation sequence.
		alloc2 := heap.New(mem.NewImage())
		var heads []uint32
		var build func(level int)
		build = func(level int) {
			if level > 0 {
				for i := 0; i < 4; i++ {
					build(level - 1)
				}
			}
			ar := alloc2.NewArena()
			heads = append(heads, uint32(alloc2.AllocIn(ar, 12)))
		}
		build(cfg.levels)
		if len(heads) != villages {
			t.Fatalf("village replay mismatch: %d vs %d", len(heads), villages)
		}
		for _, v := range heads {
			l := walkList(img, img.ReadWord(v+hvWaiting), hlForward, 10000)
			total += len(l)
			for _, node := range l {
				pt := img.ReadWord(node + hlPatient)
				if !alloc.Contains(pt) {
					t.Fatalf("%v: node %#x has dangling patient %#x", scheme, node, pt)
				}
			}
		}
		want := villages * cfg.initPerV
		if total != want {
			t.Fatalf("%v: %d patients across lists, want %d (conservation)", scheme, total, want)
		}
	}
}

func TestBisortPreservesTreePopulation(t *testing.T) {
	b, _ := ByName("bisort")
	img, alloc := runForImage(t, b, Params{Scheme: core.SchemeNone, Size: SizeTest})
	depth, _ := bisortSizes(SizeTest)
	wantNodes := 1<<depth - 1
	// The tree root is the first allocation; count reachable nodes.
	root := uint32(heap.Base)
	seen := map[uint32]bool{}
	var count func(n uint32) int
	count = func(n uint32) int {
		if n == 0 || seen[n] || !alloc.Contains(n) {
			return 0
		}
		seen[n] = true
		return 1 + count(img.ReadWord(n+bsLeft)) + count(img.ReadWord(n+bsRight))
	}
	if got := count(root); got != wantNodes {
		t.Fatalf("bisort tree has %d reachable nodes, want %d (swaps must not lose subtrees)",
			got, wantNodes)
	}
}

func TestTspTourStaysClosedAndComplete(t *testing.T) {
	b, _ := ByName("tsp")
	for _, scheme := range []core.Scheme{core.SchemeNone, core.SchemeSoftware} {
		img, _ := runForImage(t, b, Params{Scheme: scheme, Size: SizeTest})
		cities := tspSizes(SizeTest)
		// First city block = first allocation.
		start := uint32(heap.Base)
		seen := map[uint32]bool{}
		p := start
		steps := 0
		for !seen[p] && steps <= cities+1 {
			seen[p] = true
			p = img.ReadWord(p + tcNext)
			steps++
			if p == 0 {
				t.Fatalf("%v: tour broken after %d steps", scheme, steps)
			}
		}
		if len(seen) != cities {
			t.Fatalf("%v: tour visits %d of %d cities", scheme, len(seen), cities)
		}
		if p != start {
			t.Fatalf("%v: tour does not close back to the start", scheme)
		}
	}
}

func TestEm3dGraphWellFormed(t *testing.T) {
	b, _ := ByName("em3d")
	img, alloc := runForImage(t, b, Params{Scheme: core.SchemeCooperative, Size: SizeTest})
	cfg := em3dSizes(SizeTest)
	// E-side nodes: first allocations of the first arena (sequential).
	first := uint32(heap.Base)
	nodes := walkList(img, first, emNext, cfg.nodes+1)
	if len(nodes) != cfg.nodes {
		t.Fatalf("E-side list has %d nodes, want %d", len(nodes), cfg.nodes)
	}
	for _, n := range nodes {
		for k := 0; k < emK; k++ {
			from := img.ReadWord(n + uint32(emFrom+4*k))
			if !alloc.Contains(from) {
				t.Fatalf("node %#x from[%d] = %#x is not a live node", n, k, from)
			}
		}
	}
}

func TestMstResultSchemeInvariant(t *testing.T) {
	// The MST computation's control flow is driven by loaded weights;
	// whatever the prefetching scheme, the same tree must be selected.
	// The per-scheme instruction streams differ, but the original
	// instructions (and hence the sequence of weight loads) must match.
	b, _ := ByName("mst")
	var ref ir.Stats
	for i, scheme := range core.Schemes() {
		alloc := heap.New(mem.NewImage())
		g := ir.NewGen(alloc, b.Kernel(Params{Scheme: scheme, Size: SizeTest}))
		for d := g.Next(); d != nil; d = g.Next() {
		}
		s := g.Stats()
		if i == 0 {
			ref = s
			continue
		}
		if s.OrigInsts != ref.OrigInsts {
			t.Fatalf("%v: original instruction count %d differs from baseline %d — "+
				"the transformation changed program behaviour", scheme, s.OrigInsts, ref.OrigInsts)
		}
	}
}

func TestPerimeterJumpPointersFollowBuildOrder(t *testing.T) {
	b, _ := ByName("perimeter")
	img, alloc := runForImage(t, b, Params{Scheme: core.SchemeSoftware, Size: SizeTest})
	// Software queue jumping installed pointers during the build: every
	// jump pointer must reference a live node (the node allocated
	// `interval` allocations later).
	// Nodes are class-32 blocks allocated back to back in arena 0.
	root := uint32(heap.Base)
	count, ok := 0, 0
	for p := root; alloc.Contains(p); p += 32 {
		if alloc.BlockSize(p) != 32 {
			break
		}
		count++
		if j := img.ReadWord(p + pqJump); j != 0 {
			if !alloc.Contains(j) {
				t.Fatalf("node %#x jump pointer %#x dangles", p, j)
			}
			ok++
		}
	}
	if count == 0 || ok == 0 {
		t.Fatalf("no jump pointers found (%d nodes scanned)", count)
	}
}
