package olden

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// perimeter computes the perimeter of a region stored as a quadtree.
// A backbone-only structure (Table 1: queue jumping), built once and
// traversed once — which is why hardware JPP, needing a first traversal
// to install jump-pointers, is useless on it (§4.2), while software
// queue jumping installed during the build pays off in the single
// traversal.
//
// Node layout: color(0) child0..3(4,8,12,16) = 20 -> class 32,
// jump slot at 20 (padding).
const (
	pqColor = 0
	pqChild = 4
	pqJump  = 20
)

const (
	psBuild = ir.FirstUserSite + iota*10
	psWalk
	psIdiom
	psQueue
)

func init() {
	register(&Benchmark{
		Name:        "perimeter",
		Description: "perimeter of a quadtree-encoded image region",
		Structures:  "quadtree (backbone only)",
		Behavior:    "built once, traversed once",
		Idioms:      []core.Idiom{core.IdiomQueue},
		Traversals:  1,
		Kernel:      perimeterKernel,
	})
}

func perimeterSizes(s Size) (depth int) {
	switch s {
	case SizeTest:
		return 3
	case SizeSmall:
		return 6
	case SizeLarge:
		return 10 // ~4x the full quadtree, ~1.5MB of nodes
	default:
		return 8 // ~10-20K nodes x 32B
	}
}

func perimeterKernel(p Params) func(*ir.Asm) {
	depth := perimeterSizes(p.Size)
	idiom := p.swIdiom(core.IdiomQueue)
	coop := p.coop()

	return func(a *ir.Asm) {
		r := newRNG(0x94d049bb)

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, psQueue, 0, p.interval(), pqJump)
		}

		// ---- build: random image, grey nodes subdivide ----
		var build func(d int) ir.Val
		build = func(d int) ir.Val {
			n := a.Malloc(20)
			// Jump-pointer creation runs during the build for a
			// one-pass program ("jump-pointers must be installed as the
			// LDS itself is built", §4.2) — a task suited to software.
			if queue != nil {
				queue.Visit(n)
			}
			// Upper levels always subdivide (a realistic image is not a
			// single pixel); deeper regions go uniform at random.
			if d == 0 || (d <= depth-3 && r.intn(4) == 0) {
				// Leaf: black or white.
				a.Store(psBuild, n, pqColor, ir.Imm(uint32(1+r.intn(2))))
				return n
			}
			a.Store(psBuild+1, n, pqColor, ir.Imm(0)) // grey
			for q := 0; q < 4; q++ {
				c := build(d - 1)
				a.Store(psBuild+2, n, uint32(pqChild+4*q), c)
			}
			return n
		}
		root := build(depth)

		// ---- single traversal: sum leaf edge contributions ----
		var walk func(n ir.Val) ir.Val
		walk = func(n ir.Val) ir.Val {
			if idiom == core.IdiomQueue {
				if coop && p.prefetchOn() {
					a.Prefetch(psIdiom, n, pqJump, ir.FJumpChase)
				} else if p.prefetchOn() {
					a.Overhead(func() {
						j := a.Load(psIdiom, n, pqJump, 0)
						a.Prefetch(psIdiom+1, j, 0, 0)
					})
				}
			}
			color := a.Load(psWalk, n, pqColor, ir.FLDS)
			grey := color.U32() == 0
			a.Branch(psWalk+1, !grey, psWalk+6, color, ir.Val{})
			if !grey {
				// Leaf contribution: neighbour tests approximated by a
				// few arithmetic ops.
				e1 := a.Alu(psWalk+6, color.U32()*4, color, ir.Val{})
				e2 := a.Alu(psWalk+7, e1.U32()+1, e1, ir.Val{})
				a.Ret(psIdiom + 2)
				return e2
			}
			sum := ir.Val{}
			for q := 0; q < 4; q++ {
				c := a.Load(psWalk+2, n, uint32(pqChild+4*q), ir.FLDS)
				a.Push(psWalk+3, sum)
				a.Call(psWalk+4, psWalk)
				s := walk(c)
				sum = a.Pop(psWalk + 5)
				sum = a.Alu(psIdiom+3, sum.U32()+s.U32(), sum, s)
			}
			a.Ret(psIdiom + 4)
			return sum
		}
		total := walk(root)
		a.StoreGlobal(psIdiom+5, 0x100, total)
	}
}
