package olden

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// mst computes a minimum spanning tree with Bentley's algorithm: each
// vertex keeps a hash table of edge weights to every other vertex, and
// the main loop repeatedly looks up distances in those tables.  The
// tables' short bucket chains (a handful of nodes each) are "ideal for
// a root jumping implementation" (§4.1): while one chain is scanned,
// the next lookup's bucket root — whose address is computable from the
// next vertex — is prefetched and chased.
//
// The whole computation makes effectively one pass over each table, so
// hardware JPP (which spends the first traversal installing
// jump-pointers) is useless here, exactly as in §4.2.
//
// Hash entry layout: key(0) weight(4) next(8) = 12 -> class 16.
const (
	meKey    = 0
	meWeight = 4
	meNext   = 8
)

const (
	msBuild = ir.FirstUserSite + iota*10
	msOuter
	msLookup
	msIdiom
	msQueue
)

func init() {
	register(&Benchmark{
		Name:        "mst",
		Description: "minimum spanning tree over hash-table adjacency (Bentley)",
		Structures:  "per-vertex hash tables with short bucket chains",
		Behavior:    "each chain effectively scanned once",
		Idioms:      []core.Idiom{core.IdiomRoot, core.IdiomQueue},
		Traversals:  1,
		Kernel:      mstKernel,
	})
}

type mstCfg struct {
	vertices int
	buckets  int // per table; chains average vertices/buckets nodes
}

func mstSizes(s Size) mstCfg {
	switch s {
	case SizeTest:
		return mstCfg{vertices: 10, buckets: 4}
	case SizeSmall:
		return mstCfg{vertices: 64, buckets: 16}
	case SizeLarge:
		// 256 tables x ~256 entries x 16B = ~1MB of hash chains.
		return mstCfg{vertices: 256, buckets: 64}
	default:
		// 160 vertices -> 160 tables x ~160 entries x 16B = ~410KB of
		// chain nodes plus bucket arrays.  Like the original's
		// multi-megabyte tables, a sizable share of chain accesses
		// miss to memory, which is where root jumping pays off; the
		// ~2.5-node chains keep a full chase within the prefetch lead.
		return mstCfg{vertices: 160, buckets: 64}
	}
}

func mstHash(key, buckets int) int { return (key*31 + 17) % buckets }

func mstKernel(p Params) func(*ir.Asm) {
	cfg := mstSizes(p.Size)
	idiom := p.swIdiom(core.IdiomRoot)
	coop := p.coop()

	return func(a *ir.Asm) {
		r := newRNG(0x2545f491)

		// ---- build: per-vertex hash tables of edge weights ----
		// Each vertex's table is a bucket-pointer array plus chain
		// nodes, allocated in its own arena (Olden locality domains).
		tables := make([]ir.Val, cfg.vertices)
		for v := range tables {
			ar := a.Heap().NewArena()
			tables[v] = a.MallocIn(ar, uint32(4*cfg.buckets))
			for u := 0; u < cfg.vertices; u++ {
				if u == v {
					continue
				}
				b := uint32(4 * mstHash(u, cfg.buckets))
				n := a.MallocIn(ar, 12)
				a.Store(msBuild, n, meKey, ir.Imm(uint32(u)))
				a.Store(msBuild+1, n, meWeight, ir.Imm(r.next()%1000+1))
				head := a.Load(msBuild+2, tables[v], b, ir.FLDS)
				a.Store(msBuild+3, n, meNext, head)
				a.Store(msBuild+4, tables[v], b, n)
			}
		}

		// Queue jumping threads jump-pointers through chain nodes in
		// scan order; since every chain is effectively scanned once,
		// the pointers are installed after their only use — the honest
		// reason root jumping wins on mst (Figure 4).
		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, msQueue, 0, p.interval(), 12)
		}

		// hashLookup scans table[v]'s chain for key, returning the
		// weight.  nextRoot, when valid, is the bucket address of the
		// following lookup for root jumping.
		hashLookup := func(v, key int, nextTable ir.Val, nextOff uint32) ir.Val {
			b := uint32(4 * mstHash(key, cfg.buckets))
			// The hash computation itself: multiply and modulo (the
			// divider), exactly the work the original burns per probe.
			hk := a.Op(msOuter+3, ir.IntMult, uint32(key*31+17), ir.Imm(uint32(key)), ir.Val{})
			hk = a.Op(msOuter+4, ir.IntDiv, b, hk, ir.Imm(uint32(cfg.buckets)))
			a.Alu(msOuter+5, b, hk, ir.Val{})

			var chainJ ir.Val
			if idiom == core.IdiomRoot && !nextTable.IsNil() {
				if coop && p.prefetchOn() {
					a.Prefetch(msIdiom, nextTable, nextOff, ir.FJumpChase)
				} else if p.prefetchOn() {
					a.Overhead(func() {
						chainJ = a.Load(msIdiom, nextTable, nextOff, 0)
						a.Prefetch(msIdiom+1, chainJ, 0, 0)
					})
				}
			}

			n := a.Load(msLookup, tables[v], b, ir.FLDS)
			w := ir.Val{}
			for !n.IsNil() {
				// Root jumping: chase the next lookup's chain while this
				// one is scanned (paper Figure 2(e)).
				if idiom == core.IdiomRoot && !coop && !chainJ.IsNil() {
					a.Overhead(func() {
						a.Prefetch(msIdiom+2, chainJ, 0, 0)
						chainJ = a.Load(msIdiom+3, chainJ, meNext, 0)
					})
				}
				if idiom == core.IdiomQueue {
					if coop && p.prefetchOn() {
						a.Prefetch(msIdiom+4, n, 12, ir.FJumpChase)
					} else if p.prefetchOn() {
						a.Overhead(func() {
							j := a.Load(msIdiom+4, n, 12, 0)
							a.Prefetch(msIdiom+5, j, 0, 0)
						})
					}
					queue.Visit(n)
				}
				k := a.Load(msLookup+1, n, meKey, ir.FLDS)
				hit := int(k.U32()) == key
				nx := a.Load(msLookup+2, n, meNext, ir.FLDS)
				a.Branch(msLookup+3, hit, msLookup+5, k, ir.Imm(uint32(key)))
				if hit {
					w = a.Load(msLookup+5, n, meWeight, ir.FLDS)
					a.Branch(msLookup+6, true, msOuter, w, ir.Val{})
					return w
				}
				a.Branch(msLookup+4, !nx.IsNil(), msLookup+1, nx, ir.Val{})
				n = nx
			}
			return w
		}

		// ---- Prim/Bentley main loop ----
		inTree := make([]bool, cfg.vertices)
		dist := make([]uint32, cfg.vertices)
		for i := range dist {
			dist[i] = ^uint32(0)
		}
		inTree[0] = true
		cur := 0
		for added := 1; added < cfg.vertices; added++ {
			// Relax: one hash lookup per remaining vertex, with the
			// following lookup's bucket root known in advance.
			remaining := make([]int, 0, cfg.vertices)
			for u := 0; u < cfg.vertices; u++ {
				if !inTree[u] {
					remaining = append(remaining, u)
				}
			}
			best, bestW := -1, ^uint32(0)
			for i, u := range remaining {
				// Root jumping three lookups ahead: the probe sequence
				// within a round is a program invariant (the remaining
				// list), the kind of knowledge section 3.1 says the mst
				// implementation exploits; the distance approximates a
				// full serial chain chase at memory latency.
				var nextTable ir.Val
				var nextOff uint32
				if i+3 < len(remaining) {
					nu := remaining[i+3]
					nextTable = tables[nu]
					nextOff = uint32(4 * mstHash(cur, cfg.buckets))
				}
				w := hashLookup(u, cur, nextTable, nextOff)
				wv := w.U32()
				if wv != 0 && wv < dist[u] {
					dist[u] = wv
				}
				a.Branch(msOuter, dist[u] < bestW, msOuter+2, w, ir.Val{})
				if dist[u] < bestW {
					best, bestW = u, dist[u]
				}
				a.Alu(msOuter+1, dist[u], w, ir.Val{})
			}
			if best < 0 {
				best = remaining[0]
			}
			inTree[best] = true
			cur = best
		}
	}
}
