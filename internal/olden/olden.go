// Package olden re-implements the Olden pointer-intensive benchmark
// suite as micro-IR kernels for the timing simulator.
//
// Each benchmark reproduces the data structures and traversal idioms
// that drive the paper's results — backbone-only versus
// backbone-and-ribs structures, traversal counts, and structural
// volatility — rather than the exact source of the originals.  Every
// benchmark supports the paper's prefetching schemes: the software and
// cooperative schemes change the emitted code (jump-pointer creation
// and prefetch instructions per the selected idiom), while the DBP and
// hardware schemes leave the code untouched.
package olden

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/ir"
)

// Size selects input scaling.  The paper's inputs are scaled down so a
// cycle-level simulation finishes in seconds; the ratios between
// structure sizes and the cache hierarchy are preserved (working sets
// several times the 512KB L2 for the memory-bound programs).
type Size int

// Input sizes.
const (
	// SizeDefault resolves to SizeFull (kernels treat any value other
	// than the explicit test/small sizes as the full input), so the
	// zero value of configuration structs runs the real workload.
	SizeDefault Size = iota
	// SizeTest is for unit tests: a few thousand instructions.
	SizeTest
	// SizeSmall is for quick experiments.
	SizeSmall
	// SizeFull drives the reported tables and figures.
	SizeFull
	// SizeLarge scales the structures 2-4x past SizeFull, pushing every
	// memory-bound working set well beyond the L2.  It exists to stress
	// the simulator at paper-scale inputs and became practical once the
	// event-driven core made runs at this scale affordable.
	SizeLarge
)

func (s Size) String() string {
	switch s {
	case SizeDefault, SizeFull:
		return "full"
	case SizeTest:
		return "test"
	case SizeSmall:
		return "small"
	case SizeLarge:
		return "large"
	}
	return fmt.Sprintf("size(%d)", int(s))
}

// Params configures one kernel instantiation.
type Params struct {
	Scheme core.Scheme
	// Idiom selects the software transformation for SchemeSoftware and
	// SchemeCooperative; ignored otherwise.  core.IdiomNone picks the
	// benchmark's representative idiom.
	Idiom core.Idiom
	// Interval is the jump-pointer distance (0 = core.DefaultInterval).
	Interval int
	Size     Size
	// CreationOnly emits jump-pointer creation code but no prefetches,
	// isolating the "a priori" creation slowdown the paper quantifies
	// in section 4.2.
	CreationOnly bool
}

// prefetchOn reports whether idiom prefetch code should be emitted.
func (p Params) prefetchOn() bool { return !p.CreationOnly }

func (p Params) interval() int {
	if p.Interval <= 0 {
		return core.DefaultInterval
	}
	return p.Interval
}

// sw reports whether the kernel must emit idiom code.
func (p Params) swIdiom(def core.Idiom) core.Idiom {
	if !p.Scheme.UsesSoftwareIdiom() {
		return core.IdiomNone
	}
	if p.Idiom == core.IdiomNone {
		return def
	}
	return p.Idiom
}

// coop reports whether chained prefetching is done by hardware, so the
// kernel emits streamlined jump-pointer prefetches (ir.FJumpChase) and
// omits software chained prefetches.
func (p Params) coop() bool { return p.Scheme == core.SchemeCooperative }

// Benchmark describes one suite member.
type Benchmark struct {
	Name        string
	Description string
	// Structures and Behavior carry the Table 1 characterization text.
	Structures string
	Behavior   string
	// Idioms lists the applicable idioms (Table 1's last column), the
	// first being the representative choice used in Figure 5.
	Idioms []core.Idiom
	// Traversals is the approximate number of passes over the main
	// structure (drives the hardware-vs-software discussion in §4.2).
	Traversals int
	// Extension marks workloads beyond the paper's Olden suite (the
	// §6 future-work generalizations).  They are excluded from the
	// paper-artifact experiments but available everywhere else.
	Extension bool
	// Kernel builds the workload for the given parameters.
	Kernel func(p Params) func(*ir.Asm)
}

// DefaultIdiom returns the representative idiom.
func (b *Benchmark) DefaultIdiom() core.Idiom {
	if len(b.Idioms) == 0 {
		return core.IdiomNone
	}
	return b.Idioms[0]
}

var registry = map[string]*Benchmark{}

func register(b *Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("olden: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// Names returns all benchmark names in alphabetical order (the paper's
// presentation order).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName looks up a benchmark.
func ByName(name string) (*Benchmark, bool) {
	b, ok := registry[name]
	return b, ok
}

// All returns every benchmark (suite + extensions) alphabetically.
func All() []*Benchmark {
	names := Names()
	out := make([]*Benchmark, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Suite returns the paper's ten Olden benchmarks, the set its
// evaluation artifacts are built from.
func Suite() []*Benchmark {
	var out []*Benchmark
	for _, b := range All() {
		if !b.Extension {
			out = append(out, b)
		}
	}
	return out
}

// rng is a small deterministic xorshift generator so workloads are
// reproducible without pulling in math/rand state.
type rng uint64

func newRNG(seed uint64) *rng {
	r := rng(seed*2685821657736338717 + 1)
	return &r
}

func (r *rng) next() uint32 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return uint32(x >> 32)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint32(n))
}
