package olden

import (
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/ir"
)

// health models the Olden hierarchical health-care simulator: a 4-ary
// tree of villages, each with a waiting list of patients.  Every
// simulation step visits all villages bottom-up and scans each waiting
// list (check_patients_waiting, paper Figure 2), removing some patients
// and admitting new ones, so the lists are long-lived but continuously
// mutating.  The list-node and patient loads dominate the cache misses,
// exactly as in the paper.
//
// Layouts (payload bytes; blocks round up to power-of-two classes):
//
//	village:   waiting(0) nextVisit(4) level(8)            = 12 -> 16
//	list node: patient(0) forward(4) back(8) [jump(12)]    = 12 -> 16
//	           full jumping adds jumpRib(16)               = 20 -> 32
//	patient:   time(0) id(4) status(8)                     = 12 -> 16
const (
	hvWaiting = 0
	hvNext    = 4

	hlPatient = 0
	hlForward = 4
	hlJump    = 12
	hlJumpRib = 16

	hpTime = 0
	hpID   = 4
)

// Static sites for health.
const (
	hsBuild = ir.FirstUserSite + iota*8
	hsAdd
	hsWalk
	hsWalk2
	hsMut
	hsIdiom
	hsIdiom2
	hsQueue // SWJumpQueueSites
	hsEnd
)

func init() {
	register(&Benchmark{
		Name:        "health",
		Description: "hierarchical health-care system simulation",
		Structures:  "village tree + dynamic doubly-linked patient lists",
		Behavior:    "lists traversed every timestep, mutated continuously",
		Idioms:      []core.Idiom{core.IdiomChain, core.IdiomRoot, core.IdiomQueue, core.IdiomFull},
		Traversals:  500,
		Kernel:      healthKernel,
	})
}

type healthCfg struct {
	levels      int
	initPerV    int
	iters       int
	mutateDenom int
}

func healthSizes(s Size) healthCfg {
	switch s {
	case SizeTest:
		return healthCfg{levels: 1, initPerV: 6, iters: 2, mutateDenom: 8}
	case SizeSmall:
		return healthCfg{levels: 3, initPerV: 16, iters: 3, mutateDenom: 8}
	case SizeLarge:
		// ~1400 villages: ~4x the full list+patient data (~1MB).
		return healthCfg{levels: 5, initPerV: 11, iters: 9, mutateDenom: 8}
	default:
		// ~340 villages x 15 patients x 48B = ~0.25MB of list+patient
		// data: far beyond the 64KB L1 (every list/patient access is an
		// L1 miss) while staying L2-resident enough that the memory bus
		// keeps headroom — the regime in which latency, not bandwidth,
		// limits the baseline, as the paper's results imply.
		return healthCfg{levels: 4, initPerV: 11, iters: 9, mutateDenom: 8}
	}
}

func healthKernel(p Params) func(*ir.Asm) {
	cfg := healthSizes(p.Size)
	idiom := p.swIdiom(core.IdiomChain)
	coop := p.coop()
	nodeBytes := uint32(12)
	if idiom == core.IdiomFull {
		nodeBytes = 20 // room for the second jump-pointer
	}

	return func(a *ir.Asm) {
		r := newRNG(0x9e3779b9)

		// ---- build: villages in post-order (the visit order) ----
		// Each village is a locality domain with its own arena, as in
		// Olden's distributed-memory allocation discipline: the lists
		// stay page-dense even as churn scrambles their node order.
		var villages []ir.Val
		var arenas []heap.ArenaID
		arenaOf := map[uint32]heap.ArenaID{}
		var build func(level int)
		build = func(level int) {
			if level > 0 {
				for i := 0; i < 4; i++ {
					build(level - 1)
				}
			}
			ar := a.Heap().NewArena()
			v := a.MallocIn(ar, 12)
			villages = append(villages, v)
			arenas = append(arenas, ar)
			arenaOf[v.U32()] = ar
		}
		build(cfg.levels)
		for i := 0; i+1 < len(villages); i++ {
			a.Store(hsBuild, villages[i], hvNext, villages[i+1])
		}

		addPatient := func(v ir.Val) {
			ar := arenaOf[v.U32()]
			n := a.MallocIn(ar, nodeBytes)
			pt := a.MallocIn(ar, 20) // time, id, hosps, ... -> class 32
			a.Store(hsAdd, pt, hpTime, ir.Imm(uint32(r.intn(8))))
			a.Store(hsAdd+1, pt, hpID, ir.Imm(r.next()))
			a.Store(hsAdd+2, n, hlPatient, pt)
			head := a.Load(hsAdd+3, v, hvWaiting, ir.FLDS)
			a.Store(hsAdd+4, n, hlForward, head)
			a.Store(hsAdd+5, v, hvWaiting, n)
		}
		for _, v := range villages {
			for j := 0; j < cfg.initPerV; j++ {
				addPatient(v)
			}
		}

		// Software jump-pointer machinery (chain/queue/full idioms).
		var queue *core.SWJumpQueue
		if idiom == core.IdiomChain || idiom == core.IdiomQueue || idiom == core.IdiomFull {
			queue = core.NewSWJumpQueue(a, hsQueue, 0, p.interval(), hlJump)
		}

		// ---- simulation timesteps ----
		for it := 0; it < cfg.iters; it++ {
			cur := villages[0]
			for vi := range villages {
				var nextV ir.Val
				if vi+1 < len(villages) {
					nextV = villages[vi+1]
				}
				healthWalkList(a, p, idiom, coop, queue, cur, nextV, r, cfg, addPatient)
				if vi+1 < len(villages) {
					cur = a.Load(hsWalk, cur, hvNext, ir.FLDS)
				}
			}
		}
	}
}

// healthWalkList is check_patients_waiting: scan the village's waiting
// list, bumping each patient's time and removing some; removed patients
// are replaced with fresh admissions after the scan (keeping list
// length stationary while churning the allocations).
func healthWalkList(a *ir.Asm, p Params, idiom core.Idiom, coop bool,
	queue *core.SWJumpQueue, v, nextV ir.Val, r *rng, cfg healthCfg,
	addPatient func(ir.Val)) {

	// Root jumping: grab the next village's list root up front and
	// chain along it while this list is processed (paper Figure 2(e)).
	var rootJ ir.Val
	if idiom == core.IdiomRoot && !nextV.IsNil() && p.prefetchOn() {
		if coop {
			a.Prefetch(hsIdiom2, nextV, hvWaiting, ir.FJumpChase)
		} else {
			a.Overhead(func() {
				rootJ = a.Load(hsIdiom2, nextV, hvWaiting, 0)
				a.Prefetch(hsIdiom2+1, rootJ, 0, 0)
			})
		}
	}

	l := a.Load(hsWalk+1, v, hvWaiting, ir.FLDS)
	var prev ir.Val
	removed := 0
	var jprev ir.Val // previous jump target (software chain pipelining)

	for !l.IsNil() {
		// ---- prefetching idiom code at loop top ----
		if !p.prefetchOn() {
			goto body
		}
		switch idiom {
		case core.IdiomQueue:
			if coop {
				a.Prefetch(hsIdiom, l, hlJump, ir.FJumpChase)
			} else {
				a.Overhead(func() {
					j := a.Load(hsIdiom, l, hlJump, 0)
					a.Prefetch(hsIdiom+1, j, 0, 0)
				})
			}
		case core.IdiomChain:
			if coop {
				a.Prefetch(hsIdiom, l, hlJump, ir.FJumpChase)
			} else {
				a.Overhead(func() {
					j := a.Load(hsIdiom, l, hlJump, 0)
					a.Prefetch(hsIdiom+1, j, 0, 0)
					// Chained rib prefetch, software-pipelined one node
					// behind so the binding load finds its block
					// (mostly) arrived.
					if !jprev.IsNil() {
						pp := a.Load(hsIdiom+2, jprev, hlPatient, 0)
						a.Prefetch(hsIdiom+3, pp, 0, 0)
					}
					jprev = j
				})
			}
		case core.IdiomFull:
			if coop {
				a.Prefetch(hsIdiom, l, hlJump, ir.FJumpChase)
				a.Prefetch(hsIdiom+1, l, hlJumpRib, ir.FJumpChase)
			} else {
				a.Overhead(func() {
					j := a.Load(hsIdiom, l, hlJump, 0)
					a.Prefetch(hsIdiom+1, j, 0, 0)
					jr := a.Load(hsIdiom+2, l, hlJumpRib, 0)
					a.Prefetch(hsIdiom+3, jr, 0, 0)
				})
			}
		case core.IdiomRoot:
			if !coop && !rootJ.IsNil() {
				a.Overhead(func() {
					a.Prefetch(hsIdiom+4, rootJ, 0, 0)
					rootJ = a.Load(hsIdiom+5, rootJ, hlForward, 0)
				})
			}
		}

		// ---- original check_patients_waiting body ----
	body:
		pt := a.Load(hsWalk+2, l, hlPatient, ir.FLDS)
		t := a.Load(hsWalk+3, pt, hpTime, ir.FLDS)
		t2 := a.AddImm(hsWalk+4, t, 1)
		a.Store(hsWalk+5, pt, hpTime, t2)
		// Patient bookkeeping: status checks, triage arithmetic and
		// per-village statistics, as in the original routine.
		id := a.Load(hsMut+4, pt, hpID, ir.FLDS)
		sev := a.Alu(hsMut+5, id.U32()&7, id, ir.Val{})
		a.Branch(hsMut+6, sev.U32() > 4, hsMut+7, sev, t2)
		acc := a.Alu(hsMut+7, sev.U32()+t2.U32(), sev, t2)
		stat := a.LoadGlobal(hsWalk2, 0x40)
		stat2 := a.Alu(hsWalk2+1, stat.U32()+acc.U32(), stat, acc)
		a.StoreGlobal(hsWalk2+2, 0x40, stat2)
		h1 := a.Alu(hsWalk2+3, acc.U32()>>1, acc, ir.Val{})
		h2 := a.Alu(hsWalk2+4, acc.U32()*3, acc, ir.Val{})
		h3 := a.Alu(hsWalk2+5, h1.U32()^h2.U32(), h1, h2)
		h4 := a.Alu(hsWalk2+6, h3.U32()+sev.U32(), h3, sev)
		a.Branch(hsWalk2+7, h4.U32()&1 == 0, hsMut+7, h4, ir.Val{})
		h5 := a.Alu(hsMut+1, h4.U32()>>2, h4, ir.Val{})
		a.Alu(hsIdiom2+6, h5.U32()+t2.U32(), h5, t2)
		a.Alu(hsIdiom2+7, h5.U32()|3, h5, ir.Val{})

		// Jump-pointer creation (queue method) for the queue-based
		// idioms; full jumping also installs the rib pointer.
		if queue != nil {
			if idiom == core.IdiomFull {
				queue.Visit(l, core.FieldStore{Off: hlJumpRib, Val: pt})
			} else {
				queue.Visit(l)
			}
		}

		nxt := a.Load(hsWalk+6, l, hlForward, ir.FLDS)
		remove := r.intn(cfg.mutateDenom) == 0
		a.Branch(hsMut, remove, hsMut+2, t2, ir.Val{})
		if remove {
			if prev.IsNil() {
				a.Store(hsMut+2, v, hvWaiting, nxt)
			} else {
				a.Store(hsMut+3, prev, hlForward, nxt)
			}
			a.FreeNode(pt)
			a.FreeNode(l)
			removed++
		} else {
			prev = l
		}
		a.Branch(hsWalk+7, !nxt.IsNil(), hsWalk+1, nxt, ir.Val{})
		l = nxt
	}

	// Admissions replace the departed (list length stays stationary,
	// allocations churn).
	for i := 0; i < removed; i++ {
		addPatient(v)
	}
}
