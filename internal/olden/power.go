package olden

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// power solves a power-system pricing optimization over a fixed
// four-level distribution tree (root -> feeders -> laterals ->
// branches -> leaves), with heavy floating-point work — including
// divisions — at every node.  Its memory-latency component is tiny
// (Table 1), so "even the smallest computation overheads introduced by
// software prefetching overwhelm the potential benefit and produce an
// overall slowdown" (§4.2).
//
// Node layout: value(0) demand(4) child0..3(8..20) next(24) = 28 -> 32.
const (
	pwValue = 0
	pwChild = 8
	pwNext  = 24
	pwJump  = 28
)

const (
	pwBuild = ir.FirstUserSite + iota*10
	pwWalk
	pwCompute
	pwIdiom
	pwQueue
)

func init() {
	register(&Benchmark{
		Name:        "power",
		Description: "power system pricing optimization (compute bound)",
		Structures:  "fixed multiway distribution tree",
		Behavior:    "small working set, FP-division dominated",
		Idioms:      []core.Idiom{core.IdiomQueue},
		Traversals:  10,
		Kernel:      powerKernel,
	})
}

type powerCfg struct {
	feeders, laterals, branches int
	iters                       int
}

func powerSizes(s Size) powerCfg {
	switch s {
	case SizeTest:
		return powerCfg{feeders: 2, laterals: 2, branches: 2, iters: 2}
	case SizeSmall:
		return powerCfg{feeders: 4, laterals: 8, branches: 4, iters: 4}
	case SizeLarge:
		// power stays compute-bound by design; double the network.
		return powerCfg{feeders: 8, laterals: 8, branches: 8, iters: 10}
	default:
		// ~1.4K nodes x 32B = ~45KB: L1-resident by design.
		return powerCfg{feeders: 4, laterals: 8, branches: 8, iters: 10}
	}
}

func powerKernel(p Params) func(*ir.Asm) {
	cfg := powerSizes(p.Size)
	idiom := p.swIdiom(core.IdiomQueue)
	coop := p.coop()

	return func(a *ir.Asm) {
		r := newRNG(0x2fcf2d31)

		// ---- build the distribution tree as sibling lists ----
		makeNode := func() ir.Val {
			n := a.Malloc(28)
			a.Store(pwBuild, n, pwValue, ir.Imm(r.next()%1000+1))
			return n
		}
		var level func(count, depth int) ir.Val
		level = func(count, depth int) ir.Val {
			var head, prev ir.Val
			for i := 0; i < count; i++ {
				n := makeNode()
				if depth > 0 {
					sub := 0
					switch depth {
					case 3:
						sub = cfg.laterals
					case 2:
						sub = cfg.branches
					case 1:
						sub = 4 // leaves per branch
					}
					c := level(sub, depth-1)
					a.Store(pwBuild+1, n, pwChild, c)
				}
				if prev.IsNil() {
					head = n
				} else {
					a.Store(pwBuild+2, prev, pwNext, n)
				}
				prev = n
			}
			return head
		}
		root := makeNode()
		feeders := level(cfg.feeders, 3)
		a.Store(pwBuild+3, root, pwChild, feeders)

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, pwQueue, 0, p.interval(), pwJump)
		}

		// compute walks sibling lists depth-first, performing the
		// power-flow arithmetic: multiplies, adds and one division per
		// node (the serializing FP pipeline the paper's Table 1 blames).
		var compute func(n ir.Val) ir.Val
		compute = func(n ir.Val) ir.Val {
			sum := ir.Val{}
			for !n.IsNil() {
				if idiom == core.IdiomQueue {
					if coop && p.prefetchOn() {
						a.Prefetch(pwIdiom, n, pwJump, ir.FJumpChase)
					} else if p.prefetchOn() {
						a.Overhead(func() {
							j := a.Load(pwIdiom, n, pwJump, 0)
							a.Prefetch(pwIdiom+1, j, 0, 0)
						})
					}
					queue.Visit(n)
				}
				v := a.Load(pwWalk, n, pwValue, ir.FLDS)
				c := a.Load(pwWalk+1, n, pwChild, ir.FLDS)
				var cs ir.Val
				if !c.IsNil() {
					a.Push(pwWalk+2, v)
					a.Call(pwWalk+3, pwWalk)
					cs = compute(c)
					v = a.Pop(pwWalk + 4)
				}
				// Power flow: v' = (v*a + cs*b) / (v + cs) style math.
				m1 := a.Op(pwCompute, ir.FpMult, v.U32()*3, v, cs)
				m2 := a.Op(pwCompute+1, ir.FpMult, cs.U32()*5, cs, v)
				s1 := a.Op(pwCompute+2, ir.FpAdd, m1.U32()+m2.U32(), m1, m2)
				d := a.Op(pwCompute+3, ir.FpDiv, s1.U32()/3+1, s1, v)
				d2 := a.Op(pwCompute+7, ir.FpDiv, d.U32()/5+1, d, m2)
				m3 := a.Op(pwCompute+8, ir.FpMult, d2.U32()*7, d2, s1)
				s2 := a.Op(pwCompute+4, ir.FpAdd, m3.U32()+1, m3, m1)
				a.Store(pwCompute+5, n, pwValue, s2)
				sum = a.Op(pwCompute+6, ir.FpAdd, sum.U32()+s2.U32(), sum, s2)

				nx := a.Load(pwWalk+5, n, pwNext, ir.FLDS)
				a.Branch(pwWalk+6, !nx.IsNil(), pwWalk, nx, ir.Val{})
				n = nx
			}
			a.Ret(pwIdiom + 2)
			return sum
		}

		for it := 0; it < cfg.iters; it++ {
			total := compute(root)
			a.StoreGlobal(pwIdiom+3, 0x100, total)
		}
	}
}
