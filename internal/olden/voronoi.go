package olden

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// voronoi computes a Voronoi diagram by divide and conquer.  Most of
// its cache misses come from recursive sweeps over the big point
// array — not from its (small) linked edge structure — so JPP targets
// the wrong misses: "software and cooperative prefetching actually
// increase the total memory latency, as useless prefetches contend for
// memory resources with array based cache misses" (§4.2).
//
// Edge layout: orig(0) dest(4) next(8) = 12 -> class 16, jump at 12.
const (
	voOrig = 0
	voDest = 4
	voNext = 8
	voJump = 12
)

const (
	vsBuild = ir.FirstUserSite + iota*10
	vsSort
	vsMerge
	vsEdge
	vsIdiom
	vsQueue
)

func init() {
	register(&Benchmark{
		Name:        "voronoi",
		Description: "Voronoi diagram by divide and conquer",
		Structures:  "large point arrays + small linked edge lists",
		Behavior:    "misses dominated by array sweeps, not LDS",
		Idioms:      []core.Idiom{core.IdiomQueue},
		Traversals:  1,
		Kernel:      voronoiKernel,
	})
}

func voronoiSizes(s Size) (points int) {
	switch s {
	case SizeTest:
		return 64
	case SizeSmall:
		return 4 << 10
	case SizeLarge:
		return 144 << 10 // 144K points x 8B = 1.1MB array
	default:
		return 48 << 10 // 48K points x 8B = 384KB array
	}
}

func voronoiKernel(p Params) func(*ir.Asm) {
	points := voronoiSizes(p.Size)
	idiom := p.swIdiom(core.IdiomQueue)
	coop := p.coop()

	return func(a *ir.Asm) {
		r := newRNG(0x853c49e6)

		// ---- the point array (static data area): the real miss source ----
		arrBase := uint32(0x10000)
		for i := 0; i < points; i++ {
			a.StoreGlobal(vsBuild, arrBase+uint32(8*i), ir.Imm(r.next()%100000))
			a.StoreGlobal(vsBuild+1, arrBase+uint32(8*i+4), ir.Imm(r.next()%100000))
		}

		// ---- a modest linked edge list (the LDS that JPP targets) ----
		edges := make([]ir.Val, 0, points/16)
		for i := 0; i < points/16; i++ {
			e := a.Malloc(12)
			a.Store(vsEdge, e, voOrig, ir.Imm(r.next()))
			edges = append(edges, e)
		}
		for i := 0; i+1 < len(edges); i++ {
			a.Store(vsEdge+1, edges[i], voNext, edges[i+1])
		}

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, vsQueue, 0, p.interval(), voJump)
		}

		// Recursive divide-and-conquer sweeps: each level reads the
		// whole array span (merge-sort-like traffic).
		var sweep func(lo, hi int)
		sweep = func(lo, hi int) {
			if hi-lo < 64 {
				for i := lo; i < hi; i++ {
					x := a.LoadGlobal(vsSort, 0x10000+uint32(8*i))
					y := a.LoadGlobal(vsSort+1, 0x10000+uint32(8*i+4))
					m := a.Op(vsSort+2, ir.FpMult, x.U32()^y.U32(), x, y)
					a.Op(vsSort+3, ir.FpAdd, m.U32(), m, x)
					a.Branch(vsSort+4, i+1 < hi, vsSort, m, ir.Val{})
				}
				return
			}
			mid := (lo + hi) / 2
			sweep(lo, mid)
			sweep(mid, hi)
			// Merge pass: stream both halves (array misses).
			for i := lo; i < hi; i += 2 {
				x := a.LoadGlobal(vsMerge, 0x10000+uint32(8*i))
				a.Op(vsMerge+1, ir.IntAlu, x.U32()+1, x, ir.Val{})
			}
		}
		sweep(0, points)

		// Edge-list walks (small LDS): where the idiom code lands.
		for pass := 0; pass < 3; pass++ {
			cur := edges[0]
			for i := 0; i < len(edges); i++ {
				if idiom == core.IdiomQueue {
					if coop && p.prefetchOn() {
						a.Prefetch(vsIdiom, cur, voJump, ir.FJumpChase)
					} else if p.prefetchOn() {
						a.Overhead(func() {
							j := a.Load(vsIdiom, cur, voJump, 0)
							a.Prefetch(vsIdiom+1, j, 0, 0)
						})
					}
					queue.Visit(cur)
				}
				o := a.Load(vsEdge+2, cur, voOrig, ir.FLDS)
				a.Alu(vsEdge+3, o.U32()^5, o, ir.Val{})
				nx := a.Load(vsEdge+4, cur, voNext, ir.FLDS)
				a.Branch(vsEdge+5, i+1 < len(edges), vsEdge+2, nx, ir.Val{})
				if nx.IsNil() {
					break
				}
				cur = nx
			}
		}
	}
}
