package olden

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// bh is a Barnes-Hut N-body force solver: bodies live on a linked list
// (a queue-jumpable backbone), but the dominant work is the per-body
// force walk over an octree whose descent is data dependent (the cell
// opening criterion), which jump-pointers cannot anticipate.  Table 1
// classifies bh as backbone-only/queue jumping; §4.2 groups it with the
// programs whose structure limits what any prefetching can do.
//
// Cell layout: mass(0) pos(4) child0..7(8..36) = 40 -> class 64.
// Body layout: mass(0) pos(4) vel(8) acc(12) next(16) = 20 -> class 32.
const (
	bhMass  = 0
	bhPos   = 4
	bhChild = 8

	bhBPos  = 4
	bhBNext = 16
	bhBJump = 20
)

const (
	bhBuild = ir.FirstUserSite + iota*10
	bhLoop
	bhForce
	bhIdiom
	bhQueue
)

func init() {
	register(&Benchmark{
		Name:        "bh",
		Description: "Barnes-Hut N-body force computation",
		Structures:  "body list (backbone) + octree with data-dependent descent",
		Behavior:    "force walks prune unpredictably; list is queue-jumpable",
		Idioms:      []core.Idiom{core.IdiomQueue},
		Traversals:  2,
		Kernel:      bhKernel,
	})
}

type bhCfg struct {
	bodies int
	depth  int
	steps  int
}

func bhSizes(s Size) bhCfg {
	switch s {
	case SizeTest:
		return bhCfg{bodies: 16, depth: 2, steps: 1}
	case SizeSmall:
		return bhCfg{bodies: 256, depth: 4, steps: 1}
	case SizeLarge:
		// ~4x the full tree: ~19K cells x 64B = ~1.2MB, past the L2.
		return bhCfg{bodies: 5600, depth: 6, steps: 2}
	default:
		// ~4.7K cells x 64B = 300KB tree + 1.4K bodies x 32B.
		return bhCfg{bodies: 1400, depth: 5, steps: 2}
	}
}

func bhKernel(p Params) func(*ir.Asm) {
	cfg := bhSizes(p.Size)
	idiom := p.swIdiom(core.IdiomQueue)
	coop := p.coop()

	return func(a *ir.Asm) {
		r := newRNG(0xda3e39cb)

		// ---- bodies on a linked list ----
		bodies := make([]ir.Val, cfg.bodies)
		for i := range bodies {
			bodies[i] = a.Malloc(20)
			a.Store(bhBuild, bodies[i], bhMass, ir.Imm(r.next()%100+1))
			a.Store(bhBuild+1, bodies[i], bhBPos, ir.Imm(r.next()%4096))
		}
		for i := 0; i+1 < len(bodies); i++ {
			a.Store(bhBuild+2, bodies[i], bhBNext, bodies[i+1])
		}

		// ---- octree (random occupancy, depth-limited) ----
		var buildCell func(d int) ir.Val
		buildCell = func(d int) ir.Val {
			c := a.Malloc(40)
			a.Store(bhBuild+3, c, bhMass, ir.Imm(r.next()%1000+1))
			a.Store(bhBuild+4, c, bhPos, ir.Imm(r.next()%4096))
			if d > 0 {
				for q := 0; q < 8; q++ {
					if r.intn(3) != 0 { // sparse occupancy
						continue
					}
					ch := buildCell(d - 1)
					a.Store(bhBuild+5, c, uint32(bhChild+4*q), ch)
				}
			}
			return c
		}
		tree := buildCell(cfg.depth)

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, bhQueue, 0, p.interval(), bhBJump)
		}

		// Force walk: descend while the opening criterion (distance vs
		// cell size, here data-dependent arithmetic) demands it.
		var gravSub func(body, cell ir.Val, bp uint32, d int) ir.Val
		gravSub = func(body, cell ir.Val, bp uint32, d int) ir.Val {
			m := a.Load(bhForce, cell, bhMass, ir.FLDS)
			cp := a.Load(bhForce+1, cell, bhPos, ir.FLDS)
			dx := a.Alu(bhForce+2, cp.U32()-bp, cp, ir.Val{})
			open := d > 0 && (dx.U32()%7 < 3)
			a.Branch(bhForce+3, open, bhForce+5, dx, m)
			if !open {
				// Treat the cell as a point mass.
				f := a.Op(bhForce+4, ir.FpMult, m.U32()^dx.U32(), m, dx)
				a.Ret(bhIdiom + 2)
				return f
			}
			acc := ir.Val{}
			for q := 0; q < 8; q++ {
				ch := a.Load(bhForce+5, cell, uint32(bhChild+4*q), ir.FLDS)
				if ch.IsNil() {
					continue
				}
				a.Push(bhForce+6, acc)
				a.Call(bhForce+7, bhForce)
				f := gravSub(body, ch, bp, d-1)
				acc = a.Pop(bhForce + 8)
				acc = a.Op(bhIdiom+3, ir.FpAdd, acc.U32()+f.U32(), acc, f)
			}
			a.Ret(bhIdiom + 4)
			return acc
		}

		for step := 0; step < cfg.steps; step++ {
			body := bodies[0]
			for i := range bodies {
				if idiom == core.IdiomQueue {
					if coop && p.prefetchOn() {
						a.Prefetch(bhIdiom, body, bhBJump, ir.FJumpChase)
					} else if p.prefetchOn() {
						a.Overhead(func() {
							j := a.Load(bhIdiom, body, bhBJump, 0)
							a.Prefetch(bhIdiom+1, j, 0, 0)
						})
					}
					queue.Visit(body)
				}
				bp := a.Load(bhLoop, body, bhBPos, ir.FLDS)
				f := gravSub(body, tree, bp.U32(), cfg.depth)
				a.Store(bhLoop+1, body, 12, f)
				nx := a.Load(bhLoop+2, body, bhBNext, ir.FLDS)
				a.Branch(bhLoop+3, i+1 < len(bodies), bhLoop, nx, ir.Val{})
				if nx.IsNil() {
					break
				}
				body = nx
			}
		}
	}
}
