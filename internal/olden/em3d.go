package olden

import (
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/ir"
)

// em3d models electromagnetic wave propagation on a bipartite graph of
// E-field and H-field nodes.  compute_nodes walks each side's node list
// (the backbone) and, for every node, gathers values through an array
// of pointers to nodes of the other side (the ribs), scaling them by a
// coefficient array.
//
// The paper's characterization: backbone-and-ribs; the rib loads access
// pointer arrays stored at every node, which makes explicit software
// full jumping costly (one jump-pointer per array slot), so the best
// software solution is queue jumping on the backbone, letting hardware
// chain-prefetch the arrays in the cooperative scheme (§4.1).  With ~100
// traversals in the original, hardware JPP beats software here (§4.2).
//
// Node layout (emK = 4 from-pointers):
//
//	value(0) next(4) count(8) coeff[6](12..32) from[6](36..56)
//	= payload 60 -> class 64; the jump slot is the padding word at 60
const (
	emValue = 0
	emNext  = 4
	emCoeff = 12
	emFrom  = 36
	emJump  = 60

	emK = 6
)

const (
	esBuild = ir.FirstUserSite + iota*12
	esWalk
	esGather
	esIdiom
	// esQueue spans core.SWJumpQueueSitesFor(emK) sites (full jumping
	// passes emK extra rib stores); it is the last block, so exceeding
	// the 12-site stride is safe.
	esQueue
)

func init() {
	register(&Benchmark{
		Name:        "em3d",
		Description: "electromagnetic wave propagation on a bipartite graph",
		Structures:  "two linked node lists + per-node pointer arrays (backbone-and-ribs)",
		Behavior:    "static structure, traversed ~100 times",
		Idioms:      []core.Idiom{core.IdiomQueue, core.IdiomFull},
		Traversals:  100,
		Kernel:      em3dKernel,
	})
}

type em3dCfg struct {
	nodes int // per side
	iters int
}

func em3dSizes(s Size) em3dCfg {
	switch s {
	case SizeTest:
		return em3dCfg{nodes: 24, iters: 2}
	case SizeSmall:
		return em3dCfg{nodes: 400, iters: 4}
	case SizeLarge:
		// 2 x 5000 nodes x 64B = ~640KB: past the L2, so the backbone
		// chase misses to memory every iteration.
		return em3dCfg{nodes: 5000, iters: 10}
	default:
		// 2 x 1600 nodes x 64B = ~200KB: >> L1, L2-resident; the fat
		// per-node gather loop keeps the 64-entry window from hiding
		// the backbone chain on its own.
		return em3dCfg{nodes: 1600, iters: 10}
	}
}

func em3dKernel(p Params) func(*ir.Asm) {
	cfg := em3dSizes(p.Size)
	idiom := p.swIdiom(core.IdiomQueue)
	coop := p.coop()
	// Full jumping needs a jump slot per from-pointer beyond the block's
	// padding, doubling the block class — the footprint cost the paper
	// measures as a distinct-block increase on em3d (§3.1).
	nodeBytes := uint32(60)
	if idiom == core.IdiomFull {
		nodeBytes = 64 + 4*emK
	}

	return func(a *ir.Asm) {
		r := newRNG(0x517cc1b7)

		// ---- build both sides ----
		buildSide := func(arena heap.ArenaID) []ir.Val {
			nodes := make([]ir.Val, cfg.nodes)
			for i := range nodes {
				nodes[i] = a.MallocIn(arena, nodeBytes)
				a.Store(esBuild, nodes[i], emValue, ir.Imm(r.next()%1000))
			}
			for i := 0; i+1 < len(nodes); i++ {
				a.Store(esBuild+1, nodes[i], emNext, nodes[i+1])
			}
			return nodes
		}
		eArena, hArena := a.Heap().NewArena(), a.Heap().NewArena()
		eNodes := buildSide(eArena)
		hNodes := buildSide(hArena)
		link := func(from, to []ir.Val) {
			for _, n := range from {
				for k := 0; k < emK; k++ {
					t := to[r.intn(len(to))]
					a.Store(esBuild+2, n, uint32(emFrom+4*k), t)
					a.Store(esBuild+3, n, uint32(emCoeff+4*k), ir.Imm(r.next()%100))
				}
			}
		}
		link(eNodes, hNodes)
		link(hNodes, eNodes)

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue || idiom == core.IdiomFull {
			queue = core.NewSWJumpQueue(a, esQueue, 0, p.interval(), emJump)
		}

		// ---- compute_nodes over one side ----
		computeSide := func(head ir.Val, n int) {
			node := head
			for i := 0; i < n; i++ {
				// Prefetching idiom at loop top.
				switch idiom {
				case core.IdiomQueue:
					if coop && p.prefetchOn() {
						a.Prefetch(esIdiom, node, emJump, ir.FJumpChase)
					} else if p.prefetchOn() {
						a.Overhead(func() {
							j := a.Load(esIdiom, node, emJump, 0)
							a.Prefetch(esIdiom+1, j, 0, 0)
							a.Prefetch(esIdiom+6, j, 32, 0)
						})
					}
				case core.IdiomFull:
					if coop && p.prefetchOn() {
						a.Prefetch(esIdiom, node, emJump, ir.FJumpChase)
						for k := 0; k < emK; k++ {
							a.Prefetch(esIdiom+2, node, uint32(64+4*k), ir.FJumpChase)
						}
					} else if p.prefetchOn() {
						a.Overhead(func() {
							j := a.Load(esIdiom, node, emJump, 0)
							a.Prefetch(esIdiom+1, j, 0, 0)
							for k := 0; k < emK; k++ {
								jr := a.Load(esIdiom+3, node, uint32(64+4*k), 0)
								a.Prefetch(esIdiom+4, jr, 0, 0)
							}
						})
					}
				}

				// value = sum_k coeff[k] * from[k]->value
				acc := a.Load(esWalk, node, emValue, ir.FLDS)
				for k := 0; k < emK; k++ {
					from := a.Load(esGather, node, uint32(emFrom+4*k), ir.FLDS)
					fv := a.Load(esGather+1, from, emValue, ir.FLDS)
					cf := a.Load(esGather+2, node, uint32(emCoeff+4*k), ir.FLDS)
					m := a.Op(esGather+3, ir.FpMult, fv.U32()^cf.U32(), fv, cf)
					acc = a.Op(esGather+4, ir.FpAdd, acc.U32()-m.U32(), acc, m)
				}
				a.Store(esWalk+1, node, emValue, acc)

				var ribs []core.FieldStore
				if queue != nil && idiom == core.IdiomFull {
					// Install jump-pointers for every from-pointer of
					// this node alongside the backbone pointer.
					for k := 0; k < emK; k++ {
						fr := a.Load(esIdiom+5, node, uint32(emFrom+4*k), ir.FLDS)
						ribs = append(ribs, core.FieldStore{Off: uint32(64 + 4*k), Val: fr})
					}
				}
				if queue != nil {
					queue.Visit(node, ribs...)
				}

				nxt := a.Load(esWalk+2, node, emNext, ir.FLDS)
				a.Branch(esWalk+3, i+1 < n, esWalk, nxt, ir.Val{})
				node = nxt
			}
		}

		for it := 0; it < cfg.iters; it++ {
			computeSide(eNodes[0], len(eNodes))
			computeSide(hNodes[0], len(hNodes))
		}
	}
}
