package olden

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// spmv is an extension workload (paper §6: "jump-pointer prefetching
// may be generalized to other classes of data structures with
// serialized access idioms, like sparse matrices ...").
//
// It computes y = A*x repeatedly over a sparse matrix stored in linked
// form: each row is a chain of element nodes (the representation of
// sparse codes that mutate their structure, e.g. fill-in during
// factorization).  Element-chain traversal is the serialized backbone;
// the x-vector gathers indexed by column are the ribs.  Queue jumping
// threads the element chains; the cooperative scheme lets the hardware
// chain the x gathers.
//
// Element layout: value(0) col(4) next(8) = 12 -> class 16, jump at 12.
const (
	svValue = 0
	svCol   = 4
	svNext  = 8
	svJump  = 12
)

const (
	svBuild = ir.FirstUserSite + iota*10
	svRow
	svElem
	svIdiom
	svQueue
)

func init() {
	register(&Benchmark{
		Name:        "spmv",
		Description: "sparse matrix-vector product over linked element rows (extension)",
		Structures:  "per-row element chains + dense x/y vectors",
		Behavior:    "row chains serialize; x gathers are data dependent",
		Idioms:      []core.Idiom{core.IdiomQueue},
		Traversals:  12,
		Extension:   true,
		Kernel:      spmvKernel,
	})
}

type spmvCfg struct {
	rows, nnzPerRow, iters int
}

func spmvSizes(s Size) spmvCfg {
	switch s {
	case SizeTest:
		return spmvCfg{rows: 16, nnzPerRow: 4, iters: 2}
	case SizeSmall:
		return spmvCfg{rows: 512, nnzPerRow: 8, iters: 4}
	case SizeLarge:
		// 6K rows x 16 elements x 16B = ~1.5MB of element chains.
		return spmvCfg{rows: 6 << 10, nnzPerRow: 16, iters: 10}
	default:
		// 2K rows x 12 elements x 16B = ~400KB of element chains.
		return spmvCfg{rows: 2 << 10, nnzPerRow: 12, iters: 10}
	}
}

func spmvKernel(p Params) func(*ir.Asm) {
	cfg := spmvSizes(p.Size)
	idiom := p.swIdiom(core.IdiomQueue)
	coop := p.coop()

	return func(a *ir.Asm) {
		r := newRNG(0x1b873593)

		// Dense vectors in the global data area.
		xBase := uint32(0x2000)
		yBase := xBase + uint32(4*cfg.rows)
		for i := 0; i < cfg.rows; i++ {
			a.StoreGlobal(svBuild, xBase+uint32(4*i), ir.Imm(r.next()%100))
		}

		// Row chains, one arena per row band for page locality.  Rows
		// are scattered within their band (the fill-in steady state).
		rowHeads := make([]ir.Val, cfg.rows)
		band := a.Heap().NewArena()
		for i := range rowHeads {
			if i%64 == 0 {
				band = a.Heap().NewArena()
			}
			var head ir.Val
			for e := 0; e < cfg.nnzPerRow; e++ {
				n := a.MallocIn(band, 12)
				a.Store(svBuild+1, n, svValue, ir.Imm(r.next()%50+1))
				// col holds the byte offset into x (index*4), the form
				// compiled code keeps for indexed addressing.
				a.Store(svBuild+2, n, svCol, ir.Imm(uint32(4*r.intn(cfg.rows))))
				a.Store(svBuild+3, n, svNext, head)
				head = n
			}
			rowHeads[i] = head
		}

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, svQueue, 0, p.interval(), svJump)
		}

		// ---- y = A*x, iterated ----
		for it := 0; it < cfg.iters; it++ {
			for i := 0; i < cfg.rows; i++ {
				acc := ir.Val{}
				e := rowHeads[i]
				for !e.IsNil() {
					if idiom == core.IdiomQueue {
						if coop && p.prefetchOn() {
							a.Prefetch(svIdiom, e, svJump, ir.FJumpChase)
						} else if p.prefetchOn() {
							a.Overhead(func() {
								j := a.Load(svIdiom, e, svJump, 0)
								a.Prefetch(svIdiom+1, j, 0, 0)
							})
						}
						queue.Visit(e)
					}
					v := a.Load(svElem, e, svValue, ir.FLDS)
					col := a.Load(svElem+1, e, svCol, ir.FLDS)
					x := a.LoadIdx(svElem+2, ir.Imm(ir.GlobalBase+xBase), col, 0, 0)
					m := a.Op(svElem+3, ir.FpMult, v.U32()*x.U32(), v, x)
					acc = a.Op(svElem+4, ir.FpAdd, acc.U32()+m.U32(), acc, m)
					nxt := a.Load(svElem+5, e, svNext, ir.FLDS)
					a.Branch(svElem+6, !nxt.IsNil(), svElem, nxt, ir.Val{})
					e = nxt
				}
				a.StoreGlobal(svRow, yBase+uint32(4*i), acc)
			}
		}
	}
}
