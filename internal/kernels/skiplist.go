package kernels

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// skiplist models a classic probabilistic skip list: towers of forward
// pointers with geometrically distributed heights (p = 1/4, capped at
// slMaxLevel).  Descents from the top level are short, branchy chases
// the paper's schemes cannot help much; the level-0 backbone scans that
// follow each batch of inserts are long serialized traversals where
// queue jumping shines.  Inserts splice at every level, so the backbone
// keeps acquiring nodes between scans.
//
// Layout (payload bytes; blocks round to power-of-two classes):
//
//	node: key(0) height(4) val(8) fwd[8](12..40) [jump(44)] = 44 -> 64
const (
	slKey    = 0
	slHeight = 4
	slVal    = 8
	slFwd0   = 12
	slJump   = 44

	slMaxLevel = 8
)

// Static sites for skiplist.
const (
	slBuild = ir.FirstUserSite + iota*8
	slDesc
	slSplice
	slScan
	slScan2
	slIdiom
	slQueue // SWJumpQueueSites
)

func init() {
	Register(&Benchmark{
		Name:        "skiplist",
		Description: "probabilistic skip list with descents and backbone scans",
		Structures:  "level-0 backbone + geometric towers of forward pointers",
		Behavior:    "branchy descents, long level-0 scans, insert splices",
		Idioms:      []core.Idiom{core.IdiomQueue},
		Traversals:  12,
		Extension:   true,
		Kernel:      skiplistKernel,
	})
}

type skiplistCfg struct {
	nodes    int // total inserts
	batches  int // insert batches (one backbone scan after each)
	searches int // descents per batch
}

func skiplistSizes(s Size) skiplistCfg {
	switch s {
	case SizeTest:
		return skiplistCfg{nodes: 48, batches: 2, searches: 16}
	case SizeSmall:
		return skiplistCfg{nodes: 2048, batches: 4, searches: 256}
	case SizeLarge:
		// 20K x 64B = ~1.3MB of nodes: well past the L2.
		return skiplistCfg{nodes: 20000, batches: 8, searches: 1500}
	default:
		// 8K x 64B = ~512KB of nodes: far beyond the L1, filling the
		// 512KB L2, so backbone scans miss all the way down.
		return skiplistCfg{nodes: 8000, batches: 8, searches: 1500}
	}
}

func skiplistKernel(p Params) func(*ir.Asm) {
	cfg := skiplistSizes(p.Size)
	idiom := swIdiom(p, core.IdiomQueue)
	isCoop := coop(p)

	return func(a *ir.Asm) {
		r := newRNG(0x85ebca6b)

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, slQueue, 0, interval(p), slJump)
		}

		// Head node: key 0 (smaller than any real key), full height.
		head := a.Malloc(44)
		a.Store(slBuild, head, slHeight, ir.Imm(slMaxLevel))

		// randHeight draws a geometric (p = 1/4) height in
		// [1, slMaxLevel].
		randHeight := func() int {
			h := 1
			for h < slMaxLevel && r.next()&3 == 0 {
				h++
			}
			return h
		}

		// descend walks from the top level down to level 0, returning
		// the per-level predecessors of key.  Every pointer hop is an
		// emitted LDS load with a data-dependent branch, the access
		// shape the validate generator's skip-descent idiom mirrors.
		descend := func(key uint32) [slMaxLevel]ir.Val {
			var pred [slMaxLevel]ir.Val
			cur := head
			for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
				off := uint32(slFwd0 + 4*lvl)
				for {
					nxt := a.Load(slDesc, cur, off, ir.FLDS)
					if nxt.IsNil() {
						a.Branch(slDesc+1, false, slDesc, nxt, ir.Imm(key))
						break
					}
					k := a.Load(slDesc+2, nxt, slKey, ir.FLDS)
					fwd := k.U32() < key
					a.Branch(slDesc+1, fwd, slDesc, k, ir.Imm(key))
					if !fwd {
						break
					}
					cur = nxt
				}
				pred[lvl] = cur
			}
			return pred
		}

		insert := func(key uint32) {
			pred := descend(key)
			h := randHeight()
			n := a.Malloc(44)
			a.Store(slSplice, n, slKey, ir.Imm(key))
			a.Store(slSplice+1, n, slHeight, ir.Imm(uint32(h)))
			a.Store(slSplice+2, n, slVal, ir.Imm(key^0x9e37))
			for lvl := 0; lvl < h; lvl++ {
				off := uint32(slFwd0 + 4*lvl)
				nxt := a.Load(slSplice+3, pred[lvl], off, ir.FLDS)
				a.Store(slSplice+4, n, off, nxt)
				a.Store(slSplice+5, pred[lvl], off, n)
			}
		}

		search := func(key uint32) {
			pred := descend(key)
			nxt := a.Load(slScan2, pred[0], slFwd0, ir.FLDS)
			if nxt.IsNil() {
				return
			}
			v := a.Load(slScan2+1, nxt, slVal, ir.FLDS)
			acc := a.LoadGlobal(slScan2+2, accBase)
			a.StoreGlobal(slScan2+3, accBase, a.Alu(slScan2+4, acc.U32()+v.U32(), acc, v))
		}

		// scan walks the whole level-0 backbone accumulating values:
		// the serialized traversal the queue method installs and chases
		// jump pointers along.
		scan := func() {
			cur := a.Load(slScan, head, slFwd0, ir.FLDS)
			sum := ir.Imm(0)
			for !cur.IsNil() {
				if prefetchOn(p) && idiom == core.IdiomQueue {
					queuePrefetch(a, slIdiom, cur, slJump, isCoop)
				}
				v := a.Load(slScan+1, cur, slVal, ir.FLDS)
				sum = a.Alu(slScan+2, sum.U32()+v.U32(), sum, v)
				if queue != nil {
					queue.Visit(cur)
				}
				nxt := a.Load(slScan+3, cur, slFwd0, ir.FLDS)
				a.Branch(slScan+4, !nxt.IsNil(), slScan+1, nxt, ir.Val{})
				cur = nxt
			}
			acc := a.LoadGlobal(slScan+5, accBase+4)
			a.StoreGlobal(slScan+6, accBase+4, a.Alu(slScan+7, acc.U32()+sum.U32(), acc, sum))
		}

		perBatch := cfg.nodes / cfg.batches
		nextKey := func() uint32 { return r.next()%0xFFFF_FFF0 + 8 }
		for b := 0; b < cfg.batches; b++ {
			for i := 0; i < perBatch; i++ {
				insert(nextKey())
			}
			for i := 0; i < cfg.searches; i++ {
				search(nextKey())
			}
			scan()
		}
	}
}
