package kernels

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// quicklist models a QuickList (SNIPPETS.md snippet 3): a singly-linked
// list whose nodes carry a skip pointer to the node `interval` links
// ahead, maintained by the data structure itself — appended during
// construction and re-pointed on every insert and remove.  Because the
// skip field is architectural state written under every scheme, the
// software and cooperative schemes need no creation idiom at all: the
// prefetch simply chases a pointer the program keeps correct anyway,
// so the paper's "a priori creation overhead" is zero and the only
// cost is the maintenance the structure already pays.
//
// Layout (payload bytes; blocks round to power-of-two classes):
//
//	node: val(0) next(4) skip(8) = 12 -> 16
const (
	qlVal  = 0
	qlNext = 4
	qlSkip = 8
)

// Static sites for quicklist.
const (
	qlBuild = ir.FirstUserSite + iota*8
	qlWalk
	qlChurn
	qlFix
	qlIdiom
)

func init() {
	Register(&Benchmark{
		Name:        "quicklist",
		Description: "list that maintains its own jump pointers (QuickList)",
		Structures:  "singly-linked list + structural skip pointers",
		Behavior:    "full walks between insert/remove churn; zero creation idiom",
		Idioms:      []core.Idiom{core.IdiomChain},
		Traversals:  8,
		Extension:   true,
		Kernel:      quicklistKernel,
	})
}

type quicklistCfg struct {
	nodes  int
	rounds int // walk + churn rounds
	churn  int // insert/remove pairs per round
}

func quicklistSizes(s Size) quicklistCfg {
	switch s {
	case SizeTest:
		return quicklistCfg{nodes: 48, rounds: 2, churn: 6}
	case SizeSmall:
		return quicklistCfg{nodes: 2048, rounds: 3, churn: 128}
	case SizeLarge:
		// 64K x 16B = 1MB of nodes: well past the L2.
		return quicklistCfg{nodes: 64000, rounds: 4, churn: 4000}
	default:
		// 24K x 16B = 384KB of nodes: far beyond the L1, most of the
		// way into the L2.
		return quicklistCfg{nodes: 24000, rounds: 4, churn: 1500}
	}
}

func quicklistKernel(p Params) func(*ir.Asm) {
	cfg := quicklistSizes(p.Size)
	idiom := swIdiom(p, core.IdiomChain)
	isCoop := coop(p)
	dist := interval(p) // structural skip distance

	return func(a *ir.Asm) {
		r := newRNG(0x45d9f3b3)

		// order mirrors the list so churn knows each node's position;
		// every link and skip mutation is still emitted.
		var order []ir.Val

		// fixSkips re-points the skip fields of the dist nodes ending
		// at position pos (a real QuickList carries this lag window in
		// its jump list; the snippet's left/right pointer shifts do the
		// same work).  Each re-point is one emitted store; targets past
		// the tail clear the field.
		fixSkips := func(pos int) {
			for j := pos; j >= pos-dist && j >= 0; j-- {
				tgt := ir.Imm(0)
				if j+dist < len(order) {
					tgt = order[j+dist]
				}
				a.Store(qlFix, order[j], qlSkip, tgt)
			}
		}

		// Build: append nodes, installing each skip pointer as soon as
		// its target exists — construction maintains the structure.
		for i := 0; i < cfg.nodes; i++ {
			n := a.Malloc(12)
			a.Store(qlBuild, n, qlVal, ir.Imm(r.next()&0xFFFF))
			if i > 0 {
				a.Store(qlBuild+1, order[i-1], qlNext, n)
			}
			order = append(order, n)
			if i >= dist {
				a.Store(qlBuild+2, order[i-dist], qlSkip, n)
			}
		}

		// walk chases the whole list; under the software schemes each
		// visit prefetches through the structural skip field (no
		// creation code, no jump queue).
		walk := func() {
			cur := order[0]
			sum := ir.Imm(0)
			for !cur.IsNil() {
				if prefetchOn(p) && idiom != core.IdiomNone {
					queuePrefetch(a, qlIdiom, cur, qlSkip, isCoop)
				}
				v := a.Load(qlWalk, cur, qlVal, ir.FLDS)
				sum = a.Alu(qlWalk+1, sum.U32()+v.U32(), sum, v)
				nxt := a.Load(qlWalk+2, cur, qlNext, ir.FLDS)
				a.Branch(qlWalk+3, !nxt.IsNil(), qlWalk, nxt, ir.Val{})
				cur = nxt
			}
			acc := a.LoadGlobal(qlWalk+4, accBase)
			a.StoreGlobal(qlWalk+5, accBase, a.Alu(qlWalk+6, acc.U32()+sum.U32(), acc, sum))
		}

		insertAt := func(pos int) {
			n := a.Malloc(12)
			a.Store(qlChurn, n, qlVal, ir.Imm(r.next()&0xFFFF))
			prev := order[pos]
			nxt := a.Load(qlChurn+1, prev, qlNext, ir.FLDS)
			a.Store(qlChurn+2, n, qlNext, nxt)
			a.Store(qlChurn+3, prev, qlNext, n)
			order = append(order, ir.Val{})
			copy(order[pos+2:], order[pos+1:])
			order[pos+1] = n
			fixSkips(pos + 1)
		}

		removeAt := func(pos int) {
			victim := order[pos]
			prev := order[pos-1]
			nxt := a.Load(qlChurn+4, victim, qlNext, ir.FLDS)
			a.Store(qlChurn+5, prev, qlNext, nxt)
			a.FreeNode(victim)
			copy(order[pos:], order[pos+1:])
			order = order[:len(order)-1]
			fixSkips(pos - 1)
		}

		for round := 0; round < cfg.rounds; round++ {
			walk()
			for c := 0; c < cfg.churn; c++ {
				insertAt(r.intn(len(order) - 1))
				removeAt(r.intn(len(order)-2) + 1)
			}
		}
	}
}
