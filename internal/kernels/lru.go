package kernels

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// lru models a fixed-capacity LRU cache: a hash index over a doubly
// linked recency list.  Every hit unlinks the node and splices it at
// the head; every miss evicts the tail and admits a fresh node.  This
// is the paper's volatile-LDS worst case: periodic "aging" scans walk
// the recency list and install jump pointers along it, but the zipf get
// stream reorders the list continuously, so by the next scan the
// pointers describe a recency order that no longer exists.  Coverage
// stays high (the pointers still name resident nodes) while accuracy
// and timeliness collapse — the degradation §6 predicts.
//
// Layout (payload bytes; blocks round to power-of-two classes):
//
//	node: key(0) val(4) prev(8) next(12) hnext(16) [jump(20)] = 20 -> 32
const (
	luKey   = 0
	luVal   = 4
	luPrev  = 8
	luNext  = 12
	luHNext = 16
	luJump  = 20

	// Global-data offsets for the list head/tail anchors.
	luHeadOff = accBase + 8
	luTailOff = accBase + 12
)

// Static sites for lru.
const (
	luBuild = ir.FirstUserSite + iota*8
	luHash
	luGet
	luHit
	luProm
	luEvict
	luIns
	luScan
	luIdiom
	luQueue // SWJumpQueueSites
)

func init() {
	Register(&Benchmark{
		Name:        "lru",
		Description: "LRU cache under a zipf get stream (volatile LDS)",
		Structures:  "hash index over a doubly-linked recency list",
		Behavior:    "every hit promotes, every miss evicts: jump pointers rot",
		Idioms:      []core.Idiom{core.IdiomQueue},
		Traversals:  10,
		Extension:   true,
		Kernel:      lruKernel,
	})
}

type lruCfg struct {
	capacity int
	buckets  int // hash directory size (power of two)
	keyspace int
	gets     int
	scanEach int // aging scan period, in gets
}

func lruSizes(s Size) lruCfg {
	switch s {
	case SizeTest:
		return lruCfg{capacity: 24, buckets: 8, keyspace: 72, gets: 96, scanEach: 32}
	case SizeSmall:
		return lruCfg{capacity: 1024, buckets: 256, keyspace: 3072, gets: 4096, scanEach: 1024}
	case SizeLarge:
		// 32K x 32B = 1MB of resident nodes: well past the L2.
		return lruCfg{capacity: 32000, buckets: 8192, keyspace: 96000, gets: 60000, scanEach: 6000}
	default:
		// 12K x 32B = ~384KB of resident nodes plus a 16KB directory:
		// far beyond the L1, most of the way into the L2.
		return lruCfg{capacity: 12000, buckets: 4096, keyspace: 36000, gets: 40000, scanEach: 4000}
	}
}

// lruNode mirrors one resident entry so list surgery knows its
// neighbours without re-deriving them; the pointer loads and stores a
// real implementation performs are still emitted.
type lruNode struct {
	addr       ir.Val
	key        uint32
	prev, next *lruNode
	hnext      *lruNode
}

// lruBucket mirrors the emitted hashMix chain in Go.
func lruBucket(key, mask uint32) uint32 {
	h1 := key * 2654435761
	return (h1 ^ (h1 >> 13)) & mask
}

func lruKernel(p Params) func(*ir.Asm) {
	cfg := lruSizes(p.Size)
	idiom := swIdiom(p, core.IdiomQueue)
	isCoop := coop(p)

	return func(a *ir.Asm) {
		r := newRNG(0x27d4eb2f)

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, luQueue, 0, interval(p), luJump)
		}

		dir := a.Malloc(uint32(cfg.buckets) * 4)
		mask := uint32(cfg.buckets - 1)
		byKey := map[uint32]*lruNode{}
		chains := map[uint32]*lruNode{} // bucket index -> chain head
		var head, tail *lruNode
		count := 0

		bucketOff := func(key ir.Val) uint32 {
			h := hashMix(a, luHash, key)
			idx := a.Alu(luHash+3, h.U32()&uint32(cfg.buckets-1), h, ir.Imm(uint32(cfg.buckets-1)))
			return idx.U32() * 4
		}

		// promote splices node n to the head of the recency list — the
		// mutation that invalidates the aging scan's jump pointers.
		promote := func(n *lruNode) {
			isHead := n == head
			a.Branch(luProm, isHead, luHit, n.addr, ir.Val{})
			if isHead {
				return
			}
			pv := a.Load(luProm+1, n.addr, luPrev, ir.FLDS)
			nx := a.Load(luProm+2, n.addr, luNext, ir.FLDS)
			a.Store(luProm+3, pv, luNext, nx)
			if n.next == nil {
				a.StoreGlobal(luProm+4, luTailOff, pv)
				tail = n.prev
			} else {
				a.Store(luProm+4, nx, luPrev, pv)
				n.next.prev = n.prev
			}
			n.prev.next = n.next
			oldHead := a.LoadGlobal(luProm+5, luHeadOff)
			a.Store(luProm+6, n.addr, luPrev, ir.Imm(0))
			a.Store(luProm+7, n.addr, luNext, oldHead)
			a.Store(luHit+6, oldHead, luPrev, n.addr)
			a.StoreGlobal(luHit+7, luHeadOff, n.addr)
			n.prev, n.next = nil, head
			head.prev = n
			head = n
		}

		// evict drops the tail: unlink from the recency list, then walk
		// its hash chain to unlink it there too, then free the block.
		evict := func() {
			t := a.LoadGlobal(luEvict, luTailOff)
			pv := a.Load(luEvict+1, t, luPrev, ir.FLDS)
			a.Store(luEvict+2, pv, luNext, ir.Imm(0))
			a.StoreGlobal(luEvict+3, luTailOff, pv)
			victim := tail
			tail = tail.prev
			tail.next = nil

			key := a.Load(luEvict+4, t, luKey, ir.FLDS)
			off := bucketOff(key)
			b := lruBucket(victim.key, mask)
			e := a.Load(luEvict+5, dir, off, ir.FLDS)
			if chains[b] == victim {
				hn := a.Load(luEvict+6, t, luHNext, ir.FLDS)
				a.Store(luEvict+7, dir, off, hn)
				chains[b] = victim.hnext
			} else {
				// Walk to the chain predecessor, then unlink.
				pred := chains[b]
				cur := e
				for {
					hn := a.Load(luGet+5, cur, luHNext, ir.FLDS)
					found := pred.hnext == victim
					a.Branch(luGet+6, found, luBuild+3, hn, t)
					if found {
						vn := a.Load(luBuild+3, t, luHNext, ir.FLDS)
						a.Store(luBuild+4, cur, luHNext, vn)
						pred.hnext = victim.hnext
						break
					}
					cur = hn
					pred = pred.hnext
				}
			}
			delete(byKey, victim.key)
			a.FreeNode(t)
			count--
		}

		insert := func(key uint32) {
			n := &lruNode{key: key, addr: a.Malloc(20)}
			a.Store(luIns, n.addr, luKey, ir.Imm(key))
			a.Store(luIns+1, n.addr, luVal, ir.Imm(key*7+3))
			off := bucketOff(ir.Imm(key))
			bh := a.Load(luIns+2, dir, off, ir.FLDS)
			a.Store(luIns+3, n.addr, luHNext, bh)
			a.Store(luIns+4, dir, off, n.addr)
			oldHead := a.LoadGlobal(luIns+5, luHeadOff)
			a.Store(luIns+6, n.addr, luNext, oldHead)
			if head != nil {
				a.Store(luBuild, oldHead, luPrev, n.addr)
			} else {
				a.StoreGlobal(luBuild+1, luTailOff, n.addr)
				tail = n
			}
			a.StoreGlobal(luBuild+2, luHeadOff, n.addr)
			b := lruBucket(key, mask)
			n.hnext = chains[b]
			chains[b] = n
			n.next = head
			if head != nil {
				head.prev = n
			}
			head = n
			byKey[key] = n
			count++
		}

		get := func(key uint32) {
			off := bucketOff(ir.Imm(key))
			e := a.Load(luGet, dir, off, ir.FLDS)
			n := byKey[key]
			for !e.IsNil() {
				k := a.Load(luGet+1, e, luKey, ir.FLDS)
				hit := k.U32() == key
				a.Branch(luGet+2, hit, luHit, k, ir.Imm(key))
				if hit {
					break
				}
				e = a.Load(luGet+3, e, luHNext, ir.FLDS)
				a.Branch(luGet+4, !e.IsNil(), luGet+1, e, ir.Val{})
			}
			if n != nil {
				v := a.Load(luHit, n.addr, luVal, ir.FLDS)
				acc := a.LoadGlobal(luHit+1, accBase)
				a.StoreGlobal(luHit+2, accBase, a.Alu(luHit+3, acc.U32()+v.U32(), acc, v))
				promote(n)
				return
			}
			if count == cfg.capacity {
				evict()
			}
			insert(key)
		}

		// agingScan walks the recency list head to tail, summing values
		// and installing jump pointers along today's recency order.
		agingScan := func() {
			cur := a.LoadGlobal(luScan, luHeadOff)
			sum := ir.Imm(0)
			for !cur.IsNil() {
				if prefetchOn(p) && idiom == core.IdiomQueue {
					queuePrefetch(a, luIdiom, cur, luJump, isCoop)
				}
				v := a.Load(luScan+1, cur, luVal, ir.FLDS)
				sum = a.Alu(luScan+2, sum.U32()+v.U32(), sum, v)
				if queue != nil {
					queue.Visit(cur)
				}
				cur = a.Load(luScan+3, cur, luNext, ir.FLDS)
				a.Branch(luScan+4, !cur.IsNil(), luScan+1, cur, ir.Val{})
			}
			acc := a.LoadGlobal(luScan+5, accBase+4)
			a.StoreGlobal(luScan+6, accBase+4, a.Alu(luScan+7, acc.U32()+sum.U32(), acc, sum))
		}

		z := newZipf(r, cfg.keyspace)
		for i := 0; i < cfg.gets; i++ {
			get(uint32(z.next())*2 + 1)
			if (i+1)%cfg.scanEach == 0 {
				agingScan()
			}
		}
	}
}
