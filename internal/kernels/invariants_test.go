package kernels

import (
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
)

// Structure-invariant tests: each kernel executes for real against the
// simulated heap, then the memory image is walked and checked against
// the structure's defining invariants — skip-list level distribution,
// B+tree node occupancy, LRU eviction order.  The checks run under
// every scheme, and heap.PayloadChecksum pins that no scheme perturbs
// architectural heap state (jump pointers live in block padding, which
// the checksum deliberately excludes).

// runImage drains a kernel and returns the memory image and heap.
func runImage(t *testing.T, name string, p Params) (*mem.Image, *heap.Allocator) {
	t.Helper()
	b, ok := ByName(name)
	if !ok {
		t.Fatalf("kernel %q not registered", name)
	}
	alloc := heap.New(mem.NewImage())
	g := ir.NewGen(alloc, b.Kernel(p))
	for d := g.Next(); d != nil; d = g.Next() {
	}
	return alloc.Image(), alloc
}

// TestStructureInvariants drives every structural check for every
// kernel under every scheme, and asserts the heap payload checksum is
// scheme-invariant (the none-scheme checksum is the reference).
func TestStructureInvariants(t *testing.T) {
	tests := []struct {
		name  string
		check func(t *testing.T, img *mem.Image, alloc *heap.Allocator)
	}{
		{"hashchurn", nil},
		{"skiplist", checkSkiplist},
		{"bptree", checkBptree},
		{"lru", checkLRU},
		{"multilist", nil},
		{"quicklist", checkQuicklist},
		{"txmix", nil},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var baseSum uint64
			for i, scheme := range core.Schemes() {
				img, alloc := runImage(t, tc.name, Params{Scheme: scheme, Size: SizeTest})
				sum := alloc.PayloadChecksum()
				if i == 0 {
					baseSum = sum
				} else if sum != baseSum {
					t.Fatalf("%v: payload checksum %#x != none-scheme %#x",
						scheme, sum, baseSum)
				}
				if tc.check != nil {
					tc.check(t, img, alloc)
				}
			}
		})
	}
}

// checkSkiplist verifies the probabilistic tower invariants: level-0
// holds every node in nondecreasing key order, the height histogram is
// monotone nonincreasing over the first levels (geometric p=1/4), and
// the level-l chain is exactly the level-0 subsequence of nodes with
// height > l.
func checkSkiplist(t *testing.T, img *mem.Image, _ *heap.Allocator) {
	head := uint32(heap.Base) // first allocation
	cfg := skiplistSizes(SizeTest)

	var order []uint32
	heights := map[uint32]uint32{}
	hist := make([]int, slMaxLevel+1)
	prevKey := uint32(0)
	for p := img.ReadWord(head + slFwd0); p != 0; p = img.ReadWord(p + slFwd0) {
		key := img.ReadWord(p + slKey)
		if key < prevKey {
			t.Fatalf("level-0 keys out of order: %d after %d", key, prevKey)
		}
		prevKey = key
		h := img.ReadWord(p + slHeight)
		if h < 1 || h > slMaxLevel {
			t.Fatalf("node %#x has height %d outside [1,%d]", p, h, slMaxLevel)
		}
		heights[p] = h
		hist[h]++
		order = append(order, p)
	}
	if len(order) != cfg.nodes {
		t.Fatalf("level-0 holds %d nodes, want %d", len(order), cfg.nodes)
	}
	for h := 1; h < 3; h++ {
		if hist[h] < hist[h+1] {
			t.Errorf("height histogram not monotone: %d nodes at h=%d < %d at h=%d",
				hist[h], h, hist[h+1], h+1)
		}
	}
	for lvl := 1; lvl < slMaxLevel; lvl++ {
		var want []uint32
		for _, p := range order {
			if heights[p] > uint32(lvl) {
				want = append(want, p)
			}
		}
		var got []uint32
		for p := img.ReadWord(head + slFwd0 + uint32(4*lvl)); p != 0; p = img.ReadWord(p + slFwd0 + uint32(4*lvl)) {
			got = append(got, p)
		}
		if len(got) != len(want) {
			t.Fatalf("level %d holds %d nodes, want %d", lvl, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("level %d node %d = %#x, want %#x", lvl, i, got[i], want[i])
			}
		}
	}
}

// checkBptree verifies occupancy and ordering along the leaf chain:
// every leaf holds between half-full and full key counts, keys are
// sorted within and across leaves, and the chain holds every insert.
func checkBptree(t *testing.T, img *mem.Image, _ *heap.Allocator) {
	first := uint32(heap.Base) // root leaf is the first allocation
	cfg := bptreeSizes(SizeTest)

	total := 0
	leaves := 0
	prevKey := uint32(0)
	for p := first; p != 0; p = img.ReadWord(p + bpNext) {
		n := img.ReadWord(p + bpCount)
		if n < bpFanout/2 || n > bpFanout {
			t.Fatalf("leaf %#x holds %d keys outside [%d,%d]", p, n, bpFanout/2, bpFanout)
		}
		for j := uint32(0); j < n; j++ {
			key := img.ReadWord(p + bpKeys + 4*j)
			if key < prevKey {
				t.Fatalf("leaf chain keys out of order: %d after %d", key, prevKey)
			}
			prevKey = key
		}
		total += int(n)
		leaves++
	}
	if total != cfg.inserts {
		t.Fatalf("leaf chain holds %d keys, want %d", total, cfg.inserts)
	}
	if leaves < 2 {
		t.Fatalf("expected a split tree, got %d leaf/leaves", leaves)
	}
}

// checkLRU replays the kernel's zipf get stream against a pure-Go LRU
// and asserts the simulated recency list finishes in exactly the
// mirror's order (head = most recent), pinning both promotion and
// eviction order, and that every resident node is reachable through
// its hash chain.
func checkLRU(t *testing.T, img *mem.Image, _ *heap.Allocator) {
	cfg := lruSizes(SizeTest)

	// Pure-Go replay of the exact get stream.
	r := newRNG(0x27d4eb2f)
	z := newZipf(r, cfg.keyspace)
	var mirror []uint32 // most recent first
	resident := map[uint32]bool{}
	for i := 0; i < cfg.gets; i++ {
		key := uint32(z.next())*2 + 1
		if resident[key] {
			for j, k := range mirror {
				if k == key {
					mirror = append(mirror[:j], mirror[j+1:]...)
					break
				}
			}
		} else {
			if len(mirror) == cfg.capacity {
				evicted := mirror[len(mirror)-1]
				mirror = mirror[:len(mirror)-1]
				delete(resident, evicted)
			}
			resident[key] = true
		}
		mirror = append([]uint32{key}, mirror...)
	}

	dir := uint32(heap.Base) // directory is the first allocation
	var got []uint32
	for p := img.ReadWord(ir.GlobalBase + luHeadOff); p != 0; p = img.ReadWord(p + luNext) {
		got = append(got, img.ReadWord(p+luKey))
	}
	if len(got) != len(mirror) {
		t.Fatalf("recency list holds %d nodes, want %d", len(got), len(mirror))
	}
	for i := range got {
		if got[i] != mirror[i] {
			t.Fatalf("recency slot %d holds key %d, want %d (eviction/promotion order diverged)",
				i, got[i], mirror[i])
		}
	}

	// Every resident node must be reachable via its hash chain.
	mask := uint32(cfg.buckets - 1)
	for p := img.ReadWord(ir.GlobalBase + luHeadOff); p != 0; p = img.ReadWord(p + luNext) {
		key := img.ReadWord(p + luKey)
		b := lruBucket(key, mask)
		found := false
		for e := img.ReadWord(dir + 4*b); e != 0; e = img.ReadWord(e + luHNext) {
			if e == p {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("resident key %d not reachable through bucket %d", key, b)
		}
	}
}

// checkQuicklist verifies the structural skip pointers: every node's
// skip field targets the node exactly `interval` links ahead (or nil
// within the tail window), under every scheme — the pointers are
// architectural state the program maintains through all the churn.
func checkQuicklist(t *testing.T, img *mem.Image, _ *heap.Allocator) {
	head := uint32(heap.Base) // first allocation survives the churn
	dist := core.DefaultInterval

	var order []uint32
	for p := head; p != 0; p = img.ReadWord(p + qlNext) {
		order = append(order, p)
	}
	for i, p := range order {
		want := uint32(0)
		if i+dist < len(order) {
			want = order[i+dist]
		}
		if got := img.ReadWord(p + qlSkip); got != want {
			t.Fatalf("node %d skip = %#x, want %#x", i, got, want)
		}
	}
}
