package kernels

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// txmix models a zipf-skewed transactional read/write mix over record
// chains (the OCC-style key/value shape of systems like ddtxn): each
// record is a version header plus a chain of field nodes.  A
// transaction picks a record by zipf rank, reads its version, walks the
// whole chain accumulating fields, and re-checks the version — the
// serialized per-record traversal the queue method jumps along.  Write
// transactions additionally bump the version, read-modify-write one
// field, and sometimes prepend a fresh node, so hot chains keep
// growing at the front and the hottest records see the most pointer
// churn.  Root jumping is the natural secondary idiom: the next
// transaction's record is known a step ahead, so its chain head can be
// chased while the current chain is processed.
//
// Layouts (payload bytes; blocks round to power-of-two classes):
//
//	record:    version(0) head(4) len(8)      = 12 -> 16
//	field:     val(0) next(4) tag(8) [jump(12)] = 12 -> 16
//	directory: R record-pointer words         = 4R
const (
	txVersion = 0
	txHead    = 4
	txLen     = 8

	txfVal  = 0
	txfNext = 4
	txfJump = 12
)

// Static sites for txmix.
const (
	txBuild = ir.FirstUserSite + iota*8
	txPick
	txWalk
	txWrite
	txVer
	txIdiom
	txRoot
	txQueue // SWJumpQueueSites
)

func init() {
	Register(&Benchmark{
		Name:        "txmix",
		Description: "zipf transactional read/write mix over record chains",
		Structures:  "record directory + per-record field chains",
		Behavior:    "hot chains re-walked constantly, writes prepend nodes",
		Idioms:      []core.Idiom{core.IdiomQueue, core.IdiomRoot},
		Traversals:  6,
		Extension:   true,
		Kernel:      txmixKernel,
	})
}

type txmixCfg struct {
	records int
	chain   int // initial field nodes per record
	txns    int
}

func txmixSizes(s Size) txmixCfg {
	switch s {
	case SizeTest:
		return txmixCfg{records: 16, chain: 6, txns: 24}
	case SizeSmall:
		return txmixCfg{records: 256, chain: 12, txns: 800}
	case SizeLarge:
		// 2K records x 32 fields x 16B = ~1MB of chain data: well past
		// the L2.
		return txmixCfg{records: 2048, chain: 32, txns: 8000}
	default:
		// 1K records x 24 fields x 16B = ~384KB of chain data: far
		// beyond the L1, most of the way into the L2.
		return txmixCfg{records: 1024, chain: 24, txns: 6000}
	}
}

func txmixKernel(p Params) func(*ir.Asm) {
	cfg := txmixSizes(p.Size)
	idiom := swIdiom(p, core.IdiomQueue)
	isCoop := coop(p)

	return func(a *ir.Asm) {
		r := newRNG(0x2545f491)

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, txQueue, 0, interval(p), txfJump)
		}

		// Build: the record directory, then each record's chain
		// (prepend order, so chain order reverses allocation order).
		dir := a.Malloc(uint32(cfg.records) * 4)
		recs := make([]ir.Val, cfg.records)
		chainLen := make([]int, cfg.records)
		for i := range recs {
			rec := a.Malloc(12)
			recs[i] = rec
			a.Store(txBuild, dir, uint32(4*i), rec)
			for j := 0; j < cfg.chain; j++ {
				n := a.Malloc(12)
				a.Store(txBuild+1, n, txfVal, ir.Imm(r.next()&0xFFFF))
				head := a.Load(txBuild+2, rec, txHead, ir.FLDS)
				a.Store(txBuild+3, n, txfNext, head)
				a.Store(txBuild+4, rec, txHead, n)
			}
			a.Store(txBuild+5, rec, txLen, ir.Imm(uint32(cfg.chain)))
			chainLen[i] = cfg.chain
		}

		prepend := func(ri int, rec ir.Val) {
			n := a.Malloc(12)
			a.Store(txWrite, n, txfVal, ir.Imm(r.next()&0xFFFF))
			head := a.Load(txWrite+1, rec, txHead, ir.FLDS)
			a.Store(txWrite+2, n, txfNext, head)
			a.Store(txWrite+3, rec, txHead, n)
			chainLen[ri]++
			a.Store(txWrite+4, rec, txLen, ir.Imm(uint32(chainLen[ri])))
		}

		// The zipf schedule is drawn up front so root jumping can see
		// one transaction ahead (a real system knows its queued next
		// request just the same).
		z := newZipf(r, cfg.records)
		picks := make([]int, cfg.txns)
		for i := range picks {
			picks[i] = z.next()
		}

		txn := func(ri int, nextRI int) {
			// Root jumping: chase the next record's chain head while
			// this transaction runs.
			var rootJ ir.Val
			if idiom == core.IdiomRoot && nextRI >= 0 && prefetchOn(p) {
				if isCoop {
					a.Prefetch(txRoot, recs[nextRI], txHead, ir.FJumpChase)
				} else {
					a.Overhead(func() {
						rootJ = a.Load(txRoot, recs[nextRI], txHead, 0)
						a.Prefetch(txRoot+1, rootJ, 0, 0)
					})
				}
			}

			rec := a.Load(txPick, dir, uint32(4*ri), ir.FLDS)
			ver := a.Load(txPick+1, rec, txVersion, ir.FLDS)
			isWrite := r.intn(5) == 0
			wslot := -1
			if isWrite {
				wslot = r.intn(chainLen[ri])
			}

			n := a.Load(txPick+2, rec, txHead, ir.FLDS)
			sum := ir.Imm(0)
			slot := 0
			for !n.IsNil() {
				switch {
				case prefetchOn(p) && idiom == core.IdiomQueue:
					queuePrefetch(a, txIdiom, n, txfJump, isCoop)
				case prefetchOn(p) && idiom == core.IdiomRoot && !isCoop && !rootJ.IsNil():
					// Chain along the next record's field nodes.
					a.Overhead(func() {
						a.Prefetch(txIdiom+2, rootJ, 0, 0)
						rootJ = a.Load(txIdiom+3, rootJ, txfNext, 0)
					})
				}
				v := a.Load(txWalk, n, txfVal, ir.FLDS)
				sum = a.Alu(txWalk+1, sum.U32()+v.U32(), sum, v)
				if isWrite && slot == wslot {
					v2 := a.Alu(txWalk+2, v.U32()^0x5bd1, v, ir.Val{})
					a.Store(txWalk+3, n, txfVal, v2)
				}
				if queue != nil {
					queue.Visit(n)
				}
				n = a.Load(txWalk+4, n, txfNext, ir.FLDS)
				a.Branch(txWalk+5, !n.IsNil(), txWalk, n, ir.Val{})
				slot++
			}

			// OCC-style version re-check, then commit effects.
			ver2 := a.Load(txVer, rec, txVersion, ir.FLDS)
			a.Branch(txVer+1, ver2.U32() == ver.U32(), txVer+2, ver2, ver)
			acc := a.LoadGlobal(txVer+2, accBase)
			a.StoreGlobal(txVer+3, accBase, a.Alu(txVer+4, acc.U32()+sum.U32(), acc, sum))
			if isWrite {
				a.Store(txVer+5, rec, txVersion, a.AddImm(txVer+6, ver, 1))
				if r.intn(4) == 0 {
					prepend(ri, rec)
				}
			}
		}

		for i := 0; i < cfg.txns; i++ {
			next := -1
			if i+1 < cfg.txns {
				next = picks[i+1]
			}
			txn(picks[i], next)
		}
	}
}
