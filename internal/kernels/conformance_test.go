package kernels_test

import (
	"encoding/json"
	"flag"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/olden"
	"repro/internal/prefetch"
	"repro/internal/stats"
	"repro/internal/validate"
)

// The kernel conformance suite: every kernel registered in this package
// is pushed through the full correctness matrix the Olden suite
// already satisfies — all 5 schemes x every prefetch engine x cycle
// skipping and block replay on/off — asserting snapshot byte-identity
// for the simulator knobs, stats.Validate invariants on every
// snapshot, and validate.Digest architectural agreement against the
// in-order oracle.  Goldens, equivalence and oracle coverage therefore
// come for free for every kernel added from now on: registering it is
// enough to put it under the matrix.

// -conformance-size selects the matrix input size, so CI can run the
// suite at "small" while the default `go test` stays fast.
var conformanceSize = flag.String("conformance-size", "test",
	"kernel conformance matrix input size (test|small)")

func matrixSize(t *testing.T) olden.Size {
	t.Helper()
	switch *conformanceSize {
	case "test":
		return olden.SizeTest
	case "small":
		return olden.SizeSmall
	}
	t.Fatalf("unknown -conformance-size %q", *conformanceSize)
	return olden.SizeTest
}

// TestKernelOracleDigest runs each kernel through the differential
// driver: every scheme, with cycle skipping and block replay toggled,
// must commit a stream whose architectural digest matches the in-order
// oracle's, with the heap checksum and non-overhead instruction count
// invariant across schemes, plus one leg per competitor engine.
func TestKernelOracleDigest(t *testing.T) {
	size := matrixSize(t)
	for _, name := range kernels.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, f := range validate.CheckKernel(name, size, validate.Config{}) {
				t.Errorf("%s", f)
			}
		})
	}
}

// TestKernelSnapshotEquivalence asserts that cycle skipping and block
// replay are invisible in the full statistics snapshot for every
// kernel x scheme, and that every snapshot passes stats.Validate.
func TestKernelSnapshotEquivalence(t *testing.T) {
	size := matrixSize(t)
	for _, b := range kernels.All() {
		for _, scheme := range core.Schemes() {
			b, scheme := b, scheme
			t.Run(b.Name+"/"+scheme.String(), func(t *testing.T) {
				t.Parallel()
				base := runSnap(t, b.Name, scheme, "", size, false, false)
				noskip := runSnap(t, b.Name, scheme, "", size, true, false)
				noreplay := runSnap(t, b.Name, scheme, "", size, false, true)
				if string(marshal(t, base)) != string(marshal(t, noskip)) {
					t.Errorf("snapshot diverges with cycle skipping disabled")
				}
				// The replay observability section exists exactly when
				// replay ran; every other field must match without it.
				base.Replay = nil
				noreplay.Replay = nil
				if string(marshal(t, base)) != string(marshal(t, noreplay)) {
					t.Errorf("snapshot diverges with block replay disabled")
				}
			})
		}
	}
}

// TestKernelEngineMatrix runs every kernel under every registered
// prefetch engine (scheme none, so the engine is the only prefetcher)
// with cycle skipping on and off: snapshots must agree byte-for-byte
// and validate.
func TestKernelEngineMatrix(t *testing.T) {
	size := matrixSize(t)
	for _, b := range kernels.All() {
		for _, engine := range prefetch.Names() {
			b, engine := b, engine
			t.Run(b.Name+"/"+engine, func(t *testing.T) {
				t.Parallel()
				base := runSnap(t, b.Name, core.SchemeNone, engine, size, false, false)
				noskip := runSnap(t, b.Name, core.SchemeNone, engine, size, true, false)
				if string(marshal(t, base)) != string(marshal(t, noskip)) {
					t.Errorf("snapshot diverges with cycle skipping disabled")
				}
			})
		}
	}
}

// runSnap runs one spec and returns its validated snapshot.
func runSnap(t *testing.T, bench string, scheme core.Scheme, engine string,
	size olden.Size, noSkip, noReplay bool) stats.Snapshot {
	t.Helper()
	cfg := cpu.Defaults()
	cfg.DisableCycleSkip = noSkip
	cfg.DisableBlockReplay = noReplay
	res, err := harness.Run(harness.Spec{
		Bench:  bench,
		Params: olden.Params{Scheme: scheme, Size: size},
		Engine: engine,
		CPU:    &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Stats.Validate(); err != nil {
		t.Fatalf("stats invariant violated: %v", err)
	}
	return res.Stats
}

func marshal(t *testing.T, s stats.Snapshot) []byte {
	t.Helper()
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}
