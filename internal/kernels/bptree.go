package kernels

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// bptree models an insert-built B+tree (distinct from the olden
// "btree" extension, which bulk-loads a perfect tree): keys arrive in
// random order and leaves split top-down on the way to overflow, so the
// leaf chain interleaves old and young blocks in allocation order.
// Point lookups descend through inner nodes with short emitted compare
// runs; after each insert batch a full leaf-chain scan provides the
// long serialized traversal the queue method jumps along, with fresh
// splits steadily diluting the installed pointers.
//
// Layouts (payload bytes; blocks round to power-of-two classes):
//
//	leaf:  count(0) next(4) keys[6](8..28) vals[6](32..52) [jump(56)] = 56 -> 64
//	inner: count(0) keys[5](4..20) kids[6](24..44)                    = 48 -> 64
const (
	bpCount = 0
	bpNext  = 4
	bpKeys  = 8  // leaf keys
	bpVals  = 32 // leaf values
	bpJump  = 56

	bpIKeys = 4  // inner separator keys
	bpIKids = 24 // inner children

	bpFanout = 6
)

// Static sites for bptree.
const (
	bpBuild = ir.FirstUserSite + iota*8
	bpDesc
	bpLeaf
	bpSplit
	bpSplit2
	bpScan
	bpIdiom
	bpQueue // SWJumpQueueSites
)

func init() {
	Register(&Benchmark{
		Name:        "bptree",
		Description: "insert-built B+tree with leaf-chain scans",
		Structures:  "inner separator nodes + linked leaf chain",
		Behavior:    "random-order inserts split leaves; scans walk the chain",
		Idioms:      []core.Idiom{core.IdiomQueue},
		Traversals:  10,
		Extension:   true,
		Kernel:      bptreeKernel,
	})
}

type bptreeCfg struct {
	inserts int
	batches int
	lookups int // per batch
}

func bptreeSizes(s Size) bptreeCfg {
	switch s {
	case SizeTest:
		return bptreeCfg{inserts: 60, batches: 2, lookups: 12}
	case SizeSmall:
		return bptreeCfg{inserts: 2500, batches: 4, lookups: 128}
	case SizeLarge:
		// ~10.5K leaves x 64B = ~700KB of leaf data plus inner nodes:
		// well past the L2.
		return bptreeCfg{inserts: 48000, batches: 8, lookups: 500}
	default:
		// ~4.4K leaves x 64B = ~280KB of leaf data plus ~90KB of inner
		// nodes: far beyond the L1, most of the way into the L2.
		return bptreeCfg{inserts: 20000, batches: 8, lookups: 500}
	}
}

// bpNode mirrors one simulated node so descents know leaf-ness and
// counts without re-deriving them from loads; every key compare and
// pointer hop is still emitted.
type bpNode struct {
	addr ir.Val
	leaf bool
	keys []uint32
	kids []*bpNode
	next *bpNode // leaf chain
	n    int     // leaf: keys, inner: kids
}

func bptreeKernel(p Params) func(*ir.Asm) {
	cfg := bptreeSizes(p.Size)
	idiom := swIdiom(p, core.IdiomQueue)
	isCoop := coop(p)

	return func(a *ir.Asm) {
		r := newRNG(0xc2b2ae35)

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, bpQueue, 0, interval(p), bpJump)
		}

		newLeaf := func() *bpNode {
			return &bpNode{addr: a.Malloc(56), leaf: true, keys: make([]uint32, 0, bpFanout)}
		}
		root := newLeaf()
		firstLeaf := root

		// childIndex emits the separator-compare run at an inner node
		// and returns the child slot key belongs to.
		childIndex := func(nd *bpNode, key uint32) int {
			i := 0
			for ; i < nd.n-1; i++ {
				k := a.Load(bpDesc, nd.addr, uint32(bpIKeys+4*i), ir.FLDS)
				left := key < k.U32()
				a.Branch(bpDesc+1, left, bpDesc+3, k, ir.Imm(key))
				if left {
					break
				}
			}
			return i
		}

		// leafSlot emits the in-leaf compare run and returns the
		// insertion slot for key.
		leafSlot := func(nd *bpNode, key uint32) int {
			i := 0
			for ; i < nd.n; i++ {
				k := a.Load(bpLeaf, nd.addr, uint32(bpKeys+4*i), ir.FLDS)
				stop := key < k.U32()
				a.Branch(bpLeaf+1, stop, bpLeaf+3, k, ir.Imm(key))
				if stop {
					break
				}
			}
			return i
		}

		// splitChild splits parent.kids[ci] (which is full) in half,
		// emitting the copies and relinks a real implementation does.
		// parent is guaranteed non-full by top-down preemptive
		// splitting.
		splitChild := func(parent *bpNode, ci int) {
			child := parent.kids[ci]
			half := bpFanout / 2
			var right *bpNode
			var sep uint32
			if child.leaf {
				right = newLeaf()
				// Move the upper half of keys/vals to the new leaf.
				for j := half; j < bpFanout; j++ {
					k := a.Load(bpSplit, child.addr, uint32(bpKeys+4*j), ir.FLDS)
					v := a.Load(bpSplit+1, child.addr, uint32(bpVals+4*j), ir.FLDS)
					a.Store(bpSplit+2, right.addr, uint32(bpKeys+4*(j-half)), k)
					a.Store(bpSplit+3, right.addr, uint32(bpVals+4*(j-half)), v)
				}
				right.keys = append(right.keys, child.keys[half:]...)
				child.keys = child.keys[:half]
				right.n, child.n = bpFanout-half, half
				sep = right.keys[0]
				// Chain relink: right inherits child's next.
				nxt := a.Load(bpSplit+4, child.addr, bpNext, ir.FLDS)
				a.Store(bpSplit+5, right.addr, bpNext, nxt)
				a.Store(bpSplit+6, child.addr, bpNext, right.addr)
				right.next, child.next = child.next, right
			} else {
				right = &bpNode{addr: a.Malloc(48)}
				for j := half; j < bpFanout; j++ {
					kid := a.Load(bpSplit, child.addr, uint32(bpIKids+4*j), ir.FLDS)
					a.Store(bpSplit+2, right.addr, uint32(bpIKids+4*(j-half)), kid)
				}
				for j := half; j < bpFanout-1; j++ {
					k := a.Load(bpSplit+1, child.addr, uint32(bpIKeys+4*j), ir.FLDS)
					a.Store(bpSplit+3, right.addr, uint32(bpIKeys+4*(j-half)), k)
				}
				right.kids = append(right.kids, child.kids[half:]...)
				child.kids = child.kids[:half]
				right.keys = append(right.keys, child.keys[half:]...)
				sep = child.keys[half-1]
				child.keys = child.keys[:half-1]
				right.n, child.n = bpFanout-half, half
			}
			a.Store(bpSplit2, child.addr, bpCount, ir.Imm(uint32(child.n)))
			a.Store(bpSplit2+1, right.addr, bpCount, ir.Imm(uint32(right.n)))
			// Shift parent's upper kids/keys right and splice.
			for j := parent.n - 1; j > ci; j-- {
				kid := a.Load(bpSplit2+2, parent.addr, uint32(bpIKids+4*j), ir.FLDS)
				a.Store(bpSplit2+3, parent.addr, uint32(bpIKids+4*(j+1)), kid)
			}
			for j := parent.n - 2; j >= ci; j-- {
				k := a.Load(bpSplit2+4, parent.addr, uint32(bpIKeys+4*j), ir.FLDS)
				a.Store(bpSplit2+5, parent.addr, uint32(bpIKeys+4*(j+1)), k)
			}
			a.Store(bpSplit2+6, parent.addr, uint32(bpIKids+4*(ci+1)), right.addr)
			a.Store(bpSplit2+7, parent.addr, uint32(bpIKeys+4*ci), ir.Imm(sep))
			parent.kids = append(parent.kids, nil)
			copy(parent.kids[ci+2:], parent.kids[ci+1:])
			parent.kids[ci+1] = right
			parent.keys = append(parent.keys, 0)
			copy(parent.keys[ci+1:], parent.keys[ci:])
			parent.keys[ci] = sep
			parent.n++
			a.Store(bpBuild+1, parent.addr, bpCount, ir.Imm(uint32(parent.n)))
		}

		insert := func(key uint32) {
			if root.n == bpFanout {
				// Grow a new root above the full old one.
				old := root
				root = &bpNode{addr: a.Malloc(48), kids: []*bpNode{old}, n: 1}
				a.Store(bpBuild+2, root.addr, bpIKids, old.addr)
				a.Store(bpBuild+3, root.addr, bpCount, ir.Imm(1))
				splitChild(root, 0)
			}
			nd := root
			for !nd.leaf {
				ci := childIndex(nd, key)
				if nd.kids[ci].n == bpFanout {
					splitChild(nd, ci)
					if key >= nd.keys[ci] {
						ci++
					}
				}
				a.Load(bpDesc+3, nd.addr, uint32(bpIKids+4*ci), ir.FLDS)
				nd = nd.kids[ci]
			}
			slot := leafSlot(nd, key)
			// Shift the upper keys/vals right by one (emitted moves).
			for j := nd.n - 1; j >= slot; j-- {
				k := a.Load(bpLeaf+3, nd.addr, uint32(bpKeys+4*j), ir.FLDS)
				v := a.Load(bpLeaf+4, nd.addr, uint32(bpVals+4*j), ir.FLDS)
				a.Store(bpLeaf+5, nd.addr, uint32(bpKeys+4*(j+1)), k)
				a.Store(bpLeaf+6, nd.addr, uint32(bpVals+4*(j+1)), v)
			}
			a.Store(bpLeaf+7, nd.addr, uint32(bpKeys+4*slot), ir.Imm(key))
			a.Store(bpBuild+4, nd.addr, uint32(bpVals+4*slot), ir.Imm(key^0x517c))
			nd.keys = append(nd.keys, 0)
			copy(nd.keys[slot+1:], nd.keys[slot:])
			nd.keys[slot] = key
			nd.n++
			a.Store(bpBuild+5, nd.addr, bpCount, ir.Imm(uint32(nd.n)))
		}

		lookup := func(key uint32) {
			nd := root
			for !nd.leaf {
				ci := childIndex(nd, key)
				a.Load(bpDesc+3, nd.addr, uint32(bpIKids+4*ci), ir.FLDS)
				nd = nd.kids[ci]
			}
			slot := leafSlot(nd, key)
			if slot < nd.n && nd.keys[slot] == key {
				v := a.Load(bpDesc+4, nd.addr, uint32(bpVals+4*slot), ir.FLDS)
				acc := a.LoadGlobal(bpDesc+5, accBase)
				a.StoreGlobal(bpDesc+6, accBase, a.Alu(bpDesc+7, acc.U32()+v.U32(), acc, v))
			}
		}

		// scan walks the whole leaf chain summing every value: the
		// serialized traversal queue jumping targets.
		scan := func() {
			cur, mirror := firstLeaf.addr, firstLeaf
			sum := ir.Imm(0)
			for !cur.IsNil() {
				if prefetchOn(p) && idiom == core.IdiomQueue {
					queuePrefetch(a, bpIdiom, cur, bpJump, isCoop)
				}
				for j := 0; j < mirror.n; j++ {
					v := a.Load(bpScan, cur, uint32(bpVals+4*j), ir.FLDS)
					sum = a.Alu(bpScan+1, sum.U32()+v.U32(), sum, v)
				}
				if queue != nil {
					queue.Visit(cur)
				}
				nxt := a.Load(bpScan+2, cur, bpNext, ir.FLDS)
				a.Branch(bpScan+3, !nxt.IsNil(), bpScan, nxt, ir.Val{})
				cur = nxt
				mirror = mirror.next
			}
			acc := a.LoadGlobal(bpScan+4, accBase+4)
			a.StoreGlobal(bpScan+5, accBase+4, a.Alu(bpScan+6, acc.U32()+sum.U32(), acc, sum))
		}

		perBatch := cfg.inserts / cfg.batches
		var keys []uint32
		for b := 0; b < cfg.batches; b++ {
			for i := 0; i < perBatch; i++ {
				k := r.next()
				insert(k)
				keys = append(keys, k)
			}
			for i := 0; i < cfg.lookups; i++ {
				lookup(keys[r.intn(len(keys))])
			}
			scan()
		}
	}
}
