package kernels_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/olden"
)

var update = flag.Bool("update", false, "rewrite golden stats files")

// TestKernelGoldens pins a committed statistics snapshot for every
// registered kernel in all three primary sizes under the
// representative cooperative scheme.  Any change to a kernel's emitted
// stream, the timing model, or the stats schema shows up as a golden
// diff; regenerate deliberately with -update.
func TestKernelGoldens(t *testing.T) {
	sizes := []olden.Size{olden.SizeTest, olden.SizeSmall, olden.SizeFull}
	if testing.Short() {
		sizes = sizes[:1]
	}
	for _, name := range kernels.Names() {
		for _, size := range sizes {
			name, size := name, size
			t.Run(name+"/"+size.String(), func(t *testing.T) {
				t.Parallel()
				snap := runSnap(t, name, core.SchemeCooperative, "", size, false, false)
				data, err := json.MarshalIndent(snap, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				data = append(data, '\n')
				golden := filepath.Join("testdata",
					"stats_"+name+"_"+size.String()+".json")
				if *update {
					if err := os.MkdirAll("testdata", 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(golden, data, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden (run `go test ./internal/kernels -run TestKernelGoldens -update`): %v", err)
				}
				if string(want) != string(data) {
					t.Errorf("stats snapshot differs from %s; regenerate with -update if intended", golden)
				}
			})
		}
	}
}
