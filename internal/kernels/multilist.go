package kernels

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// multilist models the lockstep multi-list walk of SNIPPETS.md snippet
// 1 (grappa's list-chase kernel): 8 independent linked lists, walked in
// phases that chase 1, 2, 4, then 8 lists in software-pipelined
// lockstep.  Each phase's inner loop issues one independent pointer
// load per active list, so memory-level parallelism scales with the
// chase count while each individual chain stays serialized; the phases
// show how much of the jump-pointer win the baseline can recover by
// overlapping chains.  Node order within each list is a random
// permutation of the allocation order, so next-line and stride
// prefetchers get no help.
//
// Layout (payload bytes; blocks round to power-of-two classes):
//
//	node: val(0) next(4) aux(8) [jump(12)] = 12 -> 16
const (
	mlVal  = 0
	mlNext = 4
	mlJump = 12

	mlLists = 8
)

// Static sites for multilist.
const (
	mlBuild = ir.FirstUserSite + iota*8
	mlWalk
	mlSum
	mlIdiom
	mlQueue // SWJumpQueueSites
)

func init() {
	Register(&Benchmark{
		Name:        "multilist",
		Description: "lockstep walks over 1-8 parallel linked lists",
		Structures:  "8 permutation-shuffled singly-linked lists",
		Behavior:    "software-pipelined chases: MLP scales with list count",
		Idioms:      []core.Idiom{core.IdiomQueue},
		Traversals:  12,
		Extension:   true,
		Kernel:      multilistKernel,
	})
}

type multilistCfg struct {
	nodes int // per list
	iters int // rounds over the 1/2/4/8 phase ladder
}

func multilistSizes(s Size) multilistCfg {
	switch s {
	case SizeTest:
		return multilistCfg{nodes: 24, iters: 1}
	case SizeSmall:
		return multilistCfg{nodes: 512, iters: 2}
	case SizeLarge:
		// 8 x 10K x 16B = ~1.3MB of nodes: well past the L2.
		return multilistCfg{nodes: 10000, iters: 3}
	default:
		// 8 x 4K x 16B = 512KB of nodes: far beyond the L1, filling
		// the L2, so every chase hop misses at least the L1.
		return multilistCfg{nodes: 4000, iters: 3}
	}
}

func multilistKernel(p Params) func(*ir.Asm) {
	cfg := multilistSizes(p.Size)
	idiom := swIdiom(p, core.IdiomQueue)
	isCoop := coop(p)

	return func(a *ir.Asm) {
		r := newRNG(0x165667b1)

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, mlQueue, 0, interval(p), mlJump)
		}

		// Build: allocate each list's nodes in one arena, then link
		// them in Fisher-Yates-permuted order so list order and memory
		// order are uncorrelated.
		heads := make([]ir.Val, mlLists)
		for li := 0; li < mlLists; li++ {
			ar := a.Heap().NewArena()
			nodes := make([]ir.Val, cfg.nodes)
			for i := range nodes {
				nodes[i] = a.MallocIn(ar, 12)
				a.Store(mlBuild, nodes[i], mlVal, ir.Imm(r.next()&0xFFFF))
			}
			perm := make([]int, cfg.nodes)
			for i := range perm {
				perm[i] = i
			}
			for i := len(perm) - 1; i > 0; i-- {
				j := r.intn(i + 1)
				perm[i], perm[j] = perm[j], perm[i]
			}
			for i := 0; i+1 < len(perm); i++ {
				a.Store(mlBuild+1, nodes[perm[i]], mlNext, nodes[perm[i+1]])
			}
			heads[li] = nodes[perm[0]]
		}

		// walk chases the first k lists in lockstep: one value load,
		// one accumulate and one pointer load per active list per step,
		// k independent chains in flight.  The jump queue sees the
		// merged round-robin visit stream, so its pointers target the
		// node the stream reaches `interval` visits later — the
		// interleave-aware order, not any single chain.
		walk := func(k int) {
			cur := make([]ir.Val, k)
			sum := make([]ir.Val, k)
			for j := 0; j < k; j++ {
				cur[j] = heads[j]
				sum[j] = ir.Imm(0)
			}
			for step := 0; step < cfg.nodes; step++ {
				for j := 0; j < k; j++ {
					if prefetchOn(p) && idiom == core.IdiomQueue {
						queuePrefetch(a, mlIdiom, cur[j], mlJump, isCoop)
					}
					v := a.Load(mlWalk, cur[j], mlVal, ir.FLDS)
					sum[j] = a.Alu(mlWalk+1, sum[j].U32()+v.U32(), sum[j], v)
					if queue != nil {
						queue.Visit(cur[j])
					}
					cur[j] = a.Load(mlWalk+2, cur[j], mlNext, ir.FLDS)
				}
				a.Branch(mlWalk+3, step+1 < cfg.nodes, mlWalk, cur[0], ir.Val{})
			}
			for j := 0; j < k; j++ {
				acc := a.LoadGlobal(mlSum, accBase+uint32(4*j))
				a.StoreGlobal(mlSum+1, accBase+uint32(4*j),
					a.Alu(mlSum+2, acc.U32()+sum[j].U32(), acc, sum[j]))
			}
		}

		for it := 0; it < cfg.iters; it++ {
			for _, k := range []int{1, 2, 4, 8} {
				walk(k)
				// Pointers from one interleave are meaningless in the
				// next phase's visit order; clear between phases.
				if queue != nil {
					queue.Reset()
				}
			}
		}
	}
}
