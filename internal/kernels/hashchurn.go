package kernels

import (
	"repro/internal/core"
	"repro/internal/ir"
)

// hashchurn models a chained hash table under growth churn: zipf-skewed
// probe batches interleave with insert batches, and every time the load
// factor passes 4 the table doubles and rehashes every entry — a long
// serialized sweep that both scrambles the chains' physical order and
// invalidates the probe-stream jump pointers installed so far.  The
// probe stream itself is the serialized traversal the queue method
// jumps along (the Pointer-Chase Prefetcher evaluation's hash-probe
// workload, PAPERS.md 1801.08088).
//
// Layouts (payload bytes; blocks round to power-of-two classes):
//
//	entry:     key(0) val(4) next(8) [jump(12)]  = 12 -> 16
//	directory: nbuckets chain-head words         = 4n
const (
	heKey  = 0
	heVal  = 4
	heNext = 8
	heJump = 12
)

// Static sites for hashchurn.
const (
	hcBuild = ir.FirstUserSite + iota*8
	hcHash
	hcIns
	hcRes
	hcProbe
	hcWalk
	hcIdiom
	hcQueue // SWJumpQueueSites
)

func init() {
	Register(&Benchmark{
		Name:        "hashchurn",
		Description: "chained hash table with resize churn",
		Structures:  "bucket directory + singly-linked entry chains",
		Behavior:    "zipf probes over chains, periodic full rehash sweeps",
		Idioms:      []core.Idiom{core.IdiomQueue},
		Traversals:  8,
		Extension:   true,
		Kernel:      hashchurnKernel,
	})
}

type hashchurnCfg struct {
	buckets0 int // initial directory size (power of two)
	rounds   int
	insPer   int // inserts per round
	probePer int // probes per round
}

func hashchurnSizes(s Size) hashchurnCfg {
	switch s {
	case SizeTest:
		return hashchurnCfg{buckets0: 8, rounds: 2, insPer: 24, probePer: 48}
	case SizeSmall:
		return hashchurnCfg{buckets0: 64, rounds: 4, insPer: 512, probePer: 1024}
	case SizeLarge:
		// ~56K entries x 16B = ~0.9MB of chain data: well past the L2.
		return hashchurnCfg{buckets0: 256, rounds: 8, insPer: 7000, probePer: 14000}
	default:
		// ~24K entries x 16B = ~384KB of chain data plus a 32KB final
		// directory: far beyond the 64KB L1, around the 512KB L2 — the
		// latency-bound regime the Olden kernels also target.
		return hashchurnCfg{buckets0: 256, rounds: 8, insPer: 3000, probePer: 6000}
	}
}

func hashchurnKernel(p Params) func(*ir.Asm) {
	cfg := hashchurnSizes(p.Size)
	idiom := swIdiom(p, core.IdiomQueue)
	isCoop := coop(p)

	return func(a *ir.Asm) {
		r := newRNG(0x5bd1e995)

		nbuckets := cfg.buckets0
		count := 0
		dir := a.Malloc(uint32(nbuckets) * 4)
		var keys []uint32 // insert order; zipf rank 0 = most recent

		var queue *core.SWJumpQueue
		if idiom == core.IdiomQueue {
			queue = core.NewSWJumpQueue(a, hcQueue, 0, interval(p), heJump)
		}

		// bucketOff emits the hash computation and returns the
		// directory byte offset of key's chain head.
		bucketOff := func(key uint32) uint32 {
			h := hashMix(a, hcHash, ir.Imm(key))
			idx := a.Alu(hcHash+3, h.U32()&uint32(nbuckets-1), h, ir.Imm(uint32(nbuckets-1)))
			return idx.U32() * 4
		}

		insert := func(key uint32) {
			off := bucketOff(key)
			n := a.Malloc(12)
			a.Store(hcIns, n, heKey, ir.Imm(key))
			a.Store(hcIns+1, n, heVal, ir.Imm(key*3+1))
			head := a.Load(hcIns+2, dir, off, ir.FLDS)
			a.Store(hcIns+3, n, heNext, head)
			a.Store(hcIns+4, dir, off, n)
			count++
			keys = append(keys, key)
		}

		// resize doubles the directory and rehashes every chain: the
		// serialized full-table sweep.  Entry blocks survive but land
		// on new chains, so the probe-stream jump pointers installed
		// before the sweep now point across dead traversal orders.
		resize := func() {
			old, oldN := dir, nbuckets
			nbuckets *= 2
			dir = a.Malloc(uint32(nbuckets) * 4)
			for b := 0; b < oldN; b++ {
				e := a.Load(hcRes, old, uint32(b)*4, ir.FLDS)
				for !e.IsNil() {
					nxt := a.Load(hcRes+1, e, heNext, ir.FLDS)
					key := a.Load(hcRes+2, e, heKey, ir.FLDS)
					h := hashMix(a, hcHash, key)
					idx := a.Alu(hcHash+4, h.U32()&uint32(nbuckets-1), h, ir.Imm(uint32(nbuckets-1)))
					noff := idx.U32() * 4
					head := a.Load(hcRes+3, dir, noff, ir.FLDS)
					a.Store(hcRes+4, e, heNext, head)
					a.Store(hcRes+5, dir, noff, e)
					a.Branch(hcRes+6, !nxt.IsNil(), hcRes, nxt, ir.Val{})
					e = nxt
				}
			}
			a.FreeNode(old)
		}

		// probe walks key's chain, accumulating the value on a hit.
		// Every touched entry enters the jump queue, so prefetches
		// target the entry the probe stream reaches `interval` touches
		// later.
		probe := func(key uint32) {
			off := bucketOff(key)
			e := a.Load(hcProbe, dir, off, ir.FLDS)
			for !e.IsNil() {
				if prefetchOn(p) && idiom == core.IdiomQueue {
					queuePrefetch(a, hcIdiom, e, heJump, isCoop)
				}
				k := a.Load(hcWalk, e, heKey, ir.FLDS)
				if queue != nil {
					queue.Visit(e)
				}
				hit := k.U32() == key
				a.Branch(hcWalk+1, hit, hcWalk+4, k, ir.Imm(key))
				if hit {
					v := a.Load(hcWalk+4, e, heVal, ir.FLDS)
					acc := a.LoadGlobal(hcWalk+5, accBase)
					sum := a.Alu(hcWalk+6, acc.U32()+v.U32(), acc, v)
					a.StoreGlobal(hcWalk+7, accBase, sum)
					return
				}
				nxt := a.Load(hcWalk+2, e, heNext, ir.FLDS)
				a.Branch(hcWalk+3, !nxt.IsNil(), hcProbe, nxt, ir.Val{})
				e = nxt
			}
		}

		for round := 0; round < cfg.rounds; round++ {
			for i := 0; i < cfg.insPer; i++ {
				insert(r.next() | 1) // odd keys; even keys always miss
				if count > 4*nbuckets {
					resize()
				}
			}
			z := newZipf(r, len(keys))
			for i := 0; i < cfg.probePer; i++ {
				if r.intn(8) == 0 {
					probe(r.next() &^ 1) // guaranteed miss: full chain walk
				} else {
					probe(keys[len(keys)-1-z.next()])
				}
			}
		}
	}
}
