// Package kernels is the repo's second first-class workload family:
// modern pointer-intensive kernels beyond the Olden suite.  The paper's
// evaluation stops at Olden, but its claims — jump pointers win
// wherever the traversal order is predictable, and degrade on
// "volatile" structures that mutate under the walk — are exactly what
// today's pointer-chasing workloads stress.  Each kernel here emits
// through the same ir.Asm path the Olden kernels use and supports every
// scheme, idiom, interval and size knob, so the whole experiment and
// validation stack (harness, jppsim/jppchar/jpptrace, jppd, the
// differential oracle) runs them unchanged.
//
// The family (registry names in parentheses):
//
//   - hash-table chains with resize churn (hashchurn)
//   - a skip list with probabilistic towers (skiplist)
//   - an insert-built B+tree with leaf-chain scans (bptree)
//   - an LRU cache — the paper's volatile-LDS worst case, jump
//     pointers invalidated by every promotion (lru)
//   - multi-list lockstep walks software-pipelined across 1-8
//     parallel chases (multilist)
//   - a QuickList-style list whose skip pointers are maintained by the
//     data structure itself, so prefetching needs no creation code
//     (quicklist)
//   - a zipf-skewed transactional read/write mix over record chains
//     (txmix)
//
// Kernels register in a name->factory registry mirroring
// internal/prefetch; harness.BenchByName merges this registry with the
// Olden one, so a name resolves identically everywhere.
package kernels

import (
	"sort"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/olden"
)

// Benchmark and Params are the same descriptor types the Olden family
// uses, so the harness and validation stack treat both families
// uniformly.
type (
	Benchmark = olden.Benchmark
	Params    = olden.Params
	Size      = olden.Size
)

// Size aliases, re-exported so kernel size tables read naturally.
const (
	SizeDefault = olden.SizeDefault
	SizeTest    = olden.SizeTest
	SizeSmall   = olden.SizeSmall
	SizeFull    = olden.SizeFull
	SizeLarge   = olden.SizeLarge
)

var registry = map[string]*Benchmark{}

// Register adds a kernel to the family registry.  It panics on a
// duplicate name or on a name that shadows an Olden benchmark: the
// merged lookup (harness.BenchByName) must stay unambiguous.
func Register(b *Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("kernels: duplicate kernel " + b.Name)
	}
	if _, clash := olden.ByName(b.Name); clash {
		panic("kernels: kernel " + b.Name + " shadows an olden benchmark")
	}
	registry[b.Name] = b
}

// Names returns all kernel names in alphabetical order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName looks up a kernel.
func ByName(name string) (*Benchmark, bool) {
	b, ok := registry[name]
	return b, ok
}

// All returns every kernel alphabetically.
func All() []*Benchmark {
	names := Names()
	out := make([]*Benchmark, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// prefetchOn reports whether idiom prefetch code should be emitted
// (mirrors the unexported olden.Params helpers).
func prefetchOn(p Params) bool { return !p.CreationOnly }

func interval(p Params) int {
	if p.Interval <= 0 {
		return core.DefaultInterval
	}
	return p.Interval
}

// swIdiom resolves the idiom the kernel must emit code for, or
// core.IdiomNone when the scheme needs no software transformation.
func swIdiom(p Params, def core.Idiom) core.Idiom {
	if !p.Scheme.UsesSoftwareIdiom() {
		return core.IdiomNone
	}
	if p.Idiom == core.IdiomNone {
		return def
	}
	return p.Idiom
}

// coop reports whether chained prefetching is done by hardware, so the
// kernel emits streamlined jump-pointer prefetches (ir.FJumpChase).
func coop(p Params) bool { return p.Scheme == core.SchemeCooperative }

// rng is the same deterministic xorshift generator the Olden kernels
// use, so workloads are reproducible without math/rand state.
type rng uint64

func newRNG(seed uint64) *rng {
	r := rng(seed*2685821657736338717 + 1)
	return &r
}

func (r *rng) next() uint32 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return uint32(x >> 32)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint32(n))
}

// zipf draws zipf(s~1)-skewed ranks in [0, n) by inverting a
// precomputed harmonic CDF with a uniform draw.  Integer-only and
// deterministic: the table is scaled to 1<<16.
type zipf struct {
	r   *rng
	cdf []uint32
}

func newZipf(r *rng, n int) *zipf {
	cdf := make([]uint32, n)
	var total float64
	for i := 1; i <= n; i++ {
		total += 1 / float64(i)
	}
	var acc float64
	for i := 0; i < n; i++ {
		acc += 1 / float64(i+1)
		cdf[i] = uint32(acc / total * 65536)
	}
	cdf[n-1] = 65536
	return &zipf{r: r, cdf: cdf}
}

// next returns a rank in [0, len(cdf)); rank 0 is the hottest.
func (z *zipf) next() int {
	u := z.r.next() & 0xFFFF
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if uint32(u) < z.cdf[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Global-data layout shared by the kernels in this package: the
// SWJumpQueue ring lives at offset 0 (core.MaxInterval words) and
// kernel accumulators start at accBase, clear of the largest ring.
const accBase = 0x200

// hashMix is the emitted hash function shared by the hash-indexed
// kernels: a multiplicative hash with one xor-shift fold, occupying
// sites site..site+2.  The Go-side return value mirrors the emitted
// Alu chain exactly so directory offsets are known at emission time.
func hashMix(a *ir.Asm, site int, key ir.Val) ir.Val {
	h1 := a.Alu(site, key.U32()*2654435761, key, ir.Val{})
	h2 := a.Alu(site+1, h1.U32()>>13, h1, ir.Val{})
	return a.Alu(site+2, h1.U32()^h2.U32(), h1, h2)
}

// Common queue-idiom emission: at the top of a serialized visit, chase
// the jump pointer installed `interval` visits ago.  Cooperative
// prefetches hand the chain to hardware (ir.FJumpChase); software
// prefetches load the pointer and issue a plain prefetch under
// overhead accounting.
func queuePrefetch(a *ir.Asm, site int, cur ir.Val, jumpOff uint32, isCoop bool) {
	if isCoop {
		a.Prefetch(site, cur, jumpOff, ir.FJumpChase)
		return
	}
	a.Overhead(func() {
		j := a.Load(site, cur, jumpOff, 0)
		a.Prefetch(site+1, j, 0, 0)
	})
}
