// Package prefetch is the pluggable prefetch-engine registry.
//
// Every hardware prefetching mechanism the simulator can attach to the
// core — the paper's own dependence-based (DBP) and hardware
// jump-pointer (JPP) engines, plus the competitor zoo (a PC-indexed
// stride/RPT prefetcher, a Markov/correlation prefetcher, and a hybrid
// JPP+stride engine) — registers a named factory here.  The harness
// resolves harness.Spec.Engine through New, so any workload can run
// under any engine; a scheme without an explicit engine keeps its
// historical default (DefaultFor), which preserves the paper-artifact
// results bit for bit.
//
// Engines implement cpu.PrefetchEngine, including the NextEventAt hint
// the event-driven core uses to skip quiescent cycles: a registered
// engine must report the earliest cycle strictly after `now` at which
// it could act on its own, or ^uint64(0) when idle, and its Tick must
// be a pure bookkeeping no-op across any span NextEventAt declared
// quiet — the cycle-skip equivalence tests enforce this for every
// registry entry.  Engines must also be deterministic: identical runs
// must produce byte-identical statistics regardless of wall clock or
// batch-worker count, so no map-iteration-order dependence.
//
// Competitor references: the stride/RPT design follows the classic
// reference-prediction-table scheme (SNIPPETS.md snippet 2); the
// pointer-aware hybrid arrangement follows the Pointer-Chase Prefetcher
// line of work (PAPERS.md, https://arxiv.org/pdf/1801.08088).
package prefetch

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dbp"
	"repro/internal/heap"
)

// Config parameterizes engine construction.  The zero value resolves to
// the Table 2 defaults.
type Config struct {
	// DBP sizes the dependence-based machinery (predictor, PRQ); the
	// zoo engines reuse PRQEntries for their own request queues so every
	// engine contends for the same queue depth.
	DBP dbp.Config
	// HW sizes the hardware JPP mechanism (JQT/JPR).
	HW core.HWConfig
	// Interval is the uniform lookahead distance in nodes/strides
	// (0 = core.DefaultInterval).  Every factory honors it: the JQT
	// interval and DBP chain depth for the jump-pointer engines, the
	// stride lookahead for the RPT engine, the successor-chain depth
	// for the Markov engine.
	Interval int
}

// norm fills unset sub-configs with the Table 2 defaults and applies
// the uniform Interval to the fields that express lookahead distance.
func (c Config) norm() Config {
	if c.DBP == (dbp.Config{}) {
		c.DBP = dbp.Defaults()
	}
	if c.HW == (core.HWConfig{}) {
		c.HW = core.DefaultHWConfig()
	}
	if c.Interval > 0 {
		c.HW.Interval = c.Interval
		// One jump interval is the natural chain-depth bound (see
		// dbp.Config.MaxChainDepth).
		c.DBP.MaxChainDepth = c.Interval
	}
	return c
}

// interval resolves the effective lookahead distance.
func (c Config) interval() int {
	if c.Interval > 0 {
		return c.Interval
	}
	return core.DefaultInterval
}

// Factory builds one engine instance over a run's memory hierarchy and
// simulated allocator.  It receives a normalized Config (defaults
// filled, interval applied).
type Factory func(cfg Config, hier *cache.Hierarchy, alloc *heap.Allocator) cpu.PrefetchEngine

// Requester is implemented by every registered engine: it reports the
// engine's KPref cache accesses, split into requests that initiated
// fills and requests the hierarchy discarded because the line was
// already resident or in flight.  Their sum is the engine's
// contribution to the stats.Tracker's Issued count — the per-source
// identity SWIssued + EngineIssued == Issued that stats.Snapshot
// Validate enforces for complete runs.
type Requester interface {
	CacheRequests() (issued, dropped uint64)
}

var registry = map[string]Factory{}

// Register adds an engine factory under name.  It panics on a duplicate
// or empty name — registration happens in init functions, where a
// conflict is a programming error.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("prefetch: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic("prefetch: duplicate engine " + name)
	}
	registry[name] = f
}

// New builds the named engine.  Unknown names report the available set.
func New(name string, cfg Config, hier *cache.Hierarchy, alloc *heap.Allocator) (cpu.PrefetchEngine, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("prefetch: unknown engine %q (have %s)",
			name, strings.Join(Names(), ", "))
	}
	return f(cfg.norm(), hier, alloc), nil
}

// Names lists the registered engines in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DefaultFor maps a prefetching scheme to the engine it historically
// attached: DBP and cooperative runs use the dependence-based engine,
// hardware JPP runs use the JQT/JPR engine, and the remaining schemes
// attach nothing ("" — software JPP is all in the emitted code).
func DefaultFor(s core.Scheme) string {
	switch s {
	case core.SchemeDBP, core.SchemeCooperative:
		return "dbp"
	case core.SchemeHardware:
		return "hw"
	}
	return ""
}

// Competitors lists the registered engines no scheme default reaches —
// the zoo the shootout experiment and the validation matrix sweep in
// addition to the paper's own schemes.
func Competitors() []string {
	defaults := map[string]bool{}
	for _, s := range core.Schemes() {
		defaults[DefaultFor(s)] = true
	}
	var out []string
	for _, n := range Names() {
		if !defaults[n] {
			out = append(out, n)
		}
	}
	return out
}

func init() {
	Register("dbp", func(cfg Config, hier *cache.Hierarchy, alloc *heap.Allocator) cpu.PrefetchEngine {
		return dbp.NewEngine(cfg.DBP, hier, alloc)
	})
	Register("hw", func(cfg Config, hier *cache.Hierarchy, alloc *heap.Allocator) cpu.PrefetchEngine {
		return core.NewHWEngine(cfg.DBP, cfg.HW, hier, alloc)
	})
	Register("stride", func(cfg Config, hier *cache.Hierarchy, alloc *heap.Allocator) cpu.PrefetchEngine {
		return NewStride(cfg, hier, alloc)
	})
	Register("markov", func(cfg Config, hier *cache.Hierarchy, alloc *heap.Allocator) cpu.PrefetchEngine {
		return NewMarkov(cfg, hier, alloc)
	})
	Register("hybrid", func(cfg Config, hier *cache.Hierarchy, alloc *heap.Allocator) cpu.PrefetchEngine {
		return NewHybrid(cfg, hier, alloc)
	})
}
