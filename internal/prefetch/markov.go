package prefetch

import (
	"repro/internal/cache"
	"repro/internal/heap"
	"repro/internal/ir"
)

// Markov table geometry: a direct-mapped table of cache-line
// transitions with two most-recently-seen successors per line (the
// Joseph & Grunwald arrangement the paper's related work positions
// jump pointers against, and the correlation half of PAPERS.md's
// Pointer-Chase Prefetcher).
const (
	markovEntries    = 512
	markovSuccessors = 2
)

type markovEntry struct {
	tag  uint32
	succ [markovSuccessors]uint32
}

// Markov is an address-correlation prefetcher over the linked-data
// access stream.  It records line-to-line transitions of heap loads
// carrying the linked-data-structure flag, and on each observed line it
// walks the most-recent-successor chain up to the configured interval,
// prefetching each predicted line.  Unlike jump-pointer prefetching it
// needs no compiler or allocator help — but it can only replay
// transitions it has already paid a miss to observe.
type Markov struct {
	heap  *heap.Allocator
	depth int
	tab   [markovEntries]markovEntry
	last  uint32 // previous LDS line (0 = none yet)
	rq    reqQueue
}

// NewMarkov builds a Markov engine from a normalized Config.
func NewMarkov(cfg Config, hier *cache.Hierarchy, alloc *heap.Allocator) *Markov {
	return &Markov{
		heap:  alloc,
		depth: cfg.interval(),
		rq:    reqQueue{hier: hier, max: cfg.DBP.PRQEntries},
	}
}

func (m *Markov) index(line uint32) uint32 {
	return (line / uint32(m.rq.hier.LineBytes())) % markovEntries
}

// OnLoadIssue observes the linked-data load stream: it trains the
// transition table on consecutive distinct lines and issues prefetches
// along the predicted successor chain.
func (m *Markov) OnLoadIssue(now uint64, d *ir.DynInst) {
	if d.Flags&ir.FLDS == 0 || !m.heap.Contains(d.Addr) {
		return
	}
	line := d.Addr & ^uint32(uint32(m.rq.hier.LineBytes())-1)
	if line == m.last {
		return
	}
	if m.last != 0 {
		e := &m.tab[m.index(m.last)]
		if e.tag != m.last {
			*e = markovEntry{tag: m.last}
		}
		if e.succ[0] != line {
			// MRU insertion: newest observation first.
			e.succ[1] = e.succ[0]
			e.succ[0] = line
		}
	}
	// Predict forward: follow the most-recent successor chain.  No
	// L1-presence gate here — correlation prefetchers issue on the
	// observed stream and let the hierarchy discard already-present
	// lines (counted as dropped requests); gating on PresentL1 would
	// silence the engine whenever the structure is momentarily resident.
	cur := line
	for i := 0; i < m.depth; i++ {
		e := &m.tab[m.index(cur)]
		if e.tag != cur || e.succ[0] == 0 {
			break
		}
		next := e.succ[0]
		m.rq.push(next)
		cur = next
	}
	m.last = line
}

// OnLoadComplete is unused: correlation trains on addresses at issue.
func (m *Markov) OnLoadComplete(now uint64, d *ir.DynInst) {}

// OnCommit is unused.
func (m *Markov) OnCommit(now uint64, d *ir.DynInst) {}

// OnSWPrefetch is unused.
func (m *Markov) OnSWPrefetch(now uint64, d *ir.DynInst, done uint64) {}

// Tick drains the request queue through the free prefetch ports.
func (m *Markov) Tick(now uint64, freePorts int) int {
	return m.rq.drain(now, freePorts)
}

// NextEventAt reports pending queue work (see reqQueue).
func (m *Markov) NextEventAt(now uint64) uint64 {
	return m.rq.nextEventAt(now)
}

// CacheRequests implements Requester.
func (m *Markov) CacheRequests() (issued, dropped uint64) {
	return m.rq.cacheRequests()
}

// QueueStats exposes the request-traffic counters for tests and
// diagnostics.
func (m *Markov) QueueStats() QueueStats { return m.rq.s }
