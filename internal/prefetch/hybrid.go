package prefetch

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dbp"
	"repro/internal/heap"
	"repro/internal/ir"
)

// Hybrid couples the hardware jump-pointer engine with the stride
// prefetcher: jump-pointer and chained prefetches cover the pointer
// chases, the stride half covers the regular-address streams the JPP
// machinery ignores.  This is the pointer-chase-plus-stride pairing of
// modern pointer prefetcher proposals (PAPERS.md's Pointer-Chase
// Prefetcher, https://arxiv.org/pdf/1801.08088).  The JPP half has
// port priority — pointer misses are the ones that serialize — and the
// stride half issues into whatever prefetch bandwidth remains.
type Hybrid struct {
	jpp *core.HWEngine
	st  *Stride
}

// NewHybrid builds a hybrid engine from a normalized Config.
func NewHybrid(cfg Config, hier *cache.Hierarchy, alloc *heap.Allocator) *Hybrid {
	return &Hybrid{
		jpp: core.NewHWEngine(cfg.DBP, cfg.HW, hier, alloc),
		st:  NewStride(cfg, hier, alloc),
	}
}

// OnLoadIssue feeds both halves.
func (h *Hybrid) OnLoadIssue(now uint64, d *ir.DynInst) {
	h.jpp.OnLoadIssue(now, d)
	h.st.OnLoadIssue(now, d)
}

// OnLoadComplete feeds both halves.
func (h *Hybrid) OnLoadComplete(now uint64, d *ir.DynInst) {
	h.jpp.OnLoadComplete(now, d)
	h.st.OnLoadComplete(now, d)
}

// OnCommit feeds both halves.
func (h *Hybrid) OnCommit(now uint64, d *ir.DynInst) {
	h.jpp.OnCommit(now, d)
	h.st.OnCommit(now, d)
}

// OnSWPrefetch feeds both halves.
func (h *Hybrid) OnSWPrefetch(now uint64, d *ir.DynInst, done uint64) {
	h.jpp.OnSWPrefetch(now, d, done)
	h.st.OnSWPrefetch(now, d, done)
}

// Tick gives the JPP half port priority and the stride half the rest.
func (h *Hybrid) Tick(now uint64, freePorts int) int {
	used := h.jpp.Tick(now, freePorts)
	if rem := freePorts - used; rem > 0 {
		used += h.st.Tick(now, rem)
	}
	return used
}

// NextEventAt is the earlier of the two halves' events.
func (h *Hybrid) NextEventAt(now uint64) uint64 {
	a := h.jpp.NextEventAt(now)
	if b := h.st.NextEventAt(now); b < a {
		return b
	}
	return a
}

// CacheRequests implements Requester by summing both halves.
func (h *Hybrid) CacheRequests() (issued, dropped uint64) {
	ji, jd := h.jpp.CacheRequests()
	si, sd := h.st.CacheRequests()
	return ji + si, jd + sd
}

// Stats exposes the JPP half's dependence-engine counters so harness
// reporting keeps working when a hybrid engine is attached.
func (h *Hybrid) Stats() dbp.Stats { return h.jpp.Stats() }

// HWStats exposes the JPP half's jump-pointer counters.
func (h *Hybrid) HWStats() core.HWStats { return h.jpp.HWStats() }
