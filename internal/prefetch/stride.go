package prefetch

import (
	"repro/internal/cache"
	"repro/internal/heap"
	"repro/internal/ir"
)

// Stride table geometry, following the classic reference prediction
// table (SNIPPETS.md snippet 2): a 256-entry PC-indexed table holding
// the last address and stride per static load, issuing a prefetch only
// once the stride has repeated (two-step confidence) and the target is
// not already cached.
const (
	strideEntries    = 256
	strideConfSteady = 2
)

type strideEntry struct {
	pc    uint32
	last  uint32
	delta int32
	conf  uint8
}

// Stride is a PC-indexed stride/RPT prefetcher.  It is the
// array-traversal counterpart to jump-pointer prefetching: strong on
// the induction-variable and allocation-order streams the Olden
// kernels contain, blind to irregular pointer chases.  Its lookahead
// multiplies the learned stride by the configured interval, mirroring
// how the jump-pointer schemes target nodes `interval` hops ahead.
type Stride struct {
	heap *heap.Allocator
	dist int32
	tab  [strideEntries]strideEntry
	rq   reqQueue
}

// NewStride builds a stride engine from a normalized Config.
func NewStride(cfg Config, hier *cache.Hierarchy, alloc *heap.Allocator) *Stride {
	return &Stride{
		heap: alloc,
		dist: int32(cfg.interval()),
		rq:   reqQueue{hier: hier, max: cfg.DBP.PRQEntries},
	}
}

// OnLoadIssue trains the table on every demand load and, on a stable
// repeated stride, requests the line `interval` strides ahead.
func (s *Stride) OnLoadIssue(now uint64, d *ir.DynInst) {
	e := &s.tab[(d.PC>>2)%strideEntries]
	if e.pc != d.PC {
		*e = strideEntry{pc: d.PC, last: d.Addr}
		return
	}
	delta := int32(d.Addr - e.last)
	e.last = d.Addr
	if delta == 0 {
		return
	}
	if delta != e.delta {
		e.delta = delta
		e.conf = 0
		return
	}
	if e.conf < strideConfSteady {
		e.conf++
	}
	if e.conf < strideConfSteady {
		return
	}
	target := d.Addr + uint32(delta*s.dist)
	// Only chase targets inside the simulated heap, and skip lines the
	// L1 already holds (snippet 2's in_cache test).
	if !s.heap.Contains(target) || s.rq.hier.PresentL1(target) {
		return
	}
	s.rq.push(target)
}

// OnLoadComplete is unused: stride training needs addresses, not values.
func (s *Stride) OnLoadComplete(now uint64, d *ir.DynInst) {}

// OnCommit is unused.
func (s *Stride) OnCommit(now uint64, d *ir.DynInst) {}

// OnSWPrefetch is unused: software prefetches carry no stride signal.
func (s *Stride) OnSWPrefetch(now uint64, d *ir.DynInst, done uint64) {}

// Tick drains the request queue through the free prefetch ports.
func (s *Stride) Tick(now uint64, freePorts int) int {
	return s.rq.drain(now, freePorts)
}

// NextEventAt reports pending queue work (see reqQueue).
func (s *Stride) NextEventAt(now uint64) uint64 {
	return s.rq.nextEventAt(now)
}

// CacheRequests implements Requester.
func (s *Stride) CacheRequests() (issued, dropped uint64) {
	return s.rq.cacheRequests()
}

// QueueStats exposes the request-traffic counters for tests and
// diagnostics.
func (s *Stride) QueueStats() QueueStats { return s.rq.s }
