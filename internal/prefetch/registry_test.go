package prefetch

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dbp"
	"repro/internal/heap"
)

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(desc string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", desc)
			}
		}()
		f()
	}
	nop := func(Config, *cache.Hierarchy, *heap.Allocator) cpu.PrefetchEngine { return nil }
	mustPanic("duplicate name", func() { Register("dbp", nop) })
	mustPanic("empty name", func() { Register("", nop) })
	mustPanic("nil factory", func() { Register("nilfac", nil) })
}

func TestNewUnknown(t *testing.T) {
	_, err := New("nonesuch", Config{}, nil, nil)
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	// The error should advertise the available set so a CLI typo is
	// self-correcting.
	for _, n := range Names() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error %q does not list engine %q", err, n)
		}
	}
}

func TestNamesSortedComplete(t *testing.T) {
	got := Names()
	want := []string{"dbp", "hw", "hybrid", "markov", "stride"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestDefaultFor(t *testing.T) {
	for _, c := range []struct {
		scheme core.Scheme
		want   string
	}{
		{core.SchemeNone, ""},
		{core.SchemeSoftware, ""},
		{core.SchemeDBP, "dbp"},
		{core.SchemeCooperative, "dbp"},
		{core.SchemeHardware, "hw"},
	} {
		if got := DefaultFor(c.scheme); got != c.want {
			t.Errorf("DefaultFor(%v) = %q, want %q", c.scheme, got, c.want)
		}
	}
}

func TestCompetitors(t *testing.T) {
	got := Competitors()
	want := []string{"hybrid", "markov", "stride"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Competitors() = %v, want %v", got, want)
	}
}

func TestConfigNorm(t *testing.T) {
	// A zero config resolves to the Table 2 defaults.
	n := Config{}.norm()
	if n.DBP != dbp.Defaults() {
		t.Errorf("zero config DBP = %+v, want defaults", n.DBP)
	}
	if n.HW != core.DefaultHWConfig() {
		t.Errorf("zero config HW = %+v, want defaults", n.HW)
	}
	if got := (Config{}).interval(); got != core.DefaultInterval {
		t.Errorf("zero config interval = %d, want %d", got, core.DefaultInterval)
	}

	// A uniform Interval reaches every lookahead knob.
	n = Config{Interval: 7}.norm()
	if n.HW.Interval != 7 {
		t.Errorf("HW.Interval = %d, want 7", n.HW.Interval)
	}
	if n.DBP.MaxChainDepth != 7 {
		t.Errorf("DBP.MaxChainDepth = %d, want 7", n.DBP.MaxChainDepth)
	}
	if got := (Config{Interval: 7}).interval(); got != 7 {
		t.Errorf("interval() = %d, want 7", got)
	}

	// Explicit sub-configs survive normalization untouched apart from
	// the interval override.
	d := dbp.Defaults()
	d.PRQEntries = 3
	n = Config{DBP: d}.norm()
	if n.DBP.PRQEntries != 3 {
		t.Errorf("explicit DBP config lost: %+v", n.DBP)
	}
}
