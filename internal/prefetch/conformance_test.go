package prefetch_test

import (
	"encoding/json"
	"flag"
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/olden"
	"repro/internal/prefetch"
	"repro/internal/validate"
)

// -conformance-size selects the workload driven through every
// registered engine, mirroring the validate package's -matrix-size: CI
// runs "small" for real coverage while plain `go test` stays fast.
var confSize = flag.String("conformance-size", "test", "conformance workload size (test|small)")

func confWorkloadSize(t *testing.T) olden.Size {
	t.Helper()
	switch *confSize {
	case "test":
		return olden.SizeTest
	case "small":
		return olden.SizeSmall
	}
	t.Fatalf("unknown -conformance-size %q", *confSize)
	return olden.SizeTest
}

// contractChecker wraps an engine and audits every NextEventAt answer
// against the cycle-skip contract: the hint must name a cycle strictly
// after now, or ^uint64(0) for idle.  A violation would let the
// event-driven core skip over (or spin on) engine work.
type contractChecker struct {
	cpu.PrefetchEngine
	calls      int
	violations int
}

func (c *contractChecker) NextEventAt(now uint64) uint64 {
	n := c.PrefetchEngine.NextEventAt(now)
	c.calls++
	if n != ^uint64(0) && n <= now {
		c.violations++
	}
	return n
}

// TestEngineConformance runs the full registry through the behavioral
// contract every engine must satisfy: a legal NextEventAt hint stream,
// bit-identical statistics with cycle skipping on and off, determinism
// across batch worker counts, and a pass through the differential
// validation matrix.
func TestEngineConformance(t *testing.T) {
	size := confWorkloadSize(t)
	for _, name := range prefetch.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			t.Run("next-event-contract", func(t *testing.T) {
				bench, ok := olden.ByName("health")
				if !ok {
					t.Fatal("health benchmark missing")
				}
				params := olden.Params{Scheme: core.SchemeNone, Size: size}
				memP := cache.Defaults()
				memP.EnablePB = true
				img := mem.NewImage()
				alloc := heap.New(img)
				hier := cache.New(memP)
				eng, err := prefetch.New(name, prefetch.Config{}, hier, alloc)
				if err != nil {
					t.Fatal(err)
				}
				cc := &contractChecker{PrefetchEngine: eng}
				gen := ir.NewGen(alloc, bench.Kernel(params))
				c := cpu.New(cpu.Defaults(), hier, bpred.New(bpred.Defaults()), cc)
				c.Run(gen)
				if cc.calls == 0 {
					t.Fatal("NextEventAt never consulted — contract unexercised")
				}
				if cc.violations > 0 {
					t.Errorf("%d/%d NextEventAt answers were not strictly after now",
						cc.violations, cc.calls)
				}
			})
			t.Run("skip-equivalence", func(t *testing.T) {
				snap := func(disableSkip bool) []byte {
					cfg := cpu.Defaults()
					cfg.DisableCycleSkip = disableSkip
					res, err := harness.Run(harness.Spec{
						Bench:  "health",
						Engine: name,
						CPU:    &cfg,
						Params: olden.Params{Scheme: core.SchemeNone, Size: size},
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := res.Stats.Validate(); err != nil {
						t.Fatalf("snapshot invalid (skip disabled=%v): %v", disableSkip, err)
					}
					b, err := json.Marshal(res.Stats)
					if err != nil {
						t.Fatal(err)
					}
					return b
				}
				if on, off := snap(false), snap(true); string(on) != string(off) {
					t.Errorf("cycle skipping changes %s statistics:\nskip on:  %s\nskip off: %s",
						name, on, off)
				}
			})
			t.Run("determinism", func(t *testing.T) {
				specs := []harness.Spec{
					{
						Bench:  "health",
						Engine: name,
						Params: olden.Params{Scheme: core.SchemeNone, Size: size},
					},
					{
						Bench:  "treeadd",
						Engine: name,
						Params: olden.Params{Scheme: core.SchemeNone, Size: size},
					},
				}
				marshal := func(workers int) []string {
					items := harness.RunBatch(specs, workers)
					out := make([]string, len(items))
					for i, it := range items {
						if it.Err != nil {
							t.Fatalf("workers=%d slot %d: %v", workers, i, it.Err)
						}
						b, err := json.Marshal(it.Result.Stats)
						if err != nil {
							t.Fatal(err)
						}
						out[i] = string(b)
					}
					return out
				}
				serial, parallel := marshal(1), marshal(4)
				for i := range serial {
					if serial[i] != parallel[i] {
						t.Errorf("slot %d differs across worker counts:\n1: %s\n4: %s",
							i, serial[i], parallel[i])
					}
				}
			})
			t.Run("differential", func(t *testing.T) {
				fails := validate.CheckKernel("health", size, validate.Config{
					Schemes: []core.Scheme{core.SchemeNone},
					Engines: []string{name},
				})
				for _, f := range fails {
					t.Errorf("%s", f)
				}
			})
		})
	}
}
