package prefetch

import "repro/internal/cache"

// QueueStats counts a zoo engine's request traffic at the same
// granularity the DBP engine uses: Requested candidates accepted into
// the queue, queue-full Drops, in-queue Dedups, and — at the cache
// choke point — Issued fills vs Present discards.
type QueueStats struct {
	Requested uint64
	Drops     uint64
	Dedup     uint64
	Issued    uint64
	Present   uint64
}

// reqQueue is the issue stage shared by the zoo engines: a bounded
// FIFO of prefetch addresses drained through the hierarchy's prefetch
// ports, one access per free port per cycle.  It is the only timed
// state these engines hold, which makes their cycle-skip contract
// trivial: work exists exactly when the queue is non-empty, and a
// non-empty queue reports NextEventAt(now) = now+1, which disables
// skipping until it drains.
type reqQueue struct {
	hier *cache.Hierarchy
	max  int
	q    []uint32
	s    QueueStats
}

// push enqueues a prefetch candidate, deduplicating by cache line and
// dropping when the queue is full (both modeled, both counted).
func (r *reqQueue) push(addr uint32) {
	mask := ^uint32(uint32(r.hier.LineBytes()) - 1)
	line := addr & mask
	for _, a := range r.q {
		if a&mask == line {
			r.s.Dedup++
			return
		}
	}
	if len(r.q) >= r.max {
		r.s.Drops++
		return
	}
	r.q = append(r.q, addr)
	r.s.Requested++
}

// drain issues up to freePorts queued prefetches into the hierarchy.
// It returns the number of ports consumed.
func (r *reqQueue) drain(now uint64, freePorts int) int {
	used := 0
	for used < freePorts && len(r.q) > 0 {
		addr := r.q[0]
		copy(r.q, r.q[1:])
		r.q = r.q[:len(r.q)-1]
		res := r.hier.AccessData(now, addr, cache.KPref)
		used++
		if res.Dropped {
			r.s.Present++
		} else {
			r.s.Issued++
		}
	}
	return used
}

// nextEventAt implements the cpu.PrefetchEngine hint for queue-only
// engines: pending work wants the very next cycle, otherwise idle.
func (r *reqQueue) nextEventAt(now uint64) uint64 {
	if len(r.q) > 0 {
		return now + 1
	}
	return ^uint64(0)
}

// cacheRequests implements Requester over the queue's choke-point
// counters.
func (r *reqQueue) cacheRequests() (issued, dropped uint64) {
	return r.s.Issued, r.s.Present
}
