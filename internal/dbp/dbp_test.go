package dbp

import (
	"testing"
	"testing/quick"
)

func TestPPWInsertLookup(t *testing.T) {
	w := NewPPW(4)
	w.Insert(0x1000, 0x400100)
	if pc, ok := w.Lookup(0x1000); !ok || pc != 0x400100 {
		t.Fatalf("Lookup = %#x, %v", pc, ok)
	}
	if _, ok := w.Lookup(0x2000); ok {
		t.Fatal("spurious hit")
	}
}

func TestPPWFIFOCapacity(t *testing.T) {
	w := NewPPW(4)
	for i := 0; i < 5; i++ {
		w.Insert(uint32(0x1000+i*16), uint32(0x400100+i*4))
	}
	// The oldest entry fell out.
	if _, ok := w.Lookup(0x1000); ok {
		t.Fatal("FIFO did not evict the oldest producer")
	}
	for i := 1; i < 5; i++ {
		if _, ok := w.Lookup(uint32(0x1000 + i*16)); !ok {
			t.Fatalf("entry %d missing", i)
		}
	}
}

func TestPPWIgnoresZero(t *testing.T) {
	w := NewPPW(4)
	w.Insert(0, 0x400100)
	if _, ok := w.Lookup(0); ok {
		t.Fatal("null pointer tracked as a producer")
	}
}

func TestPPWLatestWins(t *testing.T) {
	w := NewPPW(8)
	w.Insert(0x1000, 0x400100)
	w.Insert(0x1000, 0x400200)
	if pc, _ := w.Lookup(0x1000); pc != 0x400200 {
		t.Fatalf("latest producer not returned: %#x", pc)
	}
}

func TestDepPredictorInsertQuery(t *testing.T) {
	dp := NewDepPredictor(256, 4)
	dp.Insert(0x400100, 0x400104, 8)
	dp.Insert(0x400100, 0x400108, 4)
	deps := dp.Query(0x400100)
	if len(deps) != 2 {
		t.Fatalf("Query returned %d deps", len(deps))
	}
	seen := map[uint32]uint32{}
	for _, d := range deps {
		seen[d.ConsumerPC] = d.Offset
	}
	if seen[0x400104] != 8 || seen[0x400108] != 4 {
		t.Fatalf("deps wrong: %v", deps)
	}
}

func TestDepPredictorUpdateInPlace(t *testing.T) {
	dp := NewDepPredictor(256, 4)
	dp.Insert(0x400100, 0x400104, 8)
	dp.Insert(0x400100, 0x400104, 12) // same pair, new offset
	deps := dp.Query(0x400100)
	if len(deps) != 1 || deps[0].Offset != 12 {
		t.Fatalf("in-place update failed: %v", deps)
	}
}

func TestDepPredictorSetEviction(t *testing.T) {
	dp := NewDepPredictor(256, 4)
	// Five producers mapping to the same set (64 sets; stride 64*4 in
	// PC space).
	base := uint32(0x400000)
	for i := 0; i < 5; i++ {
		dp.Insert(base+uint32(i)*64*4, 0x400104, uint32(i))
	}
	hits := 0
	for i := 0; i < 5; i++ {
		if len(dp.Query(base+uint32(i)*64*4)) > 0 {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("%d of 5 conflicting entries survive a 4-way set", hits)
	}
}

func TestHasEdge(t *testing.T) {
	dp := NewDepPredictor(256, 4)
	dp.Insert(0x400100, 0x400100, 4) // self edge (recurrent load)
	if !dp.HasEdge(0x400100, 0x400100) {
		t.Fatal("self edge not found")
	}
	if dp.HasEdge(0x400104, 0x400100) {
		t.Fatal("phantom edge")
	}
}

func TestPPWNeverReturnsWrongProducerProperty(t *testing.T) {
	// Whatever the insertion sequence, Lookup(v) returns a PC that was
	// inserted with value v (or misses).
	type ins struct {
		V  uint32
		PC uint32
	}
	f := func(seq []ins) bool {
		w := NewPPW(16)
		valid := map[uint32]map[uint32]bool{}
		for _, s := range seq {
			w.Insert(s.V, s.PC)
			if s.V != 0 {
				if valid[s.V] == nil {
					valid[s.V] = map[uint32]bool{}
				}
				valid[s.V][s.PC] = true
			}
		}
		for _, s := range seq {
			if pc, ok := w.Lookup(s.V); ok && !valid[s.V][pc] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
