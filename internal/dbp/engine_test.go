package dbp

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
)

// testRig builds an engine over a small simulated list.
type testRig struct {
	eng   *Engine
	alloc *heap.Allocator
	hier  *cache.Hierarchy
	nodes []uint32
}

func newRig(t *testing.T, n int) *testRig {
	t.Helper()
	img := mem.NewImage()
	alloc := heap.New(img)
	p := cache.Defaults()
	p.EnablePB = true
	hier := cache.New(p)
	eng := NewEngine(Defaults(), hier, alloc)

	nodes := make([]uint32, n)
	for i := range nodes {
		nodes[i] = alloc.Alloc(12)
	}
	for i := 0; i+1 < n; i++ {
		img.WriteWord(nodes[i]+4, nodes[i+1]) // next at offset 4
	}
	return &testRig{eng: eng, alloc: alloc, hier: hier, nodes: nodes}
}

const (
	pcNext = 0x400100 // l = l->next
	pcVal  = 0x400104 // v = l->value
)

// commitLoad simulates commit of "load pc base+off -> value".
func (r *testRig) commitLoad(now uint64, pc, base, off uint32) {
	d := &ir.DynInst{
		PC:        pc,
		Class:     ir.Load,
		Addr:      base + off,
		BaseValue: base,
		Value:     r.eng.Image().ReadWord(base + off),
		Flags:     ir.FLDS,
	}
	r.eng.OnCommit(now, d)
}

func TestTrainingBuildsSelfEdge(t *testing.T) {
	r := newRig(t, 10)
	// Walk the list at commit level: each next-load's base is the
	// previous next-load's value.
	for i := 0; i < 9; i++ {
		r.commitLoad(uint64(i), pcNext, r.nodes[i], 4)
	}
	if !r.eng.DP().HasEdge(pcNext, pcNext) {
		t.Fatal("self-recurrent edge not learned")
	}
}

func TestTrainingBuildsConsumerEdge(t *testing.T) {
	r := newRig(t, 10)
	for i := 0; i < 9; i++ {
		r.commitLoad(uint64(2*i), pcNext, r.nodes[i], 4)
		r.commitLoad(uint64(2*i+1), pcVal, r.nodes[i+1], 0)
	}
	found := false
	for _, d := range r.eng.DP().Query(pcNext) {
		if d.ConsumerPC == pcVal && d.Offset == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("rib consumer edge not learned")
	}
}

func TestChaseIssuesPrefetches(t *testing.T) {
	r := newRig(t, 64)
	for i := 0; i < 20; i++ {
		r.commitLoad(uint64(i), pcNext, r.nodes[i], 4)
	}
	// A completed load of node 20's next pointer triggers a chase.
	d := &ir.DynInst{
		PC: pcNext, Class: ir.Load, Addr: r.nodes[20] + 4,
		BaseValue: r.nodes[20], Value: r.nodes[21], Flags: ir.FLDS,
	}
	r.eng.Tick(99, 0) // arm the per-cycle query quota
	r.eng.OnLoadComplete(100, d)
	issued := uint64(0)
	for cycle := uint64(101); cycle < 3000; cycle++ {
		r.eng.Tick(cycle, 2)
		if s := r.eng.Stats(); s.IssuedPrefetch > issued {
			issued = s.IssuedPrefetch
		}
	}
	if issued == 0 {
		t.Fatal("no prefetches issued from a chase")
	}
	// The chain must have walked multiple nodes ahead.
	if issued < 3 {
		t.Fatalf("chain issued only %d prefetches", issued)
	}
}

func TestChainDepthBounded(t *testing.T) {
	r := newRig(t, 200)
	for i := 0; i < 20; i++ {
		r.commitLoad(uint64(i), pcNext, r.nodes[i], 4)
	}
	d := &ir.DynInst{
		PC: pcNext, Class: ir.Load, Addr: r.nodes[20] + 4,
		BaseValue: r.nodes[20], Value: r.nodes[21], Flags: ir.FLDS,
	}
	r.eng.Tick(99, 0) // arm the per-cycle query quota
	r.eng.OnLoadComplete(100, d)
	for cycle := uint64(101); cycle < 50000; cycle++ {
		r.eng.Tick(cycle, 2)
	}
	// One trigger chases at most MaxChainDepth levels; each level is at
	// most a couple of lines.
	max := uint64(2 * (Defaults().MaxChainDepth + 2))
	if s := r.eng.Stats(); s.IssuedPrefetch+s.DroppedPresent > max {
		t.Fatalf("single trigger expanded to %d requests (cap ~%d)",
			s.IssuedPrefetch+s.DroppedPresent, max)
	}
}

func TestJumpChasePrefetchFeedsChaser(t *testing.T) {
	r := newRig(t, 64)
	img := r.eng.Image()
	// Plant a jump pointer at node 0 (+8) to node 8.
	img.WriteWord(r.nodes[0]+8, r.nodes[8])
	// Train consumer edges first.
	for i := 0; i < 20; i++ {
		r.commitLoad(uint64(i), pcNext, r.nodes[i], 4)
	}
	d := &ir.DynInst{
		PC: 0x400200, Class: ir.Prefetch, Addr: r.nodes[0] + 8,
		Flags: ir.FJumpChase,
	}
	r.eng.OnSWPrefetch(100, d, 101)
	for cycle := uint64(101); cycle < 1000; cycle++ {
		r.eng.Tick(cycle, 2)
	}
	s := r.eng.Stats()
	if s.IssuedPrefetch == 0 {
		t.Fatal("jump-chase produced no prefetches")
	}
	// The target's value must now be a potential producer: committing a
	// load with base == nodes[8] trains a jump edge.
	r.commitLoad(2000, pcVal, r.nodes[8], 0)
	if r.eng.Stats().JumpTrained == 0 {
		t.Fatal("jump producer window did not train")
	}
}

func TestPRQCapacity(t *testing.T) {
	r := newRig(t, 64)
	// Enqueue more distinct-line requests than the PRQ holds, with no
	// draining ticks in between.
	for i := 0; i < 20; i++ {
		r.eng.EnqueuePrefetch(r.nodes[0]+uint32(i)*4096, pcNext, 0, OChase)
	}
	if s := r.eng.Stats(); s.PRQDrops == 0 {
		t.Fatal("PRQ accepted more requests than its capacity")
	}
	if r.eng.prqLen > Defaults().PRQEntries {
		t.Fatalf("PRQ holds %d entries", r.eng.prqLen)
	}
}

func TestPiggybackContinuation(t *testing.T) {
	r := newRig(t, 64)
	// Two requests for the same line with different PCs: one memory
	// request, both continuations.
	r.eng.EnqueuePrefetch(r.nodes[0], pcNext, 0, OChase)
	r.eng.EnqueuePrefetch(r.nodes[0]+4, pcVal, 0, OChase)
	if got := r.eng.prqLen; got != 1 {
		t.Fatalf("PRQ holds %d entries, want 1 (piggybacked)", got)
	}
	if int(r.eng.prq[r.eng.prqHead].nconts) != 1 {
		t.Fatalf("continuation not recorded")
	}
	r.eng.Tick(1, 2)
	// Both arrivals pending now (same completion time).
	if len(r.eng.pending) != 2 {
		t.Fatalf("%d pending arrivals, want 2", len(r.eng.pending))
	}
}

func TestGarbageValuesNotChased(t *testing.T) {
	r := newRig(t, 8)
	for i := 0; i < 7; i++ {
		r.commitLoad(uint64(i), pcNext, r.nodes[i], 4)
	}
	d := &ir.DynInst{
		PC: pcNext, Class: ir.Load, Addr: r.nodes[0] + 4,
		BaseValue: r.nodes[0], Value: 0xDEAD, // not a heap address
		Flags: ir.FLDS,
	}
	r.eng.Tick(99, 0)
	before := r.eng.Stats().ChaseQueries
	r.eng.OnLoadComplete(100, d)
	if r.eng.Stats().ChaseQueries != before {
		t.Fatal("chased a non-heap value")
	}
}
