package dbp

import (
	"repro/internal/cache"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
)

// Config sizes the prefetch engine.  Defaults() matches Table 2.
type Config struct {
	PPWEntries      int
	DPEntries       int
	DPAssoc         int
	PRQEntries      int
	QueriesPerCycle int
	// MaxChainDepth bounds how far a single chain of completed
	// prefetches may extend past the triggering access.  Chains run
	// through cache-resident nodes without issuing memory requests, so
	// the cap is what keeps the greedy chaser from sweeping whole
	// structures on every trigger; one jump interval is the natural
	// setting.
	MaxChainDepth int
}

// Defaults returns the paper's Table 2 DBP configuration.
func Defaults() Config {
	return Config{
		PPWEntries:      64,
		DPEntries:       256,
		DPAssoc:         4,
		PRQEntries:      8,
		QueriesPerCycle: 2,
		MaxChainDepth:   8,
	}
}

// Origin labels why a prefetch request was generated (diagnostics).
type Origin uint8

// Request origins.
const (
	// OChase is a dependence-predictor chase step.
	OChase Origin = iota
	// OJump is a jump-pointer target (JPR launch or jump-word arrival).
	OJump
	numOrigins
)

// Stats counts engine activity.
type Stats struct {
	Trained        uint64
	JumpTrained    uint64
	ChaseQueries   uint64
	Requested      uint64
	PRQDrops       uint64
	DedupDrops     uint64
	IssuedPrefetch uint64
	DroppedPresent uint64

	IssuedByOrigin  [numOrigins]uint64
	DroppedByOrigin [numOrigins]uint64
	DedupByOrigin   [numOrigins]uint64
}

// Engine is the dependence-based prefetch engine.  It also serves as
// the chained-prefetching half of the cooperative JPP implementation:
// software jump-pointer prefetches flagged ir.FJumpChase feed the
// chaser with the pointer they fetched, and a dedicated producer window
// lets the dependence predictor learn jump-prefetch -> LDS-load edges
// (paper §3.2).
type Engine struct {
	cfg  Config
	hier *cache.Hierarchy
	img  *mem.Image
	heap *heap.Allocator

	ppw     *PPW
	jumpPPW *PPW
	dp      *DepPredictor

	// lineMask is the hierarchy's cache-line mask, cached at
	// construction (LineBytes never changes after cache.New) so the
	// per-request dedup path does not re-derive it.
	lineMask uint32

	// prq is a fixed-capacity FIFO ring (cap PRQEntries): prqHead is
	// the index of the oldest request and prqLen the occupancy.  A ring
	// replaces the slice shift that used to copy the whole queue on
	// every issued prefetch.
	prq     []prqReq // len is cfg.PRQEntries rounded up to a power of two
	prqMask int
	prqHead int
	prqLen  int

	pending []arrival
	// pendingMin caches the minimum done time across pending (exact;
	// ^uint64(0) when pending is empty), so the per-cycle Tick and the
	// core's NextEventAt query avoid scanning the queue.
	pendingMin uint64

	queryQuota int
	depBuf     []Dep // scratch for ChaseFrom's predictor queries

	s Stats
}

type prqReq struct {
	addr   uint32
	pc     uint32
	depth  int
	origin Origin
	// conts are piggybacked continuations: requests for the same line
	// whose (addr, pc) differ, so the chase can branch correctly once
	// the line arrives without issuing duplicate memory requests.  A
	// fixed inline array (bounded at 3 by EnqueuePrefetch) keeps the
	// hot enqueue/issue path allocation-free.
	conts  [3]cont
	nconts uint8
}

type cont struct {
	addr  uint32
	pc    uint32
	depth int
}

type arrival struct {
	done  uint64
	addr  uint32
	pc    uint32
	depth int
	// jumpWord marks the completion of a cooperative jump-pointer
	// prefetch: the fetched word is a node pointer to chase and to
	// register as a potential producer.
	jumpWord bool
}

// NewEngine builds a DBP engine over the given hierarchy and heap.
func NewEngine(cfg Config, hier *cache.Hierarchy, alloc *heap.Allocator) *Engine {
	e := &Engine{
		cfg:        cfg,
		hier:       hier,
		img:        alloc.Image(),
		heap:       alloc,
		lineMask:   ^uint32(hier.LineBytes() - 1),
		ppw:        NewPPW(cfg.PPWEntries),
		jumpPPW:    NewPPW(cfg.PPWEntries * 2),
		dp:         NewDepPredictor(cfg.DPEntries, cfg.DPAssoc),
		prq:        make([]prqReq, ceilPow2(cfg.PRQEntries)),
		pendingMin: ^uint64(0),
	}
	e.prqMask = len(e.prq) - 1
	return e
}

// ceilPow2 rounds n up to a power of two so the PRQ ring can index
// with a mask instead of a modulo.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// DP exposes the dependence predictor (the hardware JPP engine inspects
// it for recurrence detection).
func (e *Engine) DP() *DepPredictor { return e.dp }

// Heap returns the simulated allocator.
func (e *Engine) Heap() *heap.Allocator { return e.heap }

// Image returns the simulated memory image.
func (e *Engine) Image() *mem.Image { return e.img }

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats { return e.s }

// CacheRequests reports the engine's KPref accesses at the hierarchy
// choke point, split into requests that initiated fills and requests
// discarded because the line was already present or in flight.  Their
// sum equals the engine's share of the stats.Tracker Issued count (the
// prefetch registry's Requester contract).
func (e *Engine) CacheRequests() (issued, dropped uint64) {
	return e.s.IssuedPrefetch, e.s.DroppedPresent
}

// TrainLoad runs PPW training for a committed load and returns the
// producer PC, if one was found.
func (e *Engine) TrainLoad(d *ir.DynInst) (producer uint32, ok bool) {
	if e.heap.Contains(d.BaseValue) {
		if pc, hit := e.jumpPPW.Lookup(d.BaseValue); hit {
			e.dp.Insert(pc, d.PC, d.Addr-d.BaseValue)
			e.s.JumpTrained++
		}
		if pc, hit := e.ppw.Lookup(d.BaseValue); hit {
			e.dp.Insert(pc, d.PC, d.Addr-d.BaseValue)
			e.s.Trained++
			producer, ok = pc, true
		}
	}
	if e.heap.Contains(d.Value) {
		e.ppw.Insert(d.Value, d.PC)
	}
	return producer, ok
}

// ChaseFrom queries the dependence predictor with (pc -> value) and
// enqueues prefetches for every known consumer.
func (e *Engine) ChaseFrom(pc, value uint32, depth int) {
	if !e.heap.Contains(value) || depth > e.cfg.MaxChainDepth {
		return
	}
	if e.queryQuota <= 0 {
		return
	}
	e.queryQuota--
	e.s.ChaseQueries++
	// depBuf is reusable scratch: EnqueuePrefetch never re-queries the
	// predictor, so the buffer is not live across the recursion.
	e.depBuf = e.dp.QueryInto(pc, e.depBuf[:0])
	for _, dep := range e.depBuf {
		e.EnqueuePrefetch(value+dep.Offset, dep.ConsumerPC, depth+1, OChase)
	}
}

// EnqueuePrefetch routes a prefetch request.  A line already queued or
// in flight is not requested twice: the new (addr, pc) piggybacks as a
// continuation so the chase still branches correctly when the line
// arrives.  Everything else passes through the PRQ and probes the cache
// when a port is free.
func (e *Engine) EnqueuePrefetch(addr, pc uint32, depth int, origin Origin) {
	if depth > e.cfg.MaxChainDepth {
		return
	}
	mask := e.lineMask
	line := addr & mask
	for i := 0; i < e.prqLen; i++ {
		r := &e.prq[(e.prqHead+i)&e.prqMask]
		if r.addr&mask != line {
			continue
		}
		e.s.DedupDrops++
		e.s.DedupByOrigin[origin]++
		if (r.pc != pc || r.addr != addr) && int(r.nconts) < len(r.conts) {
			r.conts[r.nconts] = cont{addr: addr, pc: pc, depth: depth}
			r.nconts++
		}
		return
	}
	for i := range e.pending {
		a := &e.pending[i]
		if a.jumpWord || a.addr&mask != line {
			continue
		}
		e.s.DedupDrops++
		e.s.DedupByOrigin[origin]++
		if a.pc != pc || a.addr != addr {
			e.addPending(arrival{
				done: a.done, addr: addr, pc: pc, depth: depth,
			})
		}
		return
	}
	if e.prqLen >= e.cfg.PRQEntries {
		e.s.PRQDrops++
		return
	}
	e.prq[(e.prqHead+e.prqLen)&e.prqMask] = prqReq{addr: addr, pc: pc, depth: depth, origin: origin}
	e.prqLen++
	e.s.Requested++
}

// addPending enqueues an arrival, maintaining the cached minimum.
func (e *Engine) addPending(a arrival) {
	if a.done < e.pendingMin {
		e.pendingMin = a.done
	}
	e.pending = append(e.pending, a)
}

// --- cpu.PrefetchEngine implementation -------------------------------

// OnLoadIssue is a no-op for plain DBP (the hardware JPP engine
// overrides it to access the JPR).
func (e *Engine) OnLoadIssue(now uint64, d *ir.DynInst) {}

// OnLoadComplete chases consumers of a completed demand load.
func (e *Engine) OnLoadComplete(now uint64, d *ir.DynInst) {
	if d.Flags&ir.FLDS != 0 {
		e.ChaseFrom(d.PC, d.Value, 0)
	}
}

// OnCommit trains the predictor in program order.
func (e *Engine) OnCommit(now uint64, d *ir.DynInst) {
	if d.Class == ir.Load {
		e.TrainLoad(d)
	}
}

// OnSWPrefetch observes a software prefetch that the core issued to the
// hierarchy (completing at done).  Jump-chase prefetches additionally
// deliver the jump-pointer word to the chaser when they arrive.
func (e *Engine) OnSWPrefetch(now uint64, d *ir.DynInst, done uint64) {
	if d.Flags&ir.FJumpChase == 0 {
		return
	}
	e.addPending(arrival{
		done: done, addr: d.Addr, pc: d.PC, depth: 0, jumpWord: true,
	})
}

// NextEventAt reports the earliest cycle strictly after now at which
// the engine could act on its own: the next Tick when requests are
// queued in the PRQ (or arrivals are already due), else the earliest
// pending-prefetch completion.  ^uint64(0) means the engine is idle
// until the core feeds it again.
func (e *Engine) NextEventAt(now uint64) uint64 {
	if e.prqLen > 0 {
		return now + 1
	}
	if e.pendingMin <= now {
		// Work already due, deferred by the query quota.
		return now + 1
	}
	return e.pendingMin
}

// Tick advances the engine one cycle: completed prefetches chase
// further, and queued requests issue into idle cache ports.  It returns
// the number of ports consumed.
func (e *Engine) Tick(now uint64, freePorts int) int {
	e.queryQuota = e.cfg.QueriesPerCycle
	// Skip the compaction pass entirely on the (common) cycles where no
	// arrival is due yet — the loop below would keep every entry.
	if now < e.pendingMin {
		if e.prqLen == 0 {
			return 0
		}
		return e.issuePRQ(now, freePorts)
	}

	// Process arrivals whose data is available.  Chasing can append new
	// arrivals to e.pending (continuations of resident lines); indexing
	// by position keeps the in-place compaction safe while the slice
	// grows, and freshly appended entries (done = now+1) are kept for
	// the next cycle.
	n := 0
	kmin := ^uint64(0)
	for i := 0; i < len(e.pending); i++ {
		if d := e.pending[i].done; d > now || e.queryQuota <= 0 {
			if n != i {
				e.pending[n] = e.pending[i]
			}
			if d < kmin {
				kmin = d
			}
			n++
			continue
		}
		a := e.pending[i]
		value := e.img.ReadWord(a.addr)
		if a.jumpWord {
			// The fetched word is a pointer to a future node: remember
			// it as a potential producer so the predictor learns
			// jump-prefetch -> LDS-load edges, and chase it now.
			e.jumpPPW.Insert(value, a.pc)
			// The target node block itself is what jump-pointer
			// prefetching exists to fetch; request it even before any
			// edges are learned.
			if e.heap.Contains(value) {
				e.EnqueuePrefetch(value, a.pc, a.depth+1, OJump)
			}
		}
		e.ChaseFrom(a.pc, value, a.depth)
	}
	e.pending = e.pending[:n]
	e.pendingMin = kmin

	return e.issuePRQ(now, freePorts)
}

// issuePRQ drains queued prefetch requests into idle cache ports.
func (e *Engine) issuePRQ(now uint64, freePorts int) int {
	used := 0
	for used < freePorts && e.prqLen > 0 {
		r := e.prq[e.prqHead]
		e.prqHead = (e.prqHead + 1) & e.prqMask
		e.prqLen--
		res := e.hier.AccessData(now, r.addr, cache.KPref)
		used++
		if res.Dropped {
			// The line is already resident: the request is discarded
			// with no completion event, so the chain ends here — real
			// DBP gets no response packet to feed the predictor with.
			e.s.DroppedPresent++
			e.s.DroppedByOrigin[r.origin]++
			continue
		}
		e.s.IssuedPrefetch++
		e.s.IssuedByOrigin[r.origin]++
		e.addPending(arrival{
			done: res.Done, addr: r.addr, pc: r.pc, depth: r.depth,
		})
		for _, c := range r.conts[:r.nconts] {
			e.addPending(arrival{
				done: res.Done, addr: c.addr, pc: c.pc, depth: c.depth,
			})
		}
	}
	return used
}
