// Package dbp implements dependence-based prefetching (Roth, Moshovos &
// Sohi [16]), which the paper uses both as its comparison baseline and
// as the chained-prefetching hardware inside the cooperative and
// hardware JPP implementations.
//
// The mechanism has three parts (paper §3.2, Table 2):
//
//   - a potential-producer window (PPW) that remembers recently loaded
//     values and the loads that produced them;
//   - a 256-entry, 4-way associative dependence predictor (DP) holding
//     (producer PC -> consumer PC, offset) correlations, allowing two
//     queries per cycle;
//   - an 8-entry prefetch request queue (PRQ) whose requests issue when
//     data-cache ports are idle, filling a prefetch buffer.
//
// Completed prefetches re-query the predictor with the value they
// fetched, chaining down the linked structure.
package dbp

import "math/bits"

// PPW is the potential producer window: a FIFO of the last N (value,
// producerPC) pairs.  Training looks up a load's base address in the
// window; a hit establishes a producer->consumer dependence.
//
// The value->PC index is an open-addressed table (linear probing,
// backward-shift deletion) rather than a Go map: the window holds at
// most N live values and Insert/Lookup run for every committed load, so
// the fixed low-load-factor table keeps training off the map runtime
// entirely.  Value 0 is never inserted and doubles as the empty-slot
// sentinel.
type PPW struct {
	ring  []ppwEntry
	pos   int
	slots []ppwSlot // value -> producer PC (latest wins)
	shift uint
}

type ppwEntry struct {
	value uint32
	valid bool
}

type ppwSlot struct {
	value uint32
	pc    uint32
}

// NewPPW returns a window of n entries.
func NewPPW(n int) *PPW {
	slots := 1
	for slots < 4*n {
		slots <<= 1
	}
	return &PPW{
		ring:  make([]ppwEntry, n),
		slots: make([]ppwSlot, slots),
		shift: 32 - uint(bits.Len(uint(slots-1))),
	}
}

func (w *PPW) home(value uint32) int {
	return int((value * 0x9E3779B1) >> w.shift)
}

// Insert records that pc produced value.
func (w *PPW) Insert(value, pc uint32) {
	if value == 0 {
		return
	}
	old := &w.ring[w.pos]
	if old.valid {
		// Drop the evicted value from the index.  Like the map this
		// replaces, eviction clears the value even when a newer ring
		// entry re-inserted it; goldens depend on that behaviour.
		w.idxDelete(old.value)
	}
	*old = ppwEntry{value: value, valid: true}
	w.idxInsert(value, pc)
	w.pos = (w.pos + 1) % len(w.ring)
}

// Lookup returns the PC that most recently produced value.
func (w *PPW) Lookup(value uint32) (pc uint32, ok bool) {
	mask := len(w.slots) - 1
	for i := w.home(value); w.slots[i].value != 0; i = (i + 1) & mask {
		if w.slots[i].value == value {
			return w.slots[i].pc, true
		}
	}
	return 0, false
}

func (w *PPW) idxInsert(value, pc uint32) {
	mask := len(w.slots) - 1
	i := w.home(value)
	for w.slots[i].value != 0 {
		if w.slots[i].value == value {
			w.slots[i].pc = pc
			return
		}
		i = (i + 1) & mask
	}
	w.slots[i] = ppwSlot{value: value, pc: pc}
}

func (w *PPW) idxDelete(value uint32) {
	mask := len(w.slots) - 1
	i := w.home(value)
	for w.slots[i].value != value {
		if w.slots[i].value == 0 {
			return
		}
		i = (i + 1) & mask
	}
	// Backward-shift deletion: pull later entries of the probe chain
	// over the hole so lookups never need tombstones.
	j := i
	for {
		j = (j + 1) & mask
		e := w.slots[j]
		if e.value == 0 {
			break
		}
		if (j-w.home(e.value))&mask >= (j-i)&mask {
			w.slots[i] = e
			i = j
		}
	}
	w.slots[i] = ppwSlot{}
}

// Dep is one dependence predictor correlation.
type Dep struct {
	ConsumerPC uint32
	Offset     uint32
}

// DepPredictor is the set-associative dependence predictor.
type DepPredictor struct {
	sets  [][]dpEntry
	assoc int
	tick  uint64

	inserts uint64
	queries uint64
	hits    uint64
}

type dpEntry struct {
	producer uint32
	consumer uint32
	offset   uint32
	lru      uint64
	valid    bool
}

// NewDepPredictor builds a predictor with the given total entries and
// associativity (Table 2: 256 entries, 4-way).
func NewDepPredictor(entries, assoc int) *DepPredictor {
	setsN := entries / assoc
	sets := make([][]dpEntry, setsN)
	backing := make([]dpEntry, entries)
	for i := range sets {
		sets[i] = backing[i*assoc : (i+1)*assoc]
	}
	return &DepPredictor{sets: sets, assoc: assoc}
}

func (d *DepPredictor) set(pc uint32) []dpEntry {
	return d.sets[(pc>>2)&uint32(len(d.sets)-1)]
}

// Insert records the correlation producer -> (consumer, offset).
func (d *DepPredictor) Insert(producer, consumer, offset uint32) {
	d.inserts++
	d.tick++
	set := d.set(producer)
	victim := &set[0]
	for i := range set {
		e := &set[i]
		if e.valid && e.producer == producer && e.consumer == consumer {
			e.offset = offset
			e.lru = d.tick
			return
		}
		if !e.valid {
			victim = e
		} else if victim.valid && e.lru < victim.lru {
			victim = e
		}
	}
	*victim = dpEntry{producer: producer, consumer: consumer, offset: offset,
		lru: d.tick, valid: true}
}

// Query returns the consumers correlated with producer pc.  The result
// slice is freshly allocated per call only on hits; hot paths should
// use QueryInto with a reusable buffer instead.
func (d *DepPredictor) Query(pc uint32) []Dep {
	return d.QueryInto(pc, nil)
}

// QueryInto appends the consumers correlated with producer pc to buf
// and returns the extended slice, keeping the per-query allocation off
// hot paths.
func (d *DepPredictor) QueryInto(pc uint32, buf []Dep) []Dep {
	d.queries++
	set := d.set(pc)
	out := buf
	for i := range set {
		e := &set[i]
		if e.valid && e.producer == pc {
			e.lru = d.tick
			out = append(out, Dep{ConsumerPC: e.consumer, Offset: e.offset})
		}
	}
	if len(out) > len(buf) {
		d.hits++
	}
	return out
}

// HasEdge reports whether producer -> consumer is recorded.
func (d *DepPredictor) HasEdge(producer, consumer uint32) bool {
	set := d.set(producer)
	for i := range set {
		e := &set[i]
		if e.valid && e.producer == producer && e.consumer == consumer {
			return true
		}
	}
	return false
}

// Stats reports predictor activity.
func (d *DepPredictor) Stats() (inserts, queries, hits uint64) {
	return d.inserts, d.queries, d.hits
}
