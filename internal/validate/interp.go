package validate

import (
	"errors"
	"fmt"

	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
)

// ErrTrap is the dynamic-execution failure class: every trap the
// interpreter raises (nil or wild pointer dereference, chase through a
// garbage pointer, dynamic budget exhausted) wraps it.
var ErrTrap = errors.New("validate: trap")

// MaxDynInsts bounds a program's dynamic user-site instruction count;
// the interpreter traps past it, so even an adversarial well-formed
// program terminates.
const MaxDynInsts = 1 << 22

// Interpret executes a program on the in-order reference machine: a
// register file, the simulated heap allocator and a flat memory image —
// no pipeline, no cache, no prefetch engine, and no code shared with
// the timing path beyond the heap/memory primitives both sides define
// their semantics on.  It returns the user-scope architectural Digest.
//
// The interpreter implements the cost model documented on Opcode
// independently of Lower; the differential driver asserts the two
// agree on every program.
func Interpret(p Program) (Digest, error) {
	match, err := p.Check()
	if err != nil {
		return Digest{}, err
	}

	img := mem.NewImage()
	alloc := heap.New(img)
	res := uint32(alloc.AllocIn(0, resultPayload))

	var regs [NumRegs]uint32
	acc := newDigestAcc()

	trap := func(i int, format string, args ...any) error {
		detail := fmt.Sprintf(format, args...)
		return fmt.Errorf("%w: inst %d (%s): %s", ErrTrap, i, p.Insts[i].Op, detail)
	}
	// Data addresses must land inside the simulated heap; address 0 is
	// the null pointer, so a nil-pointer chase traps here too.
	valid := func(addr uint32) bool { return alloc.Contains(addr) }

	// Loop activation frames (OpIfZ needs none: its OpEnd is inert).
	type frame struct {
		open, end int
		left      uint32
	}
	var stack []frame

	for i := 0; i < len(p.Insts); i++ {
		in := p.Insts[i]
		switch in.Op {
		case OpImm:
			regs[in.A] = in.K
			acc.insts++
		case OpAdd:
			regs[in.A] = regs[in.B] + regs[in.C]
			acc.insts++
		case OpSub:
			regs[in.A] = regs[in.B] - regs[in.C]
			acc.insts++
		case OpXor:
			regs[in.A] = regs[in.B] ^ regs[in.C]
			acc.insts++
		case OpMul:
			regs[in.A] = regs[in.B] * regs[in.C]
			acc.insts++
		case OpAddImm:
			regs[in.A] = regs[in.B] + in.K
			acc.insts++
		case OpLoad, OpLoadLDS:
			addr := regs[in.B] + in.K
			if !valid(addr) {
				return Digest{}, trap(i, "load from unmapped address %#x (base %#x)", addr, regs[in.B])
			}
			v := img.ReadWord(addr)
			regs[in.A] = v
			acc.insts++
			acc.mem(ir.Load, in.Op == OpLoadLDS, addr, v)
		case OpStore:
			addr := regs[in.B] + in.K
			if !valid(addr) {
				return Digest{}, trap(i, "store to unmapped address %#x (base %#x)", addr, regs[in.B])
			}
			v := regs[in.A]
			img.WriteWord(addr, v)
			acc.insts++
			acc.mem(ir.Store, false, addr, v)
		case OpAlloc:
			regs[in.A] = uint32(alloc.AllocIn(0, in.K))
		case OpLoop:
			stack = append(stack, frame{open: i, end: match[i], left: in.K})
			acc.insts++ // counter init
		case OpIfZ:
			acc.insts++ // the guarding branch
			if regs[in.A] != 0 {
				i = match[i] // skip the body; its OpEnd is inert
			}
		case OpEnd:
			if n := len(stack); n > 0 && stack[n-1].end == i {
				f := &stack[n-1]
				f.left--
				acc.insts += 2 // counter decrement + backward branch
				if f.left > 0 {
					i = f.open
				} else {
					stack = stack[:n-1]
				}
			}
		case OpChase:
			cur := regs[in.B]
			steps := int(in.C) + 1
			for s := 0; s < steps; s++ {
				addr := cur + in.K
				if !valid(addr) {
					return Digest{}, trap(i, "chase through invalid pointer %#x (step %d)", cur, s)
				}
				next := img.ReadWord(addr)
				acc.insts += 2 // the load and its loop branch
				acc.mem(ir.Load, true, addr, next)
				if next == 0 {
					break
				}
				cur = next
			}
			regs[in.A] = cur
		}
		if acc.insts > MaxDynInsts {
			return Digest{}, trap(i, "dynamic budget exceeded (%d instructions)", MaxDynInsts)
		}
	}

	// Epilogue: spill the register file to the result block so the final
	// registers are architectural heap state, covered by the checksum.
	for r := 0; r < NumRegs; r++ {
		addr := res + uint32(r)*mem.WordBytes
		img.WriteWord(addr, regs[r])
		acc.insts++
		acc.mem(ir.Store, false, addr, regs[r])
	}

	return acc.digest(alloc.PayloadChecksum(), regs), nil
}
