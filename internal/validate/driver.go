package validate

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/olden"
	"repro/internal/prefetch"
)

// Failure describes one divergence (or fault) the driver found.  A
// clean subject produces none.
type Failure struct {
	// Subject identifies the workload/configuration, e.g.
	// "health/coop" or "prog[seed=7]/hw/noskip".
	Subject string
	// Check names the property that failed: "run", "interp", "oracle",
	// "digest", "heap", "orig-insts", "commit-count", "skip-cycles",
	// "replay-cycles", "cycle-sanity", "truncated".
	Check string
	// Detail is the human-readable explanation.
	Detail string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Subject, f.Check, f.Detail)
}

// Driver defaults.
const (
	// DefaultTimeout is the per-simulation wall-clock deadline: a
	// wedged configuration degrades to a reported failure instead of
	// hanging the matrix.
	DefaultTimeout = 2 * time.Minute
	// DefaultMaxCycles is the per-simulation cycle backstop, so an
	// abandoned (timed-out) run also stops simulating on its own.  It
	// is far above any healthy test/small-size run.
	DefaultMaxCycles = 2_000_000_000
	// DefaultSlackRatio/DefaultSlackAbs bound the cycle-sanity check:
	// scheme cycles <= ratio*baseline + abs.  Prefetching is allowed to
	// slow a program down (the paper reports software-scheme overhead
	// slowdowns); the bound exists to catch wedges and gross timing
	// regressions, not to gate performance.
	DefaultSlackRatio = 2.0
	DefaultSlackAbs   = 100_000
)

// Config tunes the differential driver.  The zero value selects every
// scheme and the defaults above.
type Config struct {
	// Schemes to run; nil selects core.Schemes().  The first entry is
	// the cycle-sanity baseline (conventionally SchemeNone).
	Schemes []core.Scheme
	// Engines names registry prefetch engines (internal/prefetch) to
	// validate in addition to the schemes: each runs the unmodified
	// (scheme-none) workload with the engine attached, skip on and off,
	// against the same oracle.  nil selects prefetch.Competitors() —
	// the engines no scheme default already covers; an empty non-nil
	// slice disables the engine leg.
	Engines []string
	// Timeout is the per-simulation deadline (0 = DefaultTimeout,
	// negative = none).
	Timeout time.Duration
	// MaxCycles is the per-simulation backstop (0 = DefaultMaxCycles).
	MaxCycles uint64
	// SlackRatio/SlackAbs override the cycle-sanity bound (0 = default).
	SlackRatio float64
	SlackAbs   uint64

	// Fault and FaultAfter plant a deliberate commit-stage bug into
	// every timing run (never into the oracle).  Mutation tests use
	// them to prove the driver catches real core defects.
	Fault      cpu.Fault
	FaultAfter uint64
}

func (c Config) norm() Config {
	if c.Schemes == nil {
		c.Schemes = core.Schemes()
	}
	if c.Engines == nil {
		c.Engines = prefetch.Competitors()
	}
	if c.Timeout == 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = DefaultMaxCycles
	}
	if c.SlackRatio == 0 {
		c.SlackRatio = DefaultSlackRatio
	}
	if c.SlackAbs == 0 {
		c.SlackAbs = DefaultSlackAbs
	}
	return c
}

// oracleGuarded is Oracle with fault isolation: a panicking kernel
// becomes an error instead of killing the matrix.
func oracleGuarded(kernel func(*ir.Asm), withRegs bool) (full, user Digest, st ir.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("oracle panicked: %v", r)
		}
	}()
	full, user, st = Oracle(kernel, withRegs)
	return full, user, st, nil
}

// diffDigest compares a run digest against the oracle's field by field.
func diffDigest(subject string, got, want Digest, withRegs bool) []Failure {
	var fails []Failure
	add := func(check, format string, args ...any) {
		fails = append(fails, Failure{Subject: subject, Check: check, Detail: fmt.Sprintf(format, args...)})
	}
	if got.Insts != want.Insts {
		add("digest", "instruction count %d, oracle %d", got.Insts, want.Insts)
	}
	if got.MemHash != want.MemHash {
		add("digest", "load/store stream hash %#x, oracle %#x", got.MemHash, want.MemHash)
	}
	if got.HeapSum != want.HeapSum {
		add("heap", "heap payload checksum %#x, oracle %#x", got.HeapSum, want.HeapSum)
	}
	if withRegs && got.Regs != want.Regs {
		add("digest", "final registers %v, oracle %v", got.Regs, want.Regs)
	}
	return fails
}

// timedRun executes one timing-core simulation with a digest collector
// attached, under the driver's fault isolation (panic recovery +
// deadline + cycle backstop).
func timedRun(spec harness.Spec, disableSkip, disableReplay bool, cfg Config) (harness.Result, *Collector, error) {
	col := NewCollector()
	cc := cpu.Defaults()
	if spec.CPU != nil {
		cc = *spec.CPU
	}
	cc.Tracer = col
	cc.MaxCycles = cfg.MaxCycles
	cc.DisableCycleSkip = disableSkip
	cc.DisableBlockReplay = disableReplay
	cc.InjectFault = cfg.Fault
	cc.FaultAfter = cfg.FaultAfter
	spec.CPU = &cc
	if cfg.Timeout > 0 {
		spec.Timeout = cfg.Timeout
	}
	res, err := harness.RunGuarded(spec)
	return res, col, err
}

// runVariant is one (cycle-skip, block-replay) mode combination of the
// differential matrix.  The default mode runs first; the replay-off leg
// exercises the per-instruction emission and fetch paths so a replay
// bug cannot hide by breaking both sides identically.
type runVariant struct {
	name                       string
	disableSkip, disableReplay bool
}

var runVariants = [...]runVariant{
	{name: "skip", disableSkip: false, disableReplay: false},
	{name: "noskip", disableSkip: true, disableReplay: false},
	{name: "noreplay", disableSkip: false, disableReplay: true},
}

// checkRuns drives one workload/scheme through the core under every
// (cycle-skip, block-replay) variant, comparing each commit-side digest
// against the oracle and asserting all variants are cycle-exact
// equivalents.  It returns the default variant's cycle count (0 when it
// could not be obtained) for the caller's cycle-sanity bound.
func checkRuns(subject string, spec harness.Spec, oracle Digest, emitted uint64, withRegs bool, cfg Config) ([]Failure, uint64) {
	var fails []Failure
	var cycles [len(runVariants)]uint64
	ok := [len(runVariants)]bool{}
	for i, v := range runVariants {
		name := subject + "/" + v.name
		res, col, err := timedRun(spec, v.disableSkip, v.disableReplay, cfg)
		if err != nil {
			fails = append(fails, Failure{Subject: name, Check: "run", Detail: err.Error()})
			continue
		}
		if res.CPU.Truncated {
			fails = append(fails, Failure{Subject: name, Check: "truncated",
				Detail: fmt.Sprintf("hit the %d-cycle backstop", cfg.MaxCycles)})
			continue
		}
		if got, want := res.CPU.Insts, res.Insts.Total(); got != want {
			fails = append(fails, Failure{Subject: name, Check: "commit-count",
				Detail: fmt.Sprintf("committed %d instructions, kernel emitted %d", got, want)})
		}
		if emitted > 0 && res.Insts.Total() != emitted {
			fails = append(fails, Failure{Subject: name, Check: "commit-count",
				Detail: fmt.Sprintf("kernel emitted %d instructions, oracle saw %d", res.Insts.Total(), emitted)})
		}
		var regs [NumRegs]uint32
		if withRegs {
			regs = finalRegs(res.Heap)
		}
		full, _ := col.Digests(res.Heap.PayloadChecksum(), regs)
		fails = append(fails, diffDigest(name, full, oracle, withRegs)...)
		cycles[i] = res.CPU.Cycles
		ok[i] = true
	}
	if ok[0] && ok[1] && cycles[0] != cycles[1] {
		fails = append(fails, Failure{Subject: subject, Check: "skip-cycles",
			Detail: fmt.Sprintf("cycle skipping changed execution time: skip=%d noskip=%d", cycles[0], cycles[1])})
	}
	if ok[0] && ok[2] && cycles[0] != cycles[2] {
		fails = append(fails, Failure{Subject: subject, Check: "replay-cycles",
			Detail: fmt.Sprintf("block replay changed execution time: replay=%d noreplay=%d", cycles[0], cycles[2])})
	}
	if ok[0] {
		return fails, cycles[0]
	}
	return fails, 0
}

// cycleSanity bounds a scheme's execution time against the baseline.
func cycleSanity(subject string, cycles, base uint64, cfg Config) []Failure {
	if base == 0 || cycles == 0 {
		return nil
	}
	bound := uint64(cfg.SlackRatio*float64(base)) + cfg.SlackAbs
	if cycles > bound {
		return []Failure{{Subject: subject, Check: "cycle-sanity",
			Detail: fmt.Sprintf("%d cycles exceeds %.1fx baseline (%d) + %d = %d",
				cycles, cfg.SlackRatio, base, cfg.SlackAbs, bound)}}
	}
	return nil
}

// CheckProgram validates one seeded random program: the reference
// interpreter, the in-order stream oracle and every timing-core run
// (scheme x cycle-skip mode) must agree on the architectural digest.
func CheckProgram(seed uint64, cfg Config) []Failure {
	cfg = cfg.norm()
	subject := fmt.Sprintf("prog[seed=%d]", seed)
	prog := Generate(seed)

	ref, err := Interpret(prog)
	if err != nil {
		return []Failure{{Subject: subject, Check: "interp",
			Detail: fmt.Sprintf("generator emitted a trapping program: %v", err)}}
	}
	kernel, err := Lower(prog)
	if err != nil {
		return []Failure{{Subject: subject, Check: "interp", Detail: err.Error()}}
	}
	full, user, st, err := oracleGuarded(kernel, true)
	if err != nil {
		return []Failure{{Subject: subject, Check: "oracle", Detail: err.Error()}}
	}

	// Lowering fidelity: the Asm execution restricted to user sites
	// must match the independent interpreter exactly.
	fails := diffDigest(subject+"/oracle-vs-interp", user, ref, true)
	if ref.Insts == 0 {
		fails = append(fails, Failure{Subject: subject, Check: "interp", Detail: "empty program digest (vacuous)"})
	}

	// Timing matrix: the commit stream must reproduce the oracle stream
	// under every scheme.  The lowered kernel is scheme-independent, so
	// one oracle digest serves the whole matrix.
	var base uint64
	for i, scheme := range cfg.Schemes {
		spec := harness.Spec{
			Bench:  subject,
			Kernel: kernel,
			Params: olden.Params{Scheme: scheme, Size: olden.SizeTest},
		}
		runFails, cycles := checkRuns(fmt.Sprintf("%s/%s", subject, scheme), spec, full, st.Total(), true, cfg)
		fails = append(fails, runFails...)
		if i == 0 {
			base = cycles
		} else {
			fails = append(fails, cycleSanity(fmt.Sprintf("%s/%s", subject, scheme), cycles, base, cfg)...)
		}
	}
	// Engine leg: registry prefetchers are pure hardware — they must not
	// perturb the committed stream, so the same oracle digest applies.
	for _, engName := range cfg.Engines {
		name := fmt.Sprintf("%s/eng=%s", subject, engName)
		spec := harness.Spec{
			Bench:  subject,
			Kernel: kernel,
			Engine: engName,
			Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeTest},
		}
		runFails, cycles := checkRuns(name, spec, full, st.Total(), true, cfg)
		fails = append(fails, runFails...)
		fails = append(fails, cycleSanity(name, cycles, base, cfg)...)
	}
	return fails
}

// CheckKernel validates one registered workload (Olden or
// internal/kernels) at the given input size: for every scheme, the
// timing core's commit stream (skip on and off) must be byte-identical
// to the in-order oracle's drain of the same kernel, the heap payload
// checksum and non-overhead instruction count must be invariant across
// schemes, and no scheme may blow past the cycle-sanity bound.
func CheckKernel(bench string, size olden.Size, cfg Config) []Failure {
	cfg = cfg.norm()
	b, ok := harness.BenchByName(bench)
	if !ok {
		return []Failure{{Subject: bench, Check: "run", Detail: "unknown benchmark"}}
	}
	var fails []Failure
	var base uint64
	var baseHeap, baseOrig uint64
	for i, scheme := range cfg.Schemes {
		subject := fmt.Sprintf("%s/%s", bench, scheme)
		params := olden.Params{Scheme: scheme, Size: size}

		// Per-scheme oracle: the software schemes change the emitted
		// stream (idiom code), so each scheme is compared against the
		// in-order drain of its own stream.
		full, _, st, err := oracleGuarded(b.Kernel(params), false)
		if err != nil {
			fails = append(fails, Failure{Subject: subject, Check: "oracle", Detail: err.Error()})
			continue
		}
		if i == 0 {
			baseHeap, baseOrig = full.HeapSum, st.OrigInsts
		} else {
			// Prefetching may plant jump pointers in padding and emit
			// overhead instructions; it must not touch payloads or the
			// original instruction stream.
			if full.HeapSum != baseHeap {
				fails = append(fails, Failure{Subject: subject, Check: "heap",
					Detail: fmt.Sprintf("heap payload checksum %#x, baseline %#x", full.HeapSum, baseHeap)})
			}
			if st.OrigInsts != baseOrig {
				fails = append(fails, Failure{Subject: subject, Check: "orig-insts",
					Detail: fmt.Sprintf("%d non-overhead instructions, baseline %d", st.OrigInsts, baseOrig)})
			}
		}

		spec := harness.Spec{Bench: bench, Params: params}
		runFails, cycles := checkRuns(subject, spec, full, st.Total(), false, cfg)
		fails = append(fails, runFails...)
		if i == 0 {
			base = cycles
		} else {
			fails = append(fails, cycleSanity(subject, cycles, base, cfg)...)
		}
	}
	// Engine leg: every configured registry engine runs the unmodified
	// (scheme-none) kernel.  Engines are invisible to architectural
	// state, so the scheme-none oracle digest is the reference.
	if len(cfg.Engines) > 0 {
		params := olden.Params{Scheme: core.SchemeNone, Size: size}
		full, _, st, err := oracleGuarded(b.Kernel(params), false)
		if err != nil {
			fails = append(fails, Failure{Subject: bench + "/eng", Check: "oracle", Detail: err.Error()})
			return fails
		}
		for _, engName := range cfg.Engines {
			subject := fmt.Sprintf("%s/eng=%s", bench, engName)
			spec := harness.Spec{Bench: bench, Params: params, Engine: engName}
			runFails, cycles := checkRuns(subject, spec, full, st.Total(), false, cfg)
			fails = append(fails, runFails...)
			fails = append(fails, cycleSanity(subject, cycles, base, cfg)...)
		}
	}
	return fails
}

// MatrixOptions configures RunMatrix.
type MatrixOptions struct {
	Config
	// Benches restricts the kernel matrix (nil = every registered
	// benchmark).
	Benches []string
	// Size is the kernel matrix input size (0 = olden.SizeTest).
	Size olden.Size
	// Programs is the random-program count (0 = 25, negative = none).
	Programs int
	// Seed is the first program seed (0 = 1); programs use Seed,
	// Seed+1, ...
	Seed uint64
}

// RunMatrix runs the full differential matrix — every benchmark x
// scheme x skip mode plus the seeded random-program sweep — writing a
// progress line per subject to w (nil discards) and returning every
// failure.
func RunMatrix(w io.Writer, o MatrixOptions) []Failure {
	if w == nil {
		w = io.Discard
	}
	benches := o.Benches
	if benches == nil {
		benches = harness.BenchNames()
	}
	if o.Size == 0 {
		o.Size = olden.SizeTest
	}
	if o.Programs == 0 {
		o.Programs = 25
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	status := func(fails []Failure) string {
		if len(fails) == 0 {
			return "ok"
		}
		return fmt.Sprintf("FAIL (%d)", len(fails))
	}
	var all []Failure
	subjects := 0
	for _, bench := range benches {
		fails := CheckKernel(bench, o.Size, o.Config)
		fmt.Fprintf(w, "kernel  %-14s %s\n", bench, status(fails))
		all = append(all, fails...)
		subjects++
	}
	for i := 0; i < o.Programs; i++ {
		seed := o.Seed + uint64(i)
		fails := CheckProgram(seed, o.Config)
		fmt.Fprintf(w, "program seed=%-8d %s\n", seed, status(fails))
		all = append(all, fails...)
		subjects++
	}
	for _, f := range all {
		fmt.Fprintf(w, "FAIL %s\n", f)
	}
	fmt.Fprintf(w, "validate: %d subjects, %d failure(s)\n", subjects, len(all))
	return all
}
