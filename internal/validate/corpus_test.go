package validate

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the pinned corpus digests (same convention as the
// harness golden snapshots).  Only do this after convincing yourself a
// digest change is an intended semantics change, not a regression.
var updateCorpus = flag.Bool("update", false, "regenerate testdata/seeds.json")

const corpusFile = "testdata/seeds.json"

// corpusEntry pins one seed's reference digest.  Hashes are hex strings
// so the file diffs readably and JSON number precision never matters.
type corpusEntry struct {
	Seed    uint64          `json:"seed"`
	Insts   uint64          `json:"insts"`
	MemHash string          `json:"memhash"`
	HeapSum string          `json:"heapsum"`
	Regs    [NumRegs]uint32 `json:"regs"`
}

func digestEntry(seed uint64, d Digest) corpusEntry {
	return corpusEntry{
		Seed:    seed,
		Insts:   d.Insts,
		MemHash: fmt.Sprintf("%016x", d.MemHash),
		HeapSum: fmt.Sprintf("%016x", d.HeapSum),
		Regs:    d.Regs,
	}
}

// TestRegressionCorpus pins the reference digests of 25 seeds: the
// generator and interpreter must keep producing bit-identical behavior
// across refactors.  (The differential matrix then ties the timing core
// to these same digests, so this file transitively pins the whole
// stack.)
func TestRegressionCorpus(t *testing.T) {
	const seeds = 25
	got := make([]corpusEntry, 0, seeds)
	for seed := uint64(1); seed <= seeds; seed++ {
		d, err := Interpret(Generate(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got = append(got, digestEntry(seed, d))
	}

	if *updateCorpus {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(corpusFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(corpusFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d seeds)", corpusFile, seeds)
		return
	}

	data, err := os.ReadFile(corpusFile)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/validate -run TestRegressionCorpus -update` to create it)", err)
	}
	var want []corpusEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", corpusFile, err)
	}
	if len(want) != seeds {
		t.Fatalf("%s has %d entries, want %d", corpusFile, len(want), seeds)
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("seed %d digest changed:\n  got  %+v\n  want %+v\n(intended? regenerate with -update)",
				w.Seed, got[i], w)
		}
	}
}
