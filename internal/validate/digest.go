package validate

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
)

// userPC is the first program counter of user-site instructions; PCs
// below it belong to the simulated runtime (malloc/free) and to the
// lowering's prologue bookkeeping.
var userPC = ir.SitePC(ir.FirstUserSite)

// Digest is the architectural fingerprint of one program execution.
// Two executions of the same workload must produce identical digests
// no matter which prefetch scheme, cycle-skip mode or pipeline ran
// them — prefetching may only move cycles, never architectural state.
type Digest struct {
	// Insts is the dynamic instruction count.
	Insts uint64
	// MemHash chains every load and store in order: class, the FLDS
	// tag, effective address and data value.
	MemHash uint64
	// HeapSum is heap.PayloadChecksum over the final live heap.
	HeapSum uint64
	// Regs is the final register file (program runs; zero for Olden
	// kernels, which have no micro-IR register file).
	Regs [NumRegs]uint32
}

func (d Digest) String() string {
	return fmt.Sprintf("insts=%d memhash=%#016x heapsum=%#016x regs=%v",
		d.Insts, d.MemHash, d.HeapSum, d.Regs)
}

// FNV-1a, accumulated a byte at a time so both digest producers hash
// the identical byte stream.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// digestAcc accumulates an instruction stream into digest fields.
type digestAcc struct {
	insts uint64
	h     uint64
}

func newDigestAcc() digestAcc { return digestAcc{h: fnvOffset} }

func (a *digestAcc) byte(b byte) {
	a.h = (a.h ^ uint64(b)) * fnvPrime
}

func (a *digestAcc) word(w uint32) {
	a.byte(byte(w))
	a.byte(byte(w >> 8))
	a.byte(byte(w >> 16))
	a.byte(byte(w >> 24))
}

// mem folds one memory operation into the hash.  The tag byte packs the
// instruction class with the LDS marker so a load and a store to the
// same address/value, or an untagged copy of a tagged load, still
// diverge.
func (a *digestAcc) mem(class ir.Class, lds bool, addr, value uint32) {
	tag := byte(class)
	if lds {
		tag |= 0x80
	}
	a.byte(tag)
	a.word(addr)
	a.word(value)
}

// note folds one dynamic instruction into the accumulator.
func (a *digestAcc) note(d *ir.DynInst) {
	a.insts++
	switch d.Class {
	case ir.Load, ir.Store:
		a.mem(d.Class, d.Flags&ir.FLDS != 0, d.Addr, d.Value)
	}
}

func (a *digestAcc) digest(heapSum uint64, regs [NumRegs]uint32) Digest {
	return Digest{Insts: a.insts, MemHash: a.h, HeapSum: heapSum, Regs: regs}
}

// Oracle executes a kernel functionally, in order, with no pipeline and
// no cache: it drains the kernel's dynamic instruction stream exactly
// as the timing core would receive it and digests the architectural
// outcome.  It returns the digest over the full stream, the digest
// restricted to user-site instructions (the scope the reference
// interpreter models), and the kernel's emission statistics.
//
// withRegs selects reading the final register file back from the
// lowering's result block (program runs); Olden kernels pass false.
func Oracle(kernel func(*ir.Asm), withRegs bool) (full, user Digest, st ir.Stats) {
	img := mem.NewImage()
	alloc := heap.New(img)
	gen := ir.NewGen(alloc, kernel)
	fa, ua := newDigestAcc(), newDigestAcc()
	for d := gen.Next(); d != nil; d = gen.Next() {
		fa.note(d)
		if d.PC >= userPC {
			ua.note(d)
		}
	}
	sum := alloc.PayloadChecksum()
	var regs [NumRegs]uint32
	if withRegs {
		regs = finalRegs(alloc)
	}
	return fa.digest(sum, regs), ua.digest(sum, regs), gen.Stats()
}

// Collector digests the committed instruction stream of a timing-core
// run.  It implements cpu.Tracer: the core invokes Trace once per
// commit, in program order, so a core that loses, duplicates, reorders
// or corrupts a commit produces a digest that cannot match the
// oracle's.  One Collector serves one run.
type Collector struct {
	full, user digestAcc
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{full: newDigestAcc(), user: newDigestAcc()}
}

// Trace folds one committed instruction into the digests.
func (c *Collector) Trace(d *ir.DynInst, _, _, _ uint64) {
	c.full.note(d)
	if d.PC >= userPC {
		c.user.note(d)
	}
}

// Digests finalizes the collector against the run's end-of-run heap
// state.
func (c *Collector) Digests(heapSum uint64, regs [NumRegs]uint32) (full, user Digest) {
	return c.full.digest(heapSum, regs), c.user.digest(heapSum, regs)
}

// finalRegs reads the register file the lowering's epilogue spilled to
// the result block (the program's first heap allocation).
func finalRegs(alloc *heap.Allocator) [NumRegs]uint32 {
	var regs [NumRegs]uint32
	img := alloc.Image()
	for r := range regs {
		regs[r] = img.ReadWord(resultBase + uint32(r)*mem.WordBytes)
	}
	return regs
}
