package validate

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
)

// Lowering geometry.  Static instruction i owns the site group
// [FirstUserSite + i*sitesPerOp, ...+sitesPerOp): slot 0 is the
// operation itself, slots 1-2 carry a loop's decrement and backward
// branch, so every static micro-IR op has stable, distinct PCs — the
// granularity the PC-indexed prefetch predictors train on.
const sitesPerOp = 4

// The result block is the program's first heap allocation: NumRegs
// words the epilogue spills the register file into, making the final
// registers ordinary architectural heap state.  The bump allocator
// places the first allocation at heap.Base, so its address is a
// constant both executions share.
const (
	resultPayload = NumRegs * mem.WordBytes
	resultBase    = uint32(heap.Base)
)

// Lower compiles a checked program into an ir.Asm kernel for the
// timing simulator.  The kernel both functionally executes the program
// (the Asm API is execution-driven) and emits one dynamic instruction
// stream per the cost model documented on Opcode.  The returned kernel
// is pure: it may be invoked once per run from concurrent runs.
func Lower(p Program) (func(*ir.Asm), error) {
	match, err := p.Check()
	if err != nil {
		return nil, err
	}
	insts := append([]Inst(nil), p.Insts...)
	return func(a *ir.Asm) {
		site := func(i int) int { return ir.FirstUserSite + i*sitesPerOp }

		// Prologue: the result block.  Malloc's bookkeeping instructions
		// live at runtime sites, outside the user scope.
		resPtr := a.Malloc(resultPayload)
		if resPtr.U32() != resultBase {
			panic(fmt.Sprintf("validate: result block at %#x, want %#x (allocator layout changed?)",
				resPtr.U32(), resultBase))
		}

		var regs [NumRegs]ir.Val
		type frame struct {
			open, end int
			left      uint32
			ctr       ir.Val
		}
		var stack []frame

		for i := 0; i < len(insts); i++ {
			in := insts[i]
			s := site(i)
			switch in.Op {
			case OpImm:
				regs[in.A] = a.Op(s, ir.IntAlu, in.K, ir.Imm(in.K), ir.Val{})
			case OpAdd:
				regs[in.A] = a.Op(s, ir.IntAlu, regs[in.B].U32()+regs[in.C].U32(), regs[in.B], regs[in.C])
			case OpSub:
				regs[in.A] = a.Op(s, ir.IntAlu, regs[in.B].U32()-regs[in.C].U32(), regs[in.B], regs[in.C])
			case OpXor:
				regs[in.A] = a.Op(s, ir.IntAlu, regs[in.B].U32()^regs[in.C].U32(), regs[in.B], regs[in.C])
			case OpMul:
				regs[in.A] = a.Op(s, ir.IntMult, regs[in.B].U32()*regs[in.C].U32(), regs[in.B], regs[in.C])
			case OpAddImm:
				regs[in.A] = a.AddImm(s, regs[in.B], in.K)
			case OpLoad:
				regs[in.A] = a.Load(s, regs[in.B], in.K, 0)
			case OpLoadLDS:
				regs[in.A] = a.Load(s, regs[in.B], in.K, ir.FLDS)
			case OpStore:
				a.Store(s, regs[in.B], in.K, regs[in.A])
			case OpAlloc:
				regs[in.A] = a.Malloc(in.K)
			case OpLoop:
				ctr := a.Op(s, ir.IntAlu, in.K, ir.Imm(in.K), ir.Val{})
				stack = append(stack, frame{open: i, end: match[i], left: in.K, ctr: ctr})
			case OpIfZ:
				cond := regs[in.A]
				taken := cond.U32() != 0 // branch around the body
				a.Branch(s, taken, site(match[i]+1), cond, ir.Val{})
				if taken {
					i = match[i] // its OpEnd is inert
				}
			case OpEnd:
				if n := len(stack); n > 0 && stack[n-1].end == i {
					f := &stack[n-1]
					f.left--
					f.ctr = a.Op(site(f.open)+1, ir.IntAlu, f.ctr.U32()-1, f.ctr, ir.Val{})
					taken := f.left > 0 // backward branch to the body
					a.Branch(site(f.open)+2, taken, site(f.open+1), f.ctr, ir.Val{})
					if taken {
						i = f.open
					} else {
						stack = stack[:n-1]
					}
				}
			case OpChase:
				cur := regs[in.B]
				steps := int(in.C) + 1
				for st := 0; st < steps; st++ {
					next := a.Load(s, cur, in.K, ir.FLDS)
					more := next.U32() != 0 && st+1 < steps
					a.Branch(s+1, more, s, next, ir.Val{})
					if next.IsNil() {
						break
					}
					cur = next
				}
				regs[in.A] = cur
			}
		}

		// Epilogue: spill the register file to the result block.
		for r := 0; r < NumRegs; r++ {
			a.Store(site(len(insts))+r, resPtr, uint32(r)*mem.WordBytes, regs[r])
		}
	}, nil
}
