package validate

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/olden"
)

// samplingTestConfig shrinks the sampling unit so the SizeSmall streams
// (roughly 100k instructions) still cover many intervals.
func samplingTestConfig() *cpu.SamplingConfig {
	return &cpu.SamplingConfig{Period: 10_000, Detail: 1_500, Warmup: 500}
}

// runDigested executes spec with a digest collector attached and
// returns the result plus the full-stream architectural digest.
func runDigested(t *testing.T, spec harness.Spec) (harness.Result, Digest) {
	t.Helper()
	col := NewCollector()
	cc := cpu.Defaults()
	if spec.CPU != nil {
		cc = *spec.CPU
	}
	cc.Tracer = col
	spec.CPU = &cc
	res, err := harness.Run(spec)
	if err != nil {
		t.Fatalf("Run(%s/%s): %v", spec.Bench, spec.Params.Scheme, err)
	}
	full, _ := col.Digests(res.Heap.PayloadChecksum(), [NumRegs]uint32{})
	return res, full
}

// TestSampledMatchesFull is the sampled-simulation acceptance matrix:
// for every scheme, the sampled run must commit the identical
// architectural stream (bit-identical digest, same instruction count),
// produce a valid snapshot, and the per-scheme speedups over the
// baseline — the paper's reported quantity — must agree with the
// full-fidelity runs within tolerance in geomean.
func TestSampledMatchesFull(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix of full simulations")
	}
	const bench = "health"
	type pair struct {
		scheme        core.Scheme
		full, sampled uint64 // cycles
	}
	var pairs []pair
	for _, scheme := range core.Schemes() {
		spec := harness.Spec{
			Bench:  bench,
			Params: olden.Params{Scheme: scheme, Size: olden.SizeSmall},
		}
		fullRes, fullDig := runDigested(t, spec)

		spec.Sampling = samplingTestConfig()
		samRes, samDig := runDigested(t, spec)

		name := scheme.String()
		if samDig != fullDig {
			t.Errorf("%s: sampled digest %v != full digest %v", name, samDig, fullDig)
		}
		if samRes.CPU.Insts != fullRes.CPU.Insts {
			t.Errorf("%s: sampled committed %d instructions, full %d",
				name, samRes.CPU.Insts, fullRes.CPU.Insts)
		}
		if samRes.CPU.Sample == nil {
			t.Fatalf("%s: sampled run reported no SampleStats", name)
		}
		if samRes.CPU.Sample.Intervals < 2 {
			t.Errorf("%s: only %d measured intervals; stream too short for the test config",
				name, samRes.CPU.Sample.Intervals)
		}
		if samRes.CPU.Sample.FFInsts == 0 {
			t.Errorf("%s: sampled run fast-forwarded nothing", name)
		}
		if !samRes.Stats.Sampled || samRes.Stats.Sampling == nil {
			t.Errorf("%s: sampled snapshot not flagged: Sampled=%v Sampling=%v",
				name, samRes.Stats.Sampled, samRes.Stats.Sampling)
		}
		if err := samRes.Stats.Validate(); err != nil {
			t.Errorf("%s: sampled snapshot invalid: %v", name, err)
		}
		if fullRes.Stats.Sampled || fullRes.Stats.Sampling != nil {
			t.Errorf("%s: full-fidelity snapshot wrongly flagged sampled", name)
		}
		pairs = append(pairs, pair{scheme, fullRes.CPU.Cycles, samRes.CPU.Cycles})
	}

	// Speedup agreement: geomean over schemes of (baseline / scheme)
	// cycles, computed from full and from sampled runs, within 5%.
	base := pairs[0]
	if base.scheme != core.SchemeNone {
		t.Fatalf("expected baseline first, got %s", base.scheme)
	}
	logFull, logSam := 0.0, 0.0
	n := 0
	for _, p := range pairs[1:] {
		sf := float64(base.full) / float64(p.full)
		ss := float64(base.sampled) / float64(p.sampled)
		t.Logf("%s: speedup full %.4f sampled %.4f", p.scheme, sf, ss)
		logFull += math.Log(sf)
		logSam += math.Log(ss)
		n++
	}
	gmFull := math.Exp(logFull / float64(n))
	gmSam := math.Exp(logSam / float64(n))
	if ratio := gmSam / gmFull; ratio < 0.95 || ratio > 1.05 {
		t.Errorf("speedup geomean disagrees: full %.4f, sampled %.4f (ratio %.4f, want within 5%%)",
			gmFull, gmSam, ratio)
	} else {
		t.Logf("speedup geomean: full %.4f sampled %.4f (ratio %.4f)", gmFull, gmSam, gmSam/gmFull)
	}
}

// TestSampledErrorBars asserts the confidence interval brackets the
// extrapolated count and (a sanity property, not a guarantee) that the
// full-fidelity cycle count lands within a loose multiple of it.
func TestSampledErrorBars(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations")
	}
	spec := harness.Spec{
		Bench:  "mst",
		Params: olden.Params{Scheme: core.SchemeNone, Size: olden.SizeSmall},
	}
	full, err := harness.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Sampling = samplingTestConfig()
	sam, err := harness.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := sam.CPU.Sample
	if s == nil {
		t.Fatal("no SampleStats")
	}
	if s.CyclesLo > sam.CPU.Cycles || s.CyclesHi < sam.CPU.Cycles {
		t.Errorf("confidence interval [%d, %d] excludes estimate %d",
			s.CyclesLo, s.CyclesHi, sam.CPU.Cycles)
	}
	// The interval quantifies interval-to-interval CPI variance, not
	// warmup bias, so allow generous slack around the full-run truth.
	lo := s.CyclesLo - s.CyclesLo/4
	hi := s.CyclesHi + s.CyclesHi/4
	if full.CPU.Cycles < lo || full.CPU.Cycles > hi {
		t.Errorf("full-run cycles %d far outside sampled interval [%d, %d] (±25%% slack)",
			full.CPU.Cycles, s.CyclesLo, s.CyclesHi)
	}
	t.Logf("full %d, sampled %d [%d, %d], CPI %.3f±%.3f, %d intervals, %d FF insts",
		full.CPU.Cycles, sam.CPU.Cycles, s.CyclesLo, s.CyclesHi,
		s.CPIMean, s.CPIStdErr, s.Intervals, s.FFInsts)
}
