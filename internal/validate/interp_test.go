package validate

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/heap"
	"repro/internal/mem"
)

// mirrorAllocs replays the interpreter's allocation sequence (result
// block first, then each payload size in order) on a fresh heap and
// returns the resulting addresses — so tests state expected pointer
// values without hardcoding allocator layout.
func mirrorAllocs(sizes ...uint32) []uint32 {
	alloc := heap.New(mem.NewImage())
	alloc.AllocIn(0, resultPayload)
	out := make([]uint32, len(sizes))
	for i, n := range sizes {
		out[i] = uint32(alloc.AllocIn(0, n))
	}
	return out
}

func mustInterpret(t *testing.T, p Program) Digest {
	t.Helper()
	d, err := Interpret(p)
	if err != nil {
		t.Fatalf("Interpret: %v", err)
	}
	return d
}

// epilogue is the register spill every program execution ends with.
const epilogue = NumRegs

func TestInterpretOpcodes(t *testing.T) {
	nodes := mirrorAllocs(16, 16, 16)
	tests := []struct {
		name  string
		insts []Inst
		// wantInsts is the full dynamic count including the epilogue.
		wantInsts uint64
		// wantRegs lists the registers whose final value matters.
		wantRegs map[uint8]uint32
	}{
		{
			name:      "imm",
			insts:     []Inst{{Op: OpImm, A: 0, K: 5}},
			wantInsts: 1 + epilogue,
			wantRegs:  map[uint8]uint32{0: 5},
		},
		{
			name: "add",
			insts: []Inst{
				{Op: OpImm, A: 0, K: 2}, {Op: OpImm, A: 1, K: 3},
				{Op: OpAdd, A: 2, B: 0, C: 1},
			},
			wantInsts: 3 + epilogue,
			wantRegs:  map[uint8]uint32{2: 5},
		},
		{
			name: "sub-wraps",
			insts: []Inst{
				{Op: OpImm, A: 0, K: 2}, {Op: OpImm, A: 1, K: 3},
				{Op: OpSub, A: 2, B: 0, C: 1},
			},
			wantInsts: 3 + epilogue,
			wantRegs:  map[uint8]uint32{2: 0xffffffff},
		},
		{
			name: "xor",
			insts: []Inst{
				{Op: OpImm, A: 0, K: 6}, {Op: OpImm, A: 1, K: 3},
				{Op: OpXor, A: 2, B: 0, C: 1},
			},
			wantInsts: 3 + epilogue,
			wantRegs:  map[uint8]uint32{2: 5},
		},
		{
			name: "mul",
			insts: []Inst{
				{Op: OpImm, A: 0, K: 7}, {Op: OpImm, A: 1, K: 3},
				{Op: OpMul, A: 2, B: 0, C: 1},
			},
			wantInsts: 3 + epilogue,
			wantRegs:  map[uint8]uint32{2: 21},
		},
		{
			name:      "addimm",
			insts:     []Inst{{Op: OpImm, A: 0, K: 40}, {Op: OpAddImm, A: 1, B: 0, K: 2}},
			wantInsts: 2 + epilogue,
			wantRegs:  map[uint8]uint32{1: 42},
		},
		{
			name: "alloc-store-load",
			insts: []Inst{
				{Op: OpAlloc, A: 1, K: 16}, // counts 0 user insts
				{Op: OpImm, A: 0, K: 0x1234},
				{Op: OpStore, A: 0, B: 1, K: 4},
				{Op: OpLoad, A: 2, B: 1, K: 4},
			},
			wantInsts: 3 + epilogue,
			wantRegs:  map[uint8]uint32{1: nodes[0], 2: 0x1234},
		},
		{
			name: "load-lds-same-semantics",
			insts: []Inst{
				{Op: OpAlloc, A: 1, K: 16},
				{Op: OpImm, A: 0, K: 0x1234},
				{Op: OpStore, A: 0, B: 1, K: 4},
				{Op: OpLoadLDS, A: 2, B: 1, K: 4},
			},
			wantInsts: 3 + epilogue,
			wantRegs:  map[uint8]uint32{2: 0x1234},
		},
		{
			name: "loop",
			insts: []Inst{
				{Op: OpLoop, K: 3},
				{Op: OpAddImm, A: 0, B: 0, K: 2},
				{Op: OpEnd},
			},
			// init + 3 x (body + decrement + branch)
			wantInsts: 1 + 3*(1+2) + epilogue,
			wantRegs:  map[uint8]uint32{0: 6},
		},
		{
			name: "nested-loop",
			insts: []Inst{
				{Op: OpLoop, K: 2},
				{Op: OpLoop, K: 3},
				{Op: OpAddImm, A: 0, B: 0, K: 1},
				{Op: OpEnd},
				{Op: OpEnd},
			},
			wantInsts: 1 + 2*((1+3*(1+2))+2) + epilogue,
			wantRegs:  map[uint8]uint32{0: 6},
		},
		{
			name: "ifz-taken",
			insts: []Inst{
				{Op: OpIfZ, A: 0}, // r0 == 0: body runs
				{Op: OpAddImm, A: 1, B: 1, K: 5},
				{Op: OpEnd},
			},
			wantInsts: 1 + 1 + epilogue,
			wantRegs:  map[uint8]uint32{1: 5},
		},
		{
			name: "ifz-skipped",
			insts: []Inst{
				{Op: OpImm, A: 0, K: 1},
				{Op: OpIfZ, A: 0}, // r0 != 0: body skipped
				{Op: OpAddImm, A: 1, B: 1, K: 5},
				{Op: OpEnd},
			},
			wantInsts: 1 + 1 + epilogue,
			wantRegs:  map[uint8]uint32{1: 0},
		},
		{
			name: "chase-to-end",
			insts: []Inst{
				{Op: OpAlloc, A: 2, K: 16},
				{Op: OpAlloc, A: 3, K: 16},
				{Op: OpAlloc, A: 4, K: 16},
				{Op: OpStore, A: 3, B: 2, K: 0}, // a.next = b
				{Op: OpStore, A: 4, B: 3, K: 0}, // b.next = c
				{Op: OpChase, A: 6, B: 2, C: 255, K: 0},
			},
			// 2 stores + 3 chase steps (a->b, b->c, c->nil) x 2 each
			wantInsts: 2 + 3*2 + epilogue,
			wantRegs:  map[uint8]uint32{6: nodes[2]},
		},
		{
			name: "chase-capped",
			insts: []Inst{
				{Op: OpAlloc, A: 2, K: 16},
				{Op: OpAlloc, A: 3, K: 16},
				{Op: OpAlloc, A: 4, K: 16},
				{Op: OpStore, A: 3, B: 2, K: 0},
				{Op: OpStore, A: 4, B: 3, K: 0},
				{Op: OpChase, A: 6, B: 2, C: 0, K: 0}, // at most 1 step
			},
			wantInsts: 2 + 1*2 + epilogue,
			wantRegs:  map[uint8]uint32{6: nodes[1]},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := mustInterpret(t, Program{Insts: tt.insts})
			if d.Insts != tt.wantInsts {
				t.Errorf("dynamic instructions = %d, want %d", d.Insts, tt.wantInsts)
			}
			for r, want := range tt.wantRegs {
				if got := d.Regs[r]; got != want {
					t.Errorf("r%d = %#x, want %#x", r, got, want)
				}
			}
		})
	}
}

// The FLDS tag must reach the digest: two programs identical except for
// the load flavor agree on registers but not on the stream hash.
func TestInterpretLDSTagInDigest(t *testing.T) {
	mk := func(op Opcode) Program {
		return Program{Insts: []Inst{
			{Op: OpAlloc, A: 1, K: 16},
			{Op: op, A: 2, B: 1, K: 4},
		}}
	}
	plain := mustInterpret(t, mk(OpLoad))
	lds := mustInterpret(t, mk(OpLoadLDS))
	if plain.Regs != lds.Regs || plain.Insts != lds.Insts {
		t.Fatalf("LDS flavor changed semantics: %v vs %v", plain, lds)
	}
	if plain.MemHash == lds.MemHash {
		t.Errorf("LDS tag not digested: both hashes %#x", plain.MemHash)
	}
}

// The epilogue spill makes the final register file architectural heap
// state: a different final register must change the heap checksum.
func TestInterpretRegsReachHeapChecksum(t *testing.T) {
	mk := func(k uint32) Program {
		return Program{Insts: []Inst{{Op: OpImm, A: 7, K: k}}}
	}
	a := mustInterpret(t, mk(1))
	b := mustInterpret(t, mk(2))
	if a.HeapSum == b.HeapSum {
		t.Errorf("register spill not covered by heap checksum: both %#x", a.HeapSum)
	}
}

func TestInterpretTraps(t *testing.T) {
	budget := []Inst{
		{Op: OpLoop, K: 1 << 12},
		{Op: OpLoop, K: 1 << 12},
		{Op: OpAddImm, A: 0, B: 0, K: 1},
		{Op: OpEnd},
		{Op: OpEnd},
	}
	tests := []struct {
		name  string
		insts []Inst
	}{
		{"nil-chase", []Inst{{Op: OpChase, A: 1, B: 0, C: 3, K: 0}}},
		{"garbage-chase", []Inst{
			{Op: OpImm, A: 0, K: 0x42},
			{Op: OpChase, A: 1, B: 0, C: 3, K: 0},
		}},
		{"nil-load", []Inst{{Op: OpLoad, A: 1, B: 0, K: 0}}},
		{"nil-store", []Inst{{Op: OpStore, A: 1, B: 0, K: 0}}},
		{"wild-load", []Inst{
			{Op: OpImm, A: 0, K: 0xdeadbeef},
			{Op: OpLoad, A: 1, B: 0, K: 0},
		}},
		{"past-allocation-load", []Inst{
			{Op: OpAlloc, A: 0, K: 16},
			{Op: OpAddImm, A: 0, B: 0, K: 1 << 20},
			{Op: OpLoad, A: 1, B: 0, K: 0},
		}},
		{"budget", budget},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Interpret(Program{Insts: tt.insts})
			if !errors.Is(err, ErrTrap) {
				t.Errorf("Interpret = %v, want ErrTrap", err)
			}
		})
	}
}

func TestCheckRejects(t *testing.T) {
	deep := make([]Inst, 0, 2*(MaxNesting+1)+1)
	for i := 0; i <= MaxNesting; i++ {
		deep = append(deep, Inst{Op: OpLoop, K: 1})
	}
	deep = append(deep, Inst{Op: OpAddImm})
	for i := 0; i <= MaxNesting; i++ {
		deep = append(deep, Inst{Op: OpEnd})
	}
	long := make([]Inst, MaxProgLen+1)

	tests := []struct {
		name  string
		insts []Inst
	}{
		{"dest-register-out-of-range", []Inst{{Op: OpImm, A: NumRegs}}},
		{"src-register-out-of-range", []Inst{{Op: OpAdd, A: 0, B: 0, C: NumRegs}}},
		{"base-register-out-of-range", []Inst{{Op: OpLoad, A: 0, B: NumRegs}}},
		{"chase-register-out-of-range", []Inst{{Op: OpChase, A: 0, B: 200}}},
		{"zero-trip-loop", []Inst{{Op: OpLoop, K: 0}, {Op: OpAddImm}, {Op: OpEnd}}},
		{"unmatched-end", []Inst{{Op: OpEnd}}},
		{"unclosed-loop", []Inst{{Op: OpLoop, K: 1}, {Op: OpAddImm}}},
		{"empty-body", []Inst{{Op: OpLoop, K: 1}, {Op: OpEnd}}},
		{"unknown-opcode", []Inst{{Op: numOpcodes}}},
		{"too-deep", deep},
		{"too-long", long},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := (Program{Insts: tt.insts}).Check(); !errors.Is(err, ErrMalformed) {
				t.Errorf("Check = %v, want ErrMalformed", err)
			}
			// Interpret and Lower must surface the same static error.
			if _, err := Interpret(Program{Insts: tt.insts}); !errors.Is(err, ErrMalformed) {
				t.Errorf("Interpret = %v, want ErrMalformed", err)
			}
			if _, err := Lower(Program{Insts: tt.insts}); !errors.Is(err, ErrMalformed) {
				t.Errorf("Lower = %v, want ErrMalformed", err)
			}
		})
	}
}

func TestCheckMatchIndices(t *testing.T) {
	p := Program{Insts: []Inst{
		{Op: OpLoop, K: 2}, // 0 -> 5
		{Op: OpIfZ, A: 0},  // 1 -> 3
		{Op: OpAddImm},     // 2
		{Op: OpEnd},        // 3
		{Op: OpAddImm},     // 4
		{Op: OpEnd},        // 5
	}}
	match, err := p.Check()
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	want := []int{5, 3, 0, 0, 0, 0}
	if !reflect.DeepEqual(match, want) {
		t.Errorf("match = %v, want %v", match, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate not deterministic", seed)
		}
		da := mustInterpret(t, a)
		db := mustInterpret(t, b)
		if da != db {
			t.Fatalf("seed %d: Interpret not deterministic: %v vs %v", seed, da, db)
		}
	}
	if reflect.DeepEqual(Generate(1), Generate(2)) {
		t.Error("distinct seeds produced identical programs")
	}
}

// Every generated program must be well-formed and trap-free: the
// generator's core contract (the fuzz target extends this to arbitrary
// seeds).
func TestGenerateWellFormed(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		p := Generate(seed)
		if _, err := p.Check(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d, err := Interpret(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		} else if d.Insts == 0 {
			t.Fatalf("seed %d: empty execution", seed)
		}
	}
}
