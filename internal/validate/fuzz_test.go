package validate

import (
	"testing"

	"repro/internal/core"
)

// FuzzValidateProgram feeds arbitrary seeds through the whole
// differential stack: generate, statically check, interpret, lower,
// drain the oracle and run the timing core (baseline and the hardware
// jump-pointer scheme, cycle skipping on and off), asserting digest
// agreement everywhere.  Any divergence — a generator emitting a
// trapping program, a lowering mismatch, a core commit bug — is a
// crash for the fuzzer to minimize.
//
// CI runs this for a fixed wall-clock slice (see the fuzz job); the
// seed corpus doubles as a quick regression sweep under plain
// `go test`.
func FuzzValidateProgram(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Add(uint64(1) << 40)
	f.Add(^uint64(0))
	cfg := Config{Schemes: []core.Scheme{core.SchemeNone, core.SchemeHardware}}
	f.Fuzz(func(t *testing.T, seed uint64) {
		for _, fail := range CheckProgram(seed, cfg) {
			t.Errorf("%s", fail)
		}
	})
}
