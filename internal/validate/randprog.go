package validate

// The random program generator emits well-formed micro-IR kernels by
// construction: structured control flow, registers in range, and every
// pointer it dereferences rooted in an allocation it made — Interpret
// never traps on its output (the fuzz target holds it to that).  The
// shapes are chosen to exercise the paths the prefetch machinery
// trains on: pointer chains built with recurrent stores, chased with
// same-PC dependent loads, payload read-modify-write on the chased
// nodes, conditional work, and ALU noise between memory operations.

// Node layout used by every generated structure.
const (
	genLinkOffA  = 0 // primary next pointer ("backbone")
	genLinkOffB  = 4 // secondary pointer ("rib" / right child)
	genPayloadOf = 8 // payload word
)

// Register roles (all < NumRegs).
const (
	rAcc    = 0 // running accumulator
	rTmp    = 1 // scratch
	rHeadA  = 2 // first structure head
	rHeadB  = 3 // second structure head
	rCursor = 4 // build cursor
	rNode   = 5 // freshly allocated node
	rWalk   = 6 // chase destination
	rVal    = 7 // payload scratch
)

// prng is the same xorshift generator the Olden kernels use, kept
// local so generated programs never depend on another package's seed
// discipline.
type prng uint64

func newPRNG(seed uint64) *prng {
	r := prng(seed*2685821657736338717 + 1)
	return &r
}

func (r *prng) next() uint32 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = prng(x)
	return uint32(x >> 32)
}

func (r *prng) intn(n int) int { return int(r.next() % uint32(n)) }

// progGen accumulates instructions.
type progGen struct {
	r     *prng
	insts []Inst
}

func (g *progGen) emit(op Opcode, a, b, c uint8, k uint32) {
	g.insts = append(g.insts, Inst{Op: op, A: a, B: b, C: c, K: k})
}

// Generate produces the deterministic random program for a seed.  The
// same seed always yields the same program, so seeds double as a
// regression-corpus key (see testdata/seeds.json).
func Generate(seed uint64) Program {
	g := &progGen{r: newPRNG(seed)}

	// One or two linked structures, with their own node size (sizes that
	// are not powers of two leave block padding, the storage the
	// hardware jump-pointer scheme plants pointers in) and link offset
	// (offset B makes a right-spine "tree" shape).
	sizes := []uint32{12, 16, 20, 24, 40}
	nLists := 1 + g.r.intn(2)
	heads := []uint8{rHeadA, rHeadB}[:nLists]
	links := make([]uint32, nLists)
	for l, head := range heads {
		size := sizes[g.r.intn(len(sizes))]
		link := uint32(genLinkOffA)
		if g.r.intn(3) == 0 {
			link = genLinkOffB
		}
		links[l] = link
		g.buildList(head, size, link, 4+g.r.intn(20))
	}

	// Traversal passes over everything built, with noise between.
	passes := 1 + g.r.intn(3)
	g.emit(OpLoop, 0, 0, 0, uint32(passes))
	for l, head := range heads {
		g.traverse(head, links[l])
		if l == 0 {
			g.noise()
		}
	}
	g.emit(OpEnd, 0, 0, 0, 0)

	// Structured-container idioms from the internal/kernels family, each
	// present in roughly half the corpus: a hash-table probe (directory
	// load feeding a short chain chase) and a skip-list descent (sparse
	// express-level chase, then drop to the dense level).
	if g.r.intn(2) == 0 {
		g.hashProbe()
	}
	if g.r.intn(2) == 0 {
		g.skipDescent()
	}

	// Final mixing so every register's history reaches the digest.
	g.emit(OpXor, rAcc, rAcc, rVal, 0)
	g.emit(OpAdd, rTmp, rTmp, rWalk, 0)
	return Program{Insts: g.insts}
}

// buildList allocates a head node and appends n more through the link
// offset — the recurrent store pattern (node.next written one
// iteration after node was loaded/created) that trains the dependence
// predictor once the chain is chased back.
func (g *progGen) buildList(head uint8, size, link uint32, n int) {
	g.emit(OpAlloc, head, 0, 0, size)
	g.emit(OpImm, rVal, 0, 0, g.r.next())
	g.emit(OpStore, rVal, head, 0, genPayloadOf)
	g.emit(OpAddImm, rCursor, head, 0, 0)
	g.emit(OpLoop, 0, 0, 0, uint32(n))
	g.emit(OpAlloc, rNode, 0, 0, size)
	g.emit(OpImm, rVal, 0, 0, g.r.next())
	g.emit(OpStore, rVal, rNode, 0, genPayloadOf)
	g.emit(OpStore, rNode, rCursor, 0, link)
	if g.r.intn(2) == 0 && link != genLinkOffB {
		// Occasionally plant a "rib" pointer back at the head.
		g.emit(OpStore, head, rNode, 0, genLinkOffB)
	}
	g.emit(OpAddImm, rCursor, rNode, 0, 0)
	g.emit(OpEnd, 0, 0, 0, 0)
}

// traverse chases the structure end to end and read-modify-writes the
// landing node's payload, then takes a short partial chase with
// conditional extra work.
func (g *progGen) traverse(head uint8, link uint32) {
	g.emit(OpChase, rWalk, head, 255, link)
	g.emit(OpLoad, rVal, rWalk, 0, genPayloadOf)
	g.emit(OpAddImm, rVal, rVal, 0, 1)
	g.emit(OpStore, rVal, rWalk, 0, genPayloadOf)
	g.emit(OpAdd, rAcc, rAcc, rVal, 0)

	// Partial chase: a bounded prefix walk whose landing node depends
	// on the cap, not the structure end.
	g.emit(OpChase, rWalk, head, uint8(g.r.intn(6)), link)
	g.emit(OpLoadLDS, rTmp, rWalk, 0, genPayloadOf)

	// Conditional work guarded by a data-dependent zero test: the low
	// bit of the payload decides, so both branch directions occur
	// across the corpus.
	g.emit(OpImm, rVal, 0, 0, 1)
	g.emit(OpXor, rVal, rTmp, rVal, 0)
	g.emit(OpIfZ, rVal, 0, 0, 0)
	g.emit(OpXor, rAcc, rAcc, rTmp, 0)
	g.emit(OpEnd, 0, 0, 0, 0)
}

// hashProbe builds a bucket directory (an array of chain heads inside
// one allocation) and probes it: each probe loads a bucket head from
// the directory, takes a short capped chase down that chain, and folds
// the landing payload into the accumulator — the hash-table access
// shape (table load feeding a dependent pointer chase) that the
// dependence-based predictor must train through without corrupting
// state.
func (g *progGen) hashProbe() {
	nb := 2 + g.r.intn(4)
	g.emit(OpAlloc, rHeadA, 0, 0, uint32(4*nb))
	for b := 0; b < nb; b++ {
		size := []uint32{12, 20, 24}[g.r.intn(3)]
		g.buildList(rHeadB, size, genLinkOffA, 2+g.r.intn(5))
		g.emit(OpStore, rHeadB, rHeadA, 0, uint32(4*b))
	}
	probes := 2 + g.r.intn(5)
	for i := 0; i < probes; i++ {
		b := g.r.intn(nb)
		g.emit(OpLoadLDS, rWalk, rHeadA, 0, uint32(4*b))
		g.emit(OpChase, rWalk, rWalk, uint8(g.r.intn(4)), genLinkOffA)
		g.emit(OpLoad, rVal, rWalk, 0, genPayloadOf)
		g.emit(OpAdd, rAcc, rAcc, rVal, 0)
	}
}

// skipDescent builds a two-level list — the primary link is the dense
// level-0 chain, the secondary link is a stride-2 "express" chain —
// then descends skip-list style: a capped chase along the express
// level, a short drop to the dense level, and a payload
// read-modify-write at the landing node.
func (g *progGen) skipDescent() {
	size := uint32(12 + 4*g.r.intn(4))
	n := 6 + g.r.intn(16)
	g.emit(OpAlloc, rHeadA, 0, 0, size)
	g.emit(OpAddImm, rCursor, rHeadA, 0, 0)
	g.emit(OpAddImm, rWalk, rHeadA, 0, 0) // lags cursor by one node
	g.emit(OpLoop, 0, 0, 0, uint32(n))
	g.emit(OpAlloc, rNode, 0, 0, size)
	g.emit(OpImm, rVal, 0, 0, g.r.next())
	g.emit(OpStore, rVal, rNode, 0, genPayloadOf)
	g.emit(OpStore, rNode, rCursor, 0, genLinkOffA) // dense level
	g.emit(OpStore, rNode, rWalk, 0, genLinkOffB)   // express: two ahead
	g.emit(OpAddImm, rWalk, rCursor, 0, 0)
	g.emit(OpAddImm, rCursor, rNode, 0, 0)
	g.emit(OpEnd, 0, 0, 0, 0)
	g.emit(OpChase, rTmp, rHeadA, uint8(2+g.r.intn(4)), genLinkOffB)
	g.emit(OpChase, rWalk, rTmp, uint8(g.r.intn(3)), genLinkOffA)
	g.emit(OpLoadLDS, rVal, rWalk, 0, genPayloadOf)
	g.emit(OpAddImm, rVal, rVal, 0, 1)
	g.emit(OpStore, rVal, rWalk, 0, genPayloadOf)
	g.emit(OpXor, rAcc, rAcc, rVal, 0)
}

// noise emits a short run of ALU work (including the non-pipelined
// multiplier) between memory phases.
func (g *progGen) noise() {
	n := 1 + g.r.intn(4)
	for i := 0; i < n; i++ {
		switch g.r.intn(5) {
		case 0:
			g.emit(OpImm, rTmp, 0, 0, g.r.next())
		case 1:
			g.emit(OpAdd, rAcc, rAcc, rTmp, 0)
		case 2:
			g.emit(OpSub, rTmp, rAcc, rVal, 0)
		case 3:
			g.emit(OpMul, rVal, rVal, rTmp, 0)
		case 4:
			g.emit(OpXor, rAcc, rAcc, rVal, 0)
		}
	}
}
