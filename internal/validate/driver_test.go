package validate

import (
	"flag"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/harness"
	"repro/internal/olden"
)

// -matrix-size selects the Olden differential matrix input size, so CI
// can run the matrix at "small" while the default `go test` stays fast.
var matrixSize = flag.String("matrix-size", "test", "differential matrix input size (test|small)")

func matrixOldenSize(t *testing.T) olden.Size {
	t.Helper()
	switch *matrixSize {
	case "test":
		return olden.SizeTest
	case "small":
		return olden.SizeSmall
	}
	t.Fatalf("unknown -matrix-size %q", *matrixSize)
	return olden.SizeTest
}

// TestDifferentialOldenMatrix is the acceptance gate: every Olden
// kernel, under every prefetch scheme, with cycle skipping both on and
// off, must commit a stream byte-identical to the in-order oracle's.
func TestDifferentialOldenMatrix(t *testing.T) {
	size := matrixOldenSize(t)
	for _, bench := range harness.BenchNames() {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			t.Parallel()
			for _, f := range CheckKernel(bench, size, Config{}) {
				t.Errorf("%s", f)
			}
		})
	}
}

// TestDifferentialProgramMatrix runs 100 seeded random programs through
// interpreter, oracle and the full scheme x skip matrix.
func TestDifferentialProgramMatrix(t *testing.T) {
	const programs = 100
	const shards = 10
	for s := 0; s < shards; s++ {
		s := s
		t.Run(fmt.Sprintf("shard%d", s), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1 + s); seed <= programs; seed += shards {
				for _, f := range CheckProgram(seed, Config{}) {
					t.Errorf("%s", f)
				}
			}
		})
	}
}

// mutationConfig injects one deliberate commit-stage bug a little way
// into the run (past the lowering prologue, inside the program body).
func mutationConfig(f cpu.Fault) Config {
	return Config{Fault: f, FaultAfter: 100}
}

// TestMutationCaught proves the driver has teeth: a core that silently
// drops one commit, or corrupts one committed load value, must produce
// at least one divergence on both workload kinds.
func TestMutationCaught(t *testing.T) {
	faults := []struct {
		name  string
		fault cpu.Fault
	}{
		{"drop-commit", cpu.FaultDropCommit},
		{"corrupt-load", cpu.FaultCorruptLoadValue},
	}
	for _, tf := range faults {
		tf := tf
		t.Run(tf.name+"/program", func(t *testing.T) {
			t.Parallel()
			if fails := CheckProgram(1, mutationConfig(tf.fault)); len(fails) == 0 {
				t.Errorf("injected %s escaped the program matrix", tf.name)
			}
		})
		t.Run(tf.name+"/kernel", func(t *testing.T) {
			t.Parallel()
			if fails := CheckKernel("health", olden.SizeTest, mutationConfig(tf.fault)); len(fails) == 0 {
				t.Errorf("injected %s escaped the kernel matrix", tf.name)
			}
		})
	}
	t.Run("control", func(t *testing.T) {
		t.Parallel()
		if fails := CheckProgram(1, mutationConfig(cpu.FaultNone)); len(fails) != 0 {
			t.Errorf("control run failed: %v", fails)
		}
	})
}

func TestCheckKernelUnknownBench(t *testing.T) {
	fails := CheckKernel("nonesuch", olden.SizeTest, Config{})
	if len(fails) != 1 || fails[0].Check != "run" {
		t.Fatalf("unknown bench: got %v, want one run failure", fails)
	}
}

// TestCycleSanityBound exercises the wedge-catcher arithmetic directly.
func TestCycleSanityBound(t *testing.T) {
	cfg := Config{SlackRatio: 2, SlackAbs: 100}.norm()
	if fails := cycleSanity("x", 2*1000+100, 1000, cfg); len(fails) != 0 {
		t.Errorf("at the bound: %v", fails)
	}
	if fails := cycleSanity("x", 2*1000+101, 1000, cfg); len(fails) != 1 {
		t.Errorf("past the bound: %v", fails)
	}
	if fails := cycleSanity("x", 5000, 0, cfg); len(fails) != 0 {
		t.Errorf("missing baseline must not fail: %v", fails)
	}
}

func TestRunMatrixReport(t *testing.T) {
	var b strings.Builder
	fails := RunMatrix(&b, MatrixOptions{
		Benches:  []string{"health", "mst"},
		Programs: 3,
	})
	out := b.String()
	if len(fails) != 0 {
		t.Fatalf("matrix failures:\n%s", out)
	}
	for _, want := range []string{
		"kernel  health",
		"kernel  mst",
		"program seed=1",
		"program seed=3",
		"validate: 5 subjects, 0 failure(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// Software schemes rewrite the emitted stream (prefetch idioms), so the
// matrix is only meaningful if it really covers them: the default
// config must include every scheme.
func TestDefaultConfigCoversAllSchemes(t *testing.T) {
	cfg := Config{}.norm()
	if len(cfg.Schemes) != len(core.Schemes()) {
		t.Fatalf("default schemes = %v, want all of %v", cfg.Schemes, core.Schemes())
	}
	if cfg.Schemes[0] != core.SchemeNone {
		t.Fatalf("baseline scheme = %v, want none first", cfg.Schemes[0])
	}
}
