package cpu

import (
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
)

// run executes a kernel on the default machine and returns its stats.
func run(t *testing.T, params cache.Params, kernel func(*ir.Asm)) Stats {
	t.Helper()
	alloc := heap.New(mem.NewImage())
	hier := cache.New(params)
	pred := bpred.New(bpred.Defaults())
	gen := ir.NewGen(alloc, kernel)
	c := New(Defaults(), hier, pred, nil)
	return c.Run(gen)
}

func perfect() cache.Params {
	p := cache.Defaults()
	p.PerfectData = true
	return p
}

func TestIndependentOpsReachIssueWidth(t *testing.T) {
	const n = 4000
	s := run(t, perfect(), func(a *ir.Asm) {
		for i := 0; i < n; i++ {
			a.Alu(100, uint32(i), ir.Val{}, ir.Val{})
		}
	})
	// 4 independent single-cycle ALU ops per cycle: IPC must approach 4.
	if ipc := s.IPC(); ipc < 3.0 {
		t.Fatalf("independent ALU IPC = %.2f, want near 4", ipc)
	}
}

func TestSerialChainLimitsIPC(t *testing.T) {
	const n = 4000
	s := run(t, perfect(), func(a *ir.Asm) {
		v := ir.Imm(1)
		for i := 0; i < n; i++ {
			v = a.Alu(100, v.U32()+1, v, ir.Val{})
		}
	})
	// A serial dependence chain of 1-cycle ops: IPC close to 1.
	if ipc := s.IPC(); ipc > 1.2 || ipc < 0.8 {
		t.Fatalf("serial chain IPC = %.2f, want ~1", ipc)
	}
}

func TestDivLatencySerializes(t *testing.T) {
	const n = 500
	s := run(t, perfect(), func(a *ir.Asm) {
		v := ir.Imm(1000000)
		for i := 0; i < n; i++ {
			v = a.Op(100, ir.IntDiv, v.U32()/2+1, v, ir.Val{})
		}
	})
	// Dependent 20-cycle divides: >= 20 cycles each.
	if perDiv := float64(s.Cycles) / n; perDiv < 19 {
		t.Fatalf("%.1f cycles per dependent divide, want >= 20", perDiv)
	}
}

func TestPointerChaseSeesMemoryLatency(t *testing.T) {
	const n = 500
	s := run(t, cache.Defaults(), func(a *ir.Asm) {
		// A scrambled linked list long enough to defeat all caches.
		nodes := make([]ir.Val, 16384)
		for i := range nodes {
			nodes[i] = a.Malloc(12)
		}
		// Stride the links across pages.
		for i := range nodes {
			a.Store(100, nodes[i], 0, nodes[(i*1027+31)%len(nodes)])
		}
		v := nodes[0]
		for i := 0; i < n; i++ {
			v = a.Load(101, v, 0, ir.FLDS)
		}
	})
	// The chase itself is n dependent loads; most miss to memory after
	// the build, so the whole run is dominated by their serial latency.
	if s.Cycles < n*40 {
		t.Fatalf("pointer chase took %d cycles (%.1f per hop), too fast for serial misses",
			s.Cycles, float64(s.Cycles)/n)
	}
	if s.LDSLoadMiss < n/2 {
		t.Fatalf("only %d LDS misses recorded for %d scrambled hops", s.LDSLoadMiss, n)
	}
}

func TestLoadWaitsForPriorStoreAddress(t *testing.T) {
	// A load may not issue past an older un-issued store.  Build: a
	// store whose value depends on a long divide chain, followed by an
	// independent load.  The load's completion must come after the
	// store issues.
	s := run(t, perfect(), func(a *ir.Asm) {
		p := a.Malloc(12)
		q := a.Malloc(12)
		v := ir.Imm(1 << 30)
		for i := 0; i < 4; i++ {
			v = a.Op(100, ir.IntDiv, v.U32()/3+1, v, ir.Val{})
		}
		a.Store(101, p, 0, v)      // blocked behind the divides
		a.Load(102, q, 0, ir.FLDS) // independent, but younger than the store
	})
	// 4 dependent 20-cycle divides ~ 80+ cycles; if the load bypassed
	// the store the run would finish in ~85; the LSQ rule makes no
	// difference to total here, so instead check with a tighter probe:
	if s.Cycles < 80 {
		t.Fatalf("run finished in %d cycles, divide chain not respected", s.Cycles)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	const n = 300
	sForward := run(t, cache.Defaults(), func(a *ir.Asm) {
		p := a.Malloc(12)
		for i := 0; i < n; i++ {
			a.Store(100, p, 0, ir.Imm(uint32(i)))
			a.Load(101, p, 0, 0) // same word: forwarded
		}
	})
	// Forwarded loads cost ~1 cycle; the loop must run at a few cycles
	// per iteration, far below any miss latency.
	if per := float64(sForward.Cycles) / n; per > 6 {
		t.Fatalf("%.1f cycles per store-load pair, forwarding broken", per)
	}
}

func TestMispredictPenaltyVisible(t *testing.T) {
	const n = 2000
	// xorshift bits: not learnable by a 10-bit-history gshare.
	state := uint64(0x9E3779B97F4A7C15)
	seedy := func(int) bool {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state&0x40000 != 0
	}
	sRandom := run(t, perfect(), func(a *ir.Asm) {
		for i := 0; i < n; i++ {
			a.Branch(100, seedy(i), 102, ir.Val{}, ir.Val{})
			a.Alu(101, 0, ir.Val{}, ir.Val{})
		}
	})
	sSteady := run(t, perfect(), func(a *ir.Asm) {
		for i := 0; i < n; i++ {
			a.Branch(100, false, 102, ir.Val{}, ir.Val{})
			a.Alu(101, 0, ir.Val{}, ir.Val{})
		}
	})
	if sRandom.Cycles < sSteady.Cycles+n {
		t.Fatalf("random branches (%d cycles) not measurably slower than steady (%d)",
			sRandom.Cycles, sSteady.Cycles)
	}
}

func TestPrefetchNonBinding(t *testing.T) {
	// Prefetches complete on issue: a stream of dependent prefetch-less
	// work plus prefetches to cold lines must not stall commit.
	const n = 500
	s := run(t, cache.Defaults(), func(a *ir.Asm) {
		p := a.Malloc(4096)
		for i := 0; i < n; i++ {
			a.Prefetch(100, p, uint32(i*32%4096), 0)
			a.Alu(101, uint32(i), ir.Val{}, ir.Val{})
		}
	})
	if per := float64(s.Cycles) / n; per > 4 {
		t.Fatalf("%.1f cycles per prefetch+alu pair; prefetches are binding", per)
	}
}

func TestWindowLimitsOverlap(t *testing.T) {
	// More independent misses than the 64-entry window can hold: the
	// miss parallelism metric must be bounded by the window, and the
	// MSHR count (8) in practice.
	s := run(t, cache.Defaults(), func(a *ir.Asm) {
		p := a.Malloc(1 << 20)
		for i := 0; i < 2000; i++ {
			a.Load(100, p, uint32(i*4096%(1<<20)), 0)
		}
	})
	// The metric counts queued + outstanding misses, so it is bounded
	// by the instruction window, not the MSHR count.
	if ov := s.AvgMissOverlap(); ov < 8 || ov > 64 {
		t.Fatalf("avg miss overlap %.1f outside [8, 64] (window-bounded)", ov)
	}
}

func TestCommitCountMatchesKernel(t *testing.T) {
	s := run(t, perfect(), func(a *ir.Asm) {
		for i := 0; i < 1234; i++ {
			a.Nop(100)
		}
	})
	if s.Insts != 1234 {
		t.Fatalf("committed %d, want 1234", s.Insts)
	}
}

func TestMaxCyclesTruncates(t *testing.T) {
	alloc := heap.New(mem.NewImage())
	hier := cache.New(perfect())
	pred := bpred.New(bpred.Defaults())
	gen := ir.NewGen(alloc, func(a *ir.Asm) {
		for {
			a.Nop(100)
		}
	})
	cfg := Defaults()
	cfg.MaxCycles = 1000
	c := New(cfg, hier, pred, nil)
	s := c.Run(gen)
	if !s.Truncated || s.Cycles > 1000 {
		t.Fatalf("MaxCycles not honored: %+v", s)
	}
}

// recordingEngine checks the engine hook protocol.
type recordingEngine struct {
	issues, completes, commits, prefetches int
	lastCommitSeq                          uint64
	ordered                                bool
}

func (r *recordingEngine) OnLoadIssue(now uint64, d *ir.DynInst)    { r.issues++ }
func (r *recordingEngine) OnLoadComplete(now uint64, d *ir.DynInst) { r.completes++ }
func (r *recordingEngine) OnCommit(now uint64, d *ir.DynInst) {
	if d.Seq <= r.lastCommitSeq {
		r.ordered = false
	}
	r.lastCommitSeq = d.Seq
	r.commits++
}
func (r *recordingEngine) OnSWPrefetch(now uint64, d *ir.DynInst, done uint64) { r.prefetches++ }
func (r *recordingEngine) Tick(now uint64, freePorts int) int                  { return 0 }
func (r *recordingEngine) NextEventAt(now uint64) uint64                       { return ^uint64(0) }

func TestEngineHookProtocol(t *testing.T) {
	alloc := heap.New(mem.NewImage())
	hier := cache.New(cache.Defaults())
	pred := bpred.New(bpred.Defaults())
	eng := &recordingEngine{ordered: true}
	gen := ir.NewGen(alloc, func(a *ir.Asm) {
		p := a.Malloc(64)
		for i := 0; i < 10; i++ {
			a.Load(100, p, uint32(i*4), ir.FLDS)
			a.Prefetch(101, p, uint32(i*4), 0)
		}
	})
	c := New(Defaults(), hier, pred, eng)
	s := c.Run(gen)
	// Malloc's metadata load also triggers the hooks, so expect >= 10.
	if eng.issues < 10 || eng.issues != eng.completes || eng.prefetches != 10 {
		t.Fatalf("hook counts: %+v", eng)
	}
	if uint64(eng.commits) != s.Insts {
		t.Fatalf("commit hook fired %d times for %d instructions", eng.commits, s.Insts)
	}
	if !eng.ordered {
		t.Fatal("OnCommit not called in program order")
	}
}

type captureTracer struct {
	events []struct{ disp, issue, done uint64 }
}

func (c *captureTracer) Trace(d *ir.DynInst, dispatched, issued, done uint64) {
	c.events = append(c.events, struct{ disp, issue, done uint64 }{dispatched, issued, done})
}

func TestTracerEventOrdering(t *testing.T) {
	alloc := heap.New(mem.NewImage())
	hier := cache.New(cache.Defaults())
	pred := bpred.New(bpred.Defaults())
	tr := &captureTracer{}
	cfg := Defaults()
	cfg.Tracer = tr
	gen := ir.NewGen(alloc, func(a *ir.Asm) {
		p := a.Malloc(64)
		for i := 0; i < 50; i++ {
			v := a.Load(100, p, uint32(4*(i%16)), ir.FLDS)
			a.Alu(101, v.U32()+1, v, ir.Val{})
		}
	})
	c := New(cfg, hier, pred, nil)
	s := c.Run(gen)
	if uint64(len(tr.events)) != s.Insts {
		t.Fatalf("tracer saw %d events for %d instructions", len(tr.events), s.Insts)
	}
	for i, e := range tr.events {
		if e.issue < e.disp || e.done < e.issue {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
}
