package cpu

import "repro/internal/ir"

// SamplingConfig enables SMARTS-style sampled simulation (Wunderlich et
// al., ISCA 2003, adapted to this execution-driven core): the stream is
// simulated in repeating units of Period committed instructions — a
// detailed-but-unmeasured Warmup, a detailed measured interval of
// Detail instructions (plus the pipeline drain that closes it), and a
// functional fast-forward over the remainder.  Fast-forwarded
// instructions execute architecturally (they came from the same kernel
// execution), warm the caches, TLBs and branch predictor, train the
// prefetch engine in commit order, and reach the Tracer — so
// architectural digests are bit-identical to a full run — but consume
// no simulated cycles; their cycle cost is extrapolated from the
// measured intervals' CPI.
//
// Sampled runs are approximate by construction: cycle counts carry
// error bars (see SampleStats) and the per-category cycle attribution
// covers only the detailed spans.  Full-fidelity runs (Sampling == nil)
// are untouched by this mode.
type SamplingConfig struct {
	// Period is the unit length in committed instructions.
	Period uint64
	// Detail is the measured detailed span per unit.
	Detail uint64
	// Warmup is the detailed-but-unmeasured span run before each
	// measured interval to re-warm microarchitectural state after a
	// fast-forward.
	Warmup uint64
}

// DefaultSampling returns a configuration that balances error against
// speed for the Olden-scale streams in this repository: 50k-instruction
// units with a 2k warmup and 5k measured interval (a 14% detailed
// fraction).
func DefaultSampling() SamplingConfig {
	return SamplingConfig{Period: 50_000, Detail: 5_000, Warmup: 2_000}
}

// normalized fills zero fields with defaults and clamps degenerate
// geometry (a unit must at least hold its detailed spans).
func (sc SamplingConfig) normalized() SamplingConfig {
	def := DefaultSampling()
	if sc.Period == 0 {
		sc.Period = def.Period
	}
	if sc.Detail == 0 {
		sc.Detail = def.Detail
	}
	if sc.Detail+sc.Warmup > sc.Period {
		sc.Period = sc.Detail + sc.Warmup
	}
	return sc
}

// SampleStats reports what a sampled run measured and how far the
// extrapolation might be off.
type SampleStats struct {
	// Intervals is the number of measured intervals.
	Intervals int
	// MeasuredInsts/MeasuredCycles cover the measured intervals only
	// (warmup and fast-forwarded spans excluded).
	MeasuredInsts  uint64
	MeasuredCycles uint64
	// FFInsts is the number of functionally fast-forwarded instructions
	// whose cycle cost was extrapolated rather than simulated.
	FFInsts uint64
	// CPIMean and CPIStdErr are the mean and standard error of the
	// per-interval CPI samples.
	CPIMean   float64
	CPIStdErr float64
	// CyclesLo/CyclesHi bound the extrapolated total cycle count at 95%
	// confidence (the extrapolated share varied by ±1.96 standard
	// errors; the detailed share is exact).
	CyclesLo uint64
	CyclesHi uint64
}

// runSampled is Core.Run's sampled-simulation loop.
func (c *Core) runSampled(gen *ir.Gen) Stats {
	sc := c.cfg.Sampling.normalized()
	sam := &SampleStats{}
	var cpis []float64
	// ffAdvanced totals the provisional clock advances made during
	// fast-forwards; the final cycle count replaces them with a
	// retrospective extrapolation over the full measurement set (the
	// provisional advances use only the intervals measured so far and
	// would underweight later program phases).
	var ffAdvanced uint64

	for {
		unitStart := c.s.Insts

		// Detailed warmup: re-prime pipeline-coupled state (window,
		// MSHRs, engine queues) that functional warming cannot reach.
		if c.runDetailed(gen, unitStart+sc.Warmup, true) {
			break
		}

		// Measured interval, closed by a pipeline drain so the cycle
		// span has clean boundaries.
		mStartCycles, mStartInsts := c.now, c.s.Insts
		exhausted := c.runDetailed(gen, mStartInsts+sc.Detail, true)
		if !exhausted && c.count > 0 {
			exhausted = c.runDetailed(gen, ^uint64(0), false)
		}
		if mi := c.s.Insts - mStartInsts; mi > 0 {
			mc := c.now - mStartCycles
			sam.Intervals++
			sam.MeasuredInsts += mi
			sam.MeasuredCycles += mc
			cpis = append(cpis, float64(mc)/float64(mi))
		}
		if exhausted || c.s.Truncated {
			break
		}

		// Functional fast-forward over the unit's remainder.
		ffn := int64(sc.Period) - int64(c.s.Insts-unitStart)
		if ffn > 0 && sam.MeasuredInsts > 0 {
			adv, done := c.fastForward(gen, uint64(ffn), sam)
			ffAdvanced += adv
			if done {
				break
			}
		}
	}

	// Extrapolation error bars: the fast-forwarded share swung by
	// ±1.96 standard errors of the per-interval CPI; the detailed share
	// was simulated exactly.
	if n := len(cpis); n > 0 {
		var sum float64
		for _, v := range cpis {
			sum += v
		}
		sam.CPIMean = sum / float64(n)
		if n > 1 {
			var ss float64
			for _, v := range cpis {
				d := v - sam.CPIMean
				ss += d * d
			}
			sam.CPIStdErr = sqrt(ss/float64(n-1)) / sqrt(float64(n))
		}
	}
	// Final estimate: detailed cycles exactly as simulated, plus the
	// fast-forwarded share extrapolated at the whole run's measured CPI
	// (integer arithmetic for determinism).
	detailed := c.now - ffAdvanced
	var ffCycles uint64
	if sam.MeasuredInsts > 0 {
		ffCycles = sam.FFInsts * sam.MeasuredCycles / sam.MeasuredInsts
	}
	delta := 1.96 * sam.CPIStdErr * float64(sam.FFInsts)
	c.s.Cycles = detailed + ffCycles
	if d := uint64(delta); d < c.s.Cycles {
		sam.CyclesLo = c.s.Cycles - d
	}
	sam.CyclesHi = c.s.Cycles + uint64(delta)
	c.s.Sample = sam
	return c.s
}

// runDetailed advances the detailed timing simulation until the
// committed-instruction count reaches target, the stream ends, or
// MaxCycles trips.  With fetch false the front end is frozen (the drain
// that closes a measured interval: the loop then also returns once the
// window empties).  The cycle loop is the same staged pipeline as
// Run's, sharing every stage helper; it reports true when the stream is
// exhausted (including truncation).
func (c *Core) runDetailed(gen *ir.Gen, target uint64, fetch bool) bool {
	for {
		if c.s.Insts >= target {
			return false
		}
		if !fetch && c.count == 0 {
			return false
		}

		committed := c.commitStage()
		delivered := c.deliverLoads()
		seqBefore := c.nextSeq
		memUsed, issued, nextIssue := c.issue()
		done := false
		if fetch {
			done = c.fetchDispatch(gen)
			if done {
				c.genDone = true
			}
		}
		if c.eng != nil {
			free := c.cfg.MemPorts - memUsed
			if free < 0 {
				free = 0
			}
			c.eng.Tick(c.now, free)
		}

		if done && c.count == 0 {
			return true
		}
		c.s.Attribution.Account(c.classifyCycle(committed))
		c.now++
		if c.cfg.MaxCycles > 0 && c.now >= c.cfg.MaxCycles {
			c.s.Truncated = true
			gen.Stop()
			return true
		}

		// Event-driven cycle skipping, exactly as in Run; with fetch
		// frozen the front end contributes no wake-up candidate.
		if committed == 0 && issued == 0 && delivered == 0 &&
			c.nextSeq == seqBefore && !c.cfg.DisableCycleSkip {
			next := c.nextEventAt(nextIssue, fetch)
			if c.cfg.MaxCycles > 0 && next > c.cfg.MaxCycles {
				next = c.cfg.MaxCycles
			}
			if next > c.now {
				span := next - c.now
				c.s.Attribution.AccountN(c.classifyCycle(0), span)
				if fetch {
					if c.blockSeq != 0 {
						c.s.FetchStallCycles += span
					} else if c.fetchReadyAt > c.now {
						stall := c.fetchReadyAt - c.now
						if stall > span {
							stall = span
						}
						c.s.FetchStallCycles += stall
					}
				}
				if c.eng != nil {
					c.eng.Tick(next-1, 0)
				}
				c.now = next
				if c.cfg.MaxCycles > 0 && c.now >= c.cfg.MaxCycles {
					c.s.Truncated = true
					gen.Stop()
					return true
				}
			}
		}
	}
}

// fastForward executes up to n instructions functionally: architectural
// effects already happened in the generator, so the core's job here is
// commit-order bookkeeping (counters, Tracer, engine training),
// microarchitectural warming (caches, TLBs, branch predictor), and the
// provisional clock advance extrapolated from the CPI measured so far,
// so engine/bus reservations age realistically.  It returns the clock
// advance applied and whether the stream ended.
func (c *Core) fastForward(gen *ir.Gen, n uint64, sam *SampleStats) (uint64, bool) {
	var ffed, lastSeq uint64
	warmLine := uint32(0)
	done := false
	for ffed < n {
		d := c.fetched
		if d != nil {
			c.fetched = nil
		} else {
			if d = gen.Next(); d == nil {
				done = true
				break
			}
		}
		lastSeq = d.Seq

		// Instruction-side warming, one probe per fetch line (the same
		// 32B line granularity fetchDispatch uses).
		if line := d.PC>>5<<5 | 1; line != warmLine {
			c.hier.WarmInst(d.PC)
			warmLine = line
		}
		switch d.Class {
		case ir.Load:
			c.hier.WarmData(d.Addr, false)
		case ir.Store:
			c.hier.WarmData(d.Addr, true)
		case ir.Prefetch:
			// Software prefetches shape the cache state their scheme
			// depends on; skipping them would hand the next measured
			// interval a cache that never saw the scheme's benefit and
			// bias its CPI against prefetching runs.
			c.hier.WarmData(d.Addr, false)
		case ir.Branch:
			c.pred.PredictCond(d.PC, d.Taken, d.Target)
		case ir.Jump:
			if d.Flags&ir.FReturn == 0 {
				c.pred.PredictJump(d.PC, d.Target)
			}
		}
		if c.eng != nil {
			c.eng.OnCommit(c.now, d)
		}
		if c.cfg.Tracer != nil {
			c.cfg.Tracer.Trace(d, c.now, c.now, c.now)
		}
		c.s.CommitByCl[d.Class]++
		c.s.Insts++
		ffed++
		if d.Class == ir.Jump || (d.Class == ir.Branch && d.Taken) {
			warmLine = 0
		}
	}
	sam.FFInsts += ffed

	if ffed > 0 {
		// Resynchronize the dispatch bookkeeping past the skipped
		// sequence range.  The window is empty (the drain guaranteed
		// it), so the scheduler masks and queues are all idle; the ring
		// may hold stale completion times for skipped sequences, which
		// srcReadyAt never consults (they are below headSeq) and
		// dispatch overwrites.
		c.headSeq = lastSeq + 1
		c.nextSeq = lastSeq + 1
		c.firstUnissued = lastSeq + 1
	}

	// Advance the clock by the provisional extrapolated cost of the
	// skipped span, then unfreeze fetch at the new time.
	adv := ffed * sam.MeasuredCycles / sam.MeasuredInsts
	c.now += adv
	c.curLine = 0
	c.blockSeq = 0
	if c.fetchReadyAt < c.now {
		c.fetchReadyAt = c.now
	}
	return adv, done
}

// sqrt is a dependency-free Newton iteration (package cpu otherwise
// avoids math imports on the hot path; this runs once per run).
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}
