// Package cpu implements the out-of-order timing core of the paper's
// Table 2 machine: a 5-stage, 4-way superscalar pipeline with 64
// instructions in flight, a 32-entry load/store queue with a 1-cycle
// load bypass (loads wait for all previous store addresses before
// issuing), the listed functional units, and software prefetches that
// are non-binding, complete on issue and may initiate TLB miss
// handling.
//
// The core consumes the dynamic instruction stream produced by
// internal/ir generators.  Because the stream is the committed path,
// wrong-path instructions are not executed; a mispredicted branch
// instead freezes fetch until it resolves plus a front-end refill
// penalty (an approximation documented in DESIGN.md).
package cpu

import (
	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/stats"
)

// PrefetchEngine is the hook through which hardware prefetching
// mechanisms (DBP, cooperative chaining, hardware JPP) observe the core
// and inject prefetch requests.  All methods are called with the
// current cycle.
type PrefetchEngine interface {
	// OnLoadIssue fires when a demand load issues to the data cache.
	OnLoadIssue(now uint64, d *ir.DynInst)
	// OnLoadComplete fires when a demand load's value arrives.
	OnLoadComplete(now uint64, d *ir.DynInst)
	// OnCommit fires for every instruction in program order.
	OnCommit(now uint64, d *ir.DynInst)
	// OnSWPrefetch fires when a software prefetch issues; done is the
	// cycle its block arrives.
	OnSWPrefetch(now uint64, d *ir.DynInst, done uint64)
	// Tick runs once per cycle with the number of idle data-cache
	// ports; it returns how many the engine consumed.
	Tick(now uint64, freePorts int) int
}

// FU describes one functional unit class: how many units exist and the
// operation latency.  Pipelined units accept one op per unit per cycle;
// non-pipelined units (the dividers and multiplier, as in SimpleScalar)
// are busy for the full latency.
type FU struct {
	Count     int
	Latency   int
	Pipelined bool
}

// Config parameterizes the core.  Defaults() is the Table 2 machine.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	WindowSize  int
	LSQSize     int
	MemPorts    int
	// MispredictPenalty is the front-end refill time after a resolved
	// misprediction.
	MispredictPenalty int
	// BTBMissPenalty is the fetch bubble for a direct jump whose target
	// missed in the BTB.
	BTBMissPenalty int

	FUs [ir.NumClasses]FU

	// MaxCycles aborts runaway simulations; 0 means no limit.
	MaxCycles uint64

	// Tracer, when non-nil, receives per-instruction pipeline events
	// (used by cmd/jpptrace and tests; nil costs nothing).
	Tracer Tracer
}

// Tracer observes pipeline events for every instruction.
type Tracer interface {
	// Trace reports one instruction's life: dispatch (entered the
	// window), issue, and completion cycles.
	Trace(d *ir.DynInst, dispatched, issued, done uint64)
}

// Defaults returns the paper's Table 2 core configuration.
func Defaults() Config {
	var fus [ir.NumClasses]FU
	fus[ir.Nop] = FU{Count: 4, Latency: 1, Pipelined: true}
	fus[ir.IntAlu] = FU{Count: 4, Latency: 1, Pipelined: true}
	fus[ir.IntMult] = FU{Count: 1, Latency: 3, Pipelined: false}
	fus[ir.IntDiv] = FU{Count: 1, Latency: 20, Pipelined: false}
	fus[ir.FpAdd] = FU{Count: 2, Latency: 2, Pipelined: true}
	fus[ir.FpMult] = FU{Count: 1, Latency: 4, Pipelined: false}
	fus[ir.FpDiv] = FU{Count: 1, Latency: 24, Pipelined: false}
	// Branches resolve on the integer ALUs.
	fus[ir.Branch] = FU{Count: 4, Latency: 1, Pipelined: true}
	fus[ir.Jump] = FU{Count: 4, Latency: 1, Pipelined: true}
	// Memory ops use the two cache ports (modelled separately); the FU
	// entry provides the 1-cycle address generation slot.
	fus[ir.Load] = FU{Count: 2, Latency: 1, Pipelined: true}
	fus[ir.Store] = FU{Count: 2, Latency: 1, Pipelined: true}
	fus[ir.Prefetch] = FU{Count: 2, Latency: 1, Pipelined: true}
	return Config{
		FetchWidth:        4,
		IssueWidth:        4,
		CommitWidth:       4,
		WindowSize:        64,
		LSQSize:           32,
		MemPorts:          2,
		MispredictPenalty: 3,
		BTBMissPenalty:    1,
		FUs:               fus,
	}
}

// Stats reports a run's outcome.
type Stats struct {
	Cycles       uint64
	Insts        uint64
	CommitByCl   [ir.NumClasses]uint64
	LDSLoadMiss  uint64
	OtherMiss    uint64
	DemandMisses uint64
	LoadsFromPB  uint64
	DTLBStalls   uint64

	// MissOverlapSum accumulates, for every demand load miss, the
	// number of other demand misses in flight when it issued; divided
	// by DemandMisses it gives the paper's Table 1 parallelism metric.
	MissOverlapSum uint64

	FetchStallCycles uint64
	Truncated        bool

	// Attribution charges every simulated cycle to exactly one
	// category, judged at the commit stage; its Total() equals Cycles.
	Attribution stats.CycleBreakdown
}

// AvgMissOverlap returns the average in-flight demand misses observed
// by each demand miss (including itself).
func (s Stats) AvgMissOverlap() float64 {
	if s.DemandMisses == 0 {
		return 0
	}
	return float64(s.MissOverlapSum)/float64(s.DemandMisses) + 1
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

type robEntry struct {
	d            ir.DynInst
	doneAt       uint64
	dispatchedAt uint64
	issuedAt     uint64
	issued       bool
	isMem        bool
	missL1       bool
}

// Core is one simulation instance.
type Core struct {
	cfg  Config
	hier *cache.Hierarchy
	pred *bpred.Predictor
	eng  PrefetchEngine

	now uint64

	rob     []robEntry
	head    int
	count   int
	headSeq uint64 // sequence number of the ROB head
	nextSeq uint64 // next sequence number to dispatch

	// status ring: done time per in-flight sequence number.
	ring []uint64 // doneAt; ^0 means not complete

	lsqUsed int

	// Fetch state.
	fetchReadyAt uint64
	// blockSeq is the sequence of a mispredicted branch fetch waits on.
	blockSeq uint64
	fetched  *ir.DynInst // staged instruction not yet dispatched
	curLine  uint32      // current fetch line (+1 so 0 means none)

	// divFree tracks per-class next-free cycles for non-pipelined FUs.
	divFree [ir.NumClasses]uint64

	// outstanding demand-miss completion times (parallelism metric).
	missDone []uint64

	// pending load completions for engine callbacks.
	loadDone []loadEvent

	s Stats
}

type loadEvent struct {
	at uint64
	d  ir.DynInst
}

// New builds a core over a hierarchy and branch predictor; eng may be
// nil for runs without hardware prefetching.
func New(cfg Config, hier *cache.Hierarchy, pred *bpred.Predictor, eng PrefetchEngine) *Core {
	ringSize := 1
	for ringSize < cfg.WindowSize*2 {
		ringSize <<= 1
	}
	c := &Core{
		cfg:     cfg,
		hier:    hier,
		pred:    pred,
		eng:     eng,
		rob:     make([]robEntry, cfg.WindowSize),
		ring:    make([]uint64, ringSize),
		headSeq: 1,
		nextSeq: 1,
	}
	for i := range c.ring {
		c.ring[i] = ^uint64(0)
	}
	return c
}

func (c *Core) ready(src uint64) bool {
	if src == 0 || src < c.headSeq {
		return true
	}
	if src >= c.nextSeq {
		// Producer not yet dispatched (should not happen: program order).
		return false
	}
	return c.ring[src&uint64(len(c.ring)-1)] <= c.now
}

// Run simulates the stream to completion and returns the statistics.
func (c *Core) Run(gen *ir.Gen) Stats {
	cw := c.cfg.CommitWidth
	for {
		// ---- commit ----
		committed := 0
		for n := 0; n < cw && c.count > 0; n++ {
			e := &c.rob[c.head]
			if !e.issued || e.doneAt > c.now {
				break
			}
			if c.eng != nil {
				c.eng.OnCommit(c.now, &e.d)
			}
			if c.cfg.Tracer != nil {
				c.cfg.Tracer.Trace(&e.d, e.dispatchedAt, e.issuedAt, e.doneAt)
			}
			c.s.CommitByCl[e.d.Class]++
			c.s.Insts++
			if e.isMem {
				c.lsqUsed--
			}
			c.head = (c.head + 1) % len(c.rob)
			c.count--
			c.headSeq++
			committed++
		}

		// ---- deliver load completions to the engine ----
		if c.eng != nil && len(c.loadDone) > 0 {
			kept := c.loadDone[:0]
			for i := range c.loadDone {
				ev := &c.loadDone[i]
				if ev.at <= c.now {
					c.eng.OnLoadComplete(c.now, &ev.d)
				} else {
					kept = append(kept, *ev)
				}
			}
			c.loadDone = kept
		}

		// ---- issue ----
		memUsed := c.issue()

		// ---- fetch/dispatch ----
		done := c.fetchDispatch(gen)

		// ---- prefetch engine ----
		if c.eng != nil {
			free := c.cfg.MemPorts - memUsed
			if free > 0 {
				c.eng.Tick(c.now, free)
			} else {
				c.eng.Tick(c.now, 0)
			}
		}

		if done && c.count == 0 {
			break
		}
		// Attribute this cycle before advancing so Attribution.Total()
		// equals Cycles on every exit path (the final break above skips
		// both the attribution and the increment).
		c.s.Attribution.Account(c.classifyCycle(committed))
		c.now++
		if c.cfg.MaxCycles > 0 && c.now >= c.cfg.MaxCycles {
			c.s.Truncated = true
			gen.Stop()
			break
		}
	}
	c.s.Cycles = c.now
	return c.s
}

// classifyCycle attributes the current cycle to one stats category,
// judged at the commit stage after this cycle's pipeline work ran.
// Precedence: any commit means Busy; an empty window is a front-end
// stall; otherwise the ROB head explains the stall (it is always
// operand-ready, so an unissued head is a structural hazard and an
// issued head is waiting on its own latency).
func (c *Core) classifyCycle(committed int) stats.Category {
	if committed > 0 {
		return stats.CatBusy
	}
	if c.count == 0 {
		return stats.CatFetchStall
	}
	e := &c.rob[c.head]
	if e.issued {
		if e.isMem && e.missL1 {
			return stats.CatLoadMiss
		}
		if e.isMem && e.doneAt > e.issuedAt+1 {
			// A memory op that hit but was delayed past the 1-cycle hit
			// path: TLB, MSHR or bus queuing.
			return stats.CatBusContention
		}
		return stats.CatOther
	}
	if c.count >= len(c.rob) {
		return stats.CatWindowFull
	}
	return stats.CatOther
}

// issue scans the window oldest-first and issues up to IssueWidth ready
// instructions, respecting FU counts, memory ports and LSQ ordering
// rules.  It returns the number of memory ports consumed.
func (c *Core) issue() int {
	issued := 0
	memUsed := 0
	var aluUsed, fpAddUsed int
	sawUnissuedStore := false

	for k := 0; k < c.count && issued < c.cfg.IssueWidth; k++ {
		idx := (c.head + k) % len(c.rob)
		e := &c.rob[idx]
		if e.issued {
			continue
		}
		d := &e.d
		if !c.ready(d.Src1) || !c.ready(d.Src2) {
			if d.Class == ir.Store {
				sawUnissuedStore = true
			}
			continue
		}
		switch d.Class {
		case ir.Load:
			// Loads wait for all previous store addresses.
			if sawUnissuedStore || memUsed >= c.cfg.MemPorts {
				continue
			}
			memUsed++
			c.issueLoad(idx)
		case ir.Store:
			if memUsed >= c.cfg.MemPorts {
				sawUnissuedStore = true
				continue
			}
			memUsed++
			c.hier.AccessData(c.now, d.Addr, cache.KStore)
			e.issued = true
			e.doneAt = c.now + 1
		case ir.Prefetch:
			if memUsed >= c.cfg.MemPorts {
				continue
			}
			memUsed++
			res := c.hier.AccessData(c.now, d.Addr, cache.KPref)
			e.issued = true
			e.doneAt = c.now + 1 // non-binding: completes on issue
			if c.eng != nil {
				c.eng.OnSWPrefetch(c.now, d, res.Done)
			}
		case ir.IntMult, ir.IntDiv, ir.FpMult, ir.FpDiv:
			fu := c.cfg.FUs[d.Class]
			if c.divFree[d.Class] > c.now {
				continue
			}
			e.issued = true
			e.doneAt = c.now + uint64(fu.Latency)
			if !fu.Pipelined {
				c.divFree[d.Class] = e.doneAt
			}
		case ir.FpAdd:
			if fpAddUsed >= c.cfg.FUs[ir.FpAdd].Count {
				continue
			}
			fpAddUsed++
			e.issued = true
			e.doneAt = c.now + uint64(c.cfg.FUs[ir.FpAdd].Latency)
		default: // IntAlu, Nop, Branch, Jump
			if aluUsed >= c.cfg.FUs[ir.IntAlu].Count {
				continue
			}
			aluUsed++
			e.issued = true
			e.doneAt = c.now + 1
		}
		if e.issued {
			issued++
			e.issuedAt = c.now
			c.ring[d.Seq&uint64(len(c.ring)-1)] = e.doneAt
			if d.Seq == c.blockSeq {
				// The mispredicted branch resolved; restart fetch.
				c.fetchReadyAt = e.doneAt + uint64(c.cfg.MispredictPenalty)
				c.blockSeq = 0
			}
		}
	}
	return memUsed
}

func (c *Core) issueLoad(idx int) {
	e := &c.rob[idx]
	d := &e.d

	// Store-to-load forwarding: an older store in the window to the
	// same word supplies the value through the 1-cycle bypass.
	for k := 0; k < c.count; k++ {
		j := (c.head + k) % len(c.rob)
		if j == idx {
			break
		}
		o := &c.rob[j]
		if o.d.Class == ir.Store && o.d.Addr == d.Addr {
			e.issued = true
			e.issuedAt = c.now
			e.doneAt = c.now + 1
			c.finishLoad(e)
			return
		}
	}

	res := c.hier.AccessData(c.now, d.Addr, cache.KLoad)
	e.issued = true
	e.doneAt = res.Done
	if res.TLBMiss {
		c.s.DTLBStalls++
	}
	if res.FromPB {
		c.s.LoadsFromPB++
	}
	if res.MissL1 {
		e.missL1 = true
		c.s.DemandMisses++
		if d.Flags&ir.FLDS != 0 {
			c.s.LDSLoadMiss++
		} else {
			c.s.OtherMiss++
		}
		// Parallelism metric: count other demand misses in flight.
		inFlight := uint64(0)
		kept := c.missDone[:0]
		for _, t := range c.missDone {
			if t > c.now {
				inFlight++
				kept = append(kept, t)
			}
		}
		c.missDone = append(kept, res.Done)
		c.s.MissOverlapSum += inFlight
	}
	if c.eng != nil {
		c.eng.OnLoadIssue(c.now, d)
	}
	c.finishLoad(e)
}

func (c *Core) finishLoad(e *robEntry) {
	if c.eng != nil {
		c.loadDone = append(c.loadDone, loadEvent{at: e.doneAt, d: e.d})
	}
}

// fetchDispatch brings up to FetchWidth instructions into the window.
// It returns true when the stream is exhausted.
func (c *Core) fetchDispatch(gen *ir.Gen) bool {
	if c.now < c.fetchReadyAt || c.blockSeq != 0 {
		c.s.FetchStallCycles++
		return false
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.count >= len(c.rob) {
			return false
		}
		d := c.fetched
		if d == nil {
			d = gen.Next()
			if d == nil {
				return true
			}
		}
		// Instruction cache: fetching a new line may stall.
		line := d.PC>>5<<5 | 1
		if line != c.curLine {
			ready, miss := c.hier.AccessInst(c.now, d.PC)
			c.curLine = line
			if miss || ready > c.now+1 {
				c.fetchReadyAt = ready
				c.fetched = d
				return false
			}
		}
		// LSQ space.
		isMem := d.IsMem()
		if isMem && c.lsqUsed >= c.cfg.LSQSize {
			c.fetched = d
			return false
		}
		c.fetched = nil

		// Dispatch into the window.
		tail := (c.head + c.count) % len(c.rob)
		c.rob[tail] = robEntry{d: *d, isMem: isMem, dispatchedAt: c.now}
		c.ring[d.Seq&uint64(len(c.ring)-1)] = ^uint64(0)
		c.count++
		c.nextSeq = d.Seq + 1
		if isMem {
			c.lsqUsed++
		}

		// Control flow.
		switch d.Class {
		case ir.Branch:
			ok := c.pred.PredictCond(d.PC, d.Taken, d.Target)
			if !ok {
				// Freeze fetch until this branch resolves.
				c.blockSeq = d.Seq
				return false
			}
			if d.Taken {
				c.curLine = 0 // taken branch ends the fetch group
				return false
			}
		case ir.Jump:
			if d.Flags&ir.FReturn != 0 {
				c.curLine = 0
				return false // perfect return prediction, group ends
			}
			if !c.pred.PredictJump(d.PC, d.Target) {
				c.fetchReadyAt = c.now + 1 + uint64(c.cfg.BTBMissPenalty)
				c.curLine = 0
				return false
			}
			c.curLine = 0
			return false
		}
	}
	return false
}
