// Package cpu implements the out-of-order timing core of the paper's
// Table 2 machine: a 5-stage, 4-way superscalar pipeline with 64
// instructions in flight, a 32-entry load/store queue with a 1-cycle
// load bypass (loads wait for all previous store addresses before
// issuing), the listed functional units, and software prefetches that
// are non-binding, complete on issue and may initiate TLB miss
// handling.
//
// The core consumes the dynamic instruction stream produced by
// internal/ir generators.  Because the stream is the committed path,
// wrong-path instructions are not executed; a mispredicted branch
// instead freezes fetch until it resolves plus a front-end refill
// penalty (an approximation documented in DESIGN.md).
package cpu

import (
	"math/bits"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/stats"
)

// PrefetchEngine is the hook through which hardware prefetching
// mechanisms (DBP, cooperative chaining, hardware JPP) observe the core
// and inject prefetch requests.  All methods are called with the
// current cycle.
type PrefetchEngine interface {
	// OnLoadIssue fires when a demand load issues to the data cache.
	OnLoadIssue(now uint64, d *ir.DynInst)
	// OnLoadComplete fires when a demand load's value arrives.  The
	// record is reconstructed from the core's completion queue: only
	// PC, Value, Flags and Class are populated.
	OnLoadComplete(now uint64, d *ir.DynInst)
	// OnCommit fires for every instruction in program order.
	OnCommit(now uint64, d *ir.DynInst)
	// OnSWPrefetch fires when a software prefetch issues; done is the
	// cycle its block arrives.
	OnSWPrefetch(now uint64, d *ir.DynInst, done uint64)
	// Tick runs once per cycle with the number of idle data-cache
	// ports; it returns how many the engine consumed.
	Tick(now uint64, freePorts int) int
	// NextEventAt reports the earliest cycle strictly after now at
	// which the engine could act on its own (issue a queued request or
	// process a completed prefetch), assuming no further core events
	// reach it; ^uint64(0) means the engine is idle.  The core uses the
	// hint to skip provably quiescent cycles; an engine that cannot
	// tell may conservatively return now+1 at the cost of disabling
	// the skip.
	NextEventAt(now uint64) uint64
}

// FU describes one functional unit class: how many units exist and the
// operation latency.  Pipelined units accept one op per unit per cycle;
// non-pipelined units (the dividers and multiplier, as in SimpleScalar)
// are busy for the full latency.
type FU struct {
	Count     int
	Latency   int
	Pipelined bool
}

// Config parameterizes the core.  Defaults() is the Table 2 machine.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	WindowSize  int
	LSQSize     int
	MemPorts    int
	// MispredictPenalty is the front-end refill time after a resolved
	// misprediction.
	MispredictPenalty int
	// BTBMissPenalty is the fetch bubble for a direct jump whose target
	// missed in the BTB.
	BTBMissPenalty int

	FUs [ir.NumClasses]FU

	// MaxCycles aborts runaway simulations; 0 means no limit.
	MaxCycles uint64

	// DisableCycleSkip forces the core to tick every cycle instead of
	// jumping over provably quiescent spans.  The two modes are
	// cycle-exact equivalents (tests assert identical statistics); the
	// flag exists for validation and throughput comparisons.
	DisableCycleSkip bool

	// DisableBlockReplay forces the per-instruction fetch path even when
	// the generator carries decoded-block dispatch metadata, and (via
	// the harness) disables the generator's basic-block replay cache.
	// The two modes are cycle-exact equivalents (tests assert identical
	// statistics); the flag exists for validation and throughput
	// comparisons.
	DisableBlockReplay bool

	// InjectFault deliberately plants one architectural bug into the
	// commit stage (see Fault).  It exists solely so the differential
	// validation subsystem (internal/validate) can prove its oracle
	// catches real core defects; production runs leave it at FaultNone.
	InjectFault Fault
	// FaultAfter is the committed sequence number at (or after) which
	// the injected fault fires.
	FaultAfter uint64

	// Tracer, when non-nil, receives per-instruction pipeline events
	// (used by cmd/jpptrace and tests; nil costs nothing).
	Tracer Tracer

	// Sampling, when non-nil, switches Run to SMARTS-style sampled
	// simulation (see SamplingConfig): detailed timing on periodic
	// intervals, functional fast-forward between them, cycle counts
	// extrapolated with error bars.  Full-fidelity runs leave it nil.
	Sampling *SamplingConfig
}

// Fault selects a deliberately injected commit-stage bug, used as a
// mutation test of the differential validation driver: enabling one
// must make the driver's digest comparison fail, or the driver proves
// nothing.
type Fault uint8

// Injectable faults.
const (
	// FaultNone injects nothing (the production value).
	FaultNone Fault = iota
	// FaultDropCommit retires one instruction without reporting it: the
	// tracer, the prefetch engine and the commit counters never see it
	// (a lost commit).
	FaultDropCommit
	// FaultCorruptLoadValue flips the low bit of one committed load's
	// value as observed at commit (a wrong architectural value).
	FaultCorruptLoadValue
)

// Tracer observes pipeline events for every instruction.
type Tracer interface {
	// Trace reports one instruction's life: dispatch (entered the
	// window), issue, and completion cycles.
	Trace(d *ir.DynInst, dispatched, issued, done uint64)
}

// Defaults returns the paper's Table 2 core configuration.
func Defaults() Config {
	var fus [ir.NumClasses]FU
	fus[ir.Nop] = FU{Count: 4, Latency: 1, Pipelined: true}
	fus[ir.IntAlu] = FU{Count: 4, Latency: 1, Pipelined: true}
	fus[ir.IntMult] = FU{Count: 1, Latency: 3, Pipelined: false}
	fus[ir.IntDiv] = FU{Count: 1, Latency: 20, Pipelined: false}
	fus[ir.FpAdd] = FU{Count: 2, Latency: 2, Pipelined: true}
	fus[ir.FpMult] = FU{Count: 1, Latency: 4, Pipelined: false}
	fus[ir.FpDiv] = FU{Count: 1, Latency: 24, Pipelined: false}
	// Branches resolve on the integer ALUs.
	fus[ir.Branch] = FU{Count: 4, Latency: 1, Pipelined: true}
	fus[ir.Jump] = FU{Count: 4, Latency: 1, Pipelined: true}
	// Memory ops use the two cache ports (modelled separately); the FU
	// entry provides the 1-cycle address generation slot.
	fus[ir.Load] = FU{Count: 2, Latency: 1, Pipelined: true}
	fus[ir.Store] = FU{Count: 2, Latency: 1, Pipelined: true}
	fus[ir.Prefetch] = FU{Count: 2, Latency: 1, Pipelined: true}
	return Config{
		FetchWidth:        4,
		IssueWidth:        4,
		CommitWidth:       4,
		WindowSize:        64,
		LSQSize:           32,
		MemPorts:          2,
		MispredictPenalty: 3,
		BTBMissPenalty:    1,
		FUs:               fus,
	}
}

// Stats reports a run's outcome.
type Stats struct {
	Cycles       uint64
	Insts        uint64
	CommitByCl   [ir.NumClasses]uint64
	LDSLoadMiss  uint64
	OtherMiss    uint64
	DemandMisses uint64
	LoadsFromPB  uint64
	DTLBStalls   uint64

	// MissOverlapSum accumulates, for every demand load miss, the
	// number of other demand misses in flight when it issued; divided
	// by DemandMisses it gives the paper's Table 1 parallelism metric.
	MissOverlapSum uint64

	FetchStallCycles uint64
	Truncated        bool

	// Sample is non-nil only for sampled runs (Config.Sampling set) and
	// carries the measurement/extrapolation breakdown and error bars.
	Sample *SampleStats

	// Attribution charges every simulated cycle to exactly one
	// category, judged at the commit stage; its Total() equals Cycles.
	Attribution stats.CycleBreakdown
}

// AvgMissOverlap returns the average in-flight demand misses observed
// by each demand miss (including itself).
func (s Stats) AvgMissOverlap() float64 {
	if s.DemandMisses == 0 {
		return 0
	}
	return float64(s.MissOverlapSum)/float64(s.DemandMisses) + 1
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

type robEntry struct {
	d            ir.DynInst
	doneAt       uint64
	dispatchedAt uint64
	issuedAt     uint64
	issued       bool
	isMem        bool
	missL1       bool

	// Mask-scheduler state (WindowSize <= 64 fast path).  readyAt is
	// the operand-ready time, valid once waitLeft reaches zero;
	// waitLeft counts distinct unissued producers still owed a
	// completion time.
	readyAt  uint64
	waitLeft uint8
}

// Core is one simulation instance.
type Core struct {
	cfg  Config
	hier *cache.Hierarchy
	pred *bpred.Predictor
	eng  PrefetchEngine

	now uint64

	rob     []robEntry
	head    int
	count   int
	headSeq uint64 // sequence number of the ROB head
	nextSeq uint64 // next sequence number to dispatch

	// status ring: done time per in-flight sequence number.
	ring []uint64 // doneAt; ^0 means not complete

	// firstUnissued is the lowest sequence number that may still be
	// unissued: every window entry below it has issued, so the issue
	// scan starts there instead of at the head.
	firstUnissued uint64
	// unissuedStores counts stores in the window that have not issued;
	// while it is zero no load can be ordering-blocked.
	unissuedStores int

	// Mask scheduler (used when WindowSize <= 64; issueScan otherwise).
	// Bit i of each mask covers ROB slot i.  Unissued entries whose
	// operand-ready time is cached in readyAt are split by due time:
	// readyMask holds entries ready now (the issue loop visits only
	// them), pendMask holds entries whose readyAt is still in the
	// future, with the earliest such time cached in pendMin (^uint64(0)
	// when pendMask is empty).  Entries due by pendMin are promoted to
	// readyMask at the top of the issue stage.  Everything else is
	// asleep waiting for a producer to issue.  storeMask holds unissued
	// stores (the load-ordering rule).  waiters[p] is the set of slots
	// woken when slot p issues.
	useMasks  bool
	readyMask uint64
	pendMask  uint64
	pendMin   uint64
	storeMask uint64
	waiters   []uint64

	lsqUsed int

	// storeQ is a FIFO of the stores currently in the window, in
	// program order (pushed at dispatch, popped at commit).  issueLoad
	// consults it for store-to-load forwarding instead of scanning the
	// whole window.
	storeQ     []storeRef
	storeHead  int
	storeCount int

	// Fetch state.
	fetchReadyAt uint64
	// blockSeq is the sequence of a mispredicted branch fetch waits on.
	blockSeq uint64
	fetched  *ir.DynInst // staged instruction not yet dispatched
	curLine  uint32      // current fetch line (+1 so 0 means none)
	// genDone records that the generator has been observed exhausted.
	genDone bool

	// Block-replay front end (fetchDispatchSpan): when the generator
	// carries decoded-block dispatch metadata, fetch walks whole
	// replayed batches (span/spanMeta/spanPos) instead of staging one
	// instruction at a time.  spanLineDone latches that the current
	// head-of-span instruction's fetch line has been requested (the
	// classic path's curLine-compare equivalent across stall retries);
	// spanStaged mirrors `fetched != nil` for the skip logic.
	useSpans     bool
	span         []ir.DynInst
	spanMeta     []ir.InstMeta
	spanPos      int
	spanLineDone bool
	spanStaged   bool

	// divFree tracks per-class next-free cycles for non-pipelined FUs.
	divFree [ir.NumClasses]uint64

	// outstanding demand-miss completion times (parallelism metric).
	missDone []uint64

	// pending load completions for engine callbacks.  loadDoneMin
	// caches the earliest due time across loadDone (^uint64(0) when
	// empty, exact otherwise) so the per-cycle delivery pass and
	// nextEventAt touch the queue only when an event is actually due.
	loadDone    []loadEvent
	loadDoneMin uint64
	// scratch rebuilds the reduced DynInst handed to OnLoadComplete.
	scratch ir.DynInst

	// faultFired records that the configured InjectFault has been
	// applied (each fault fires exactly once).
	faultFired bool

	s Stats
}

// loadEvent is a pending OnLoadComplete callback.  It carries only the
// fields engines consume (see PrefetchEngine.OnLoadComplete) rather
// than a full ir.DynInst copy per demand load.
type loadEvent struct {
	at    uint64
	pc    uint32
	value uint32
	flags ir.Flag
}

// storeRef is one in-window store in the forwarding FIFO.
type storeRef struct {
	seq  uint64
	addr uint32
}

// New builds a core over a hierarchy and branch predictor; eng may be
// nil for runs without hardware prefetching.
func New(cfg Config, hier *cache.Hierarchy, pred *bpred.Predictor, eng PrefetchEngine) *Core {
	ringSize := 1
	for ringSize < cfg.WindowSize*2 {
		ringSize <<= 1
	}
	storeCap := cfg.LSQSize
	if storeCap < 1 {
		storeCap = 1
	}
	// Ring capacities round up to powers of two so every wrap is a mask
	// instead of a division; logical occupancy is still bounded by
	// WindowSize / LSQSize.
	robCap := 1
	for robCap < cfg.WindowSize {
		robCap <<= 1
	}
	sqCap := 1
	for sqCap < storeCap {
		sqCap <<= 1
	}
	c := &Core{
		cfg:    cfg,
		hier:   hier,
		pred:   pred,
		eng:    eng,
		rob:    make([]robEntry, robCap),
		ring:   make([]uint64, ringSize),
		storeQ: make([]storeRef, sqCap),
		// Pre-size the event queues so the steady state never grows
		// them: outstanding misses and pending load callbacks are both
		// bounded by the window (compaction reuses this backing store).
		missDone:      make([]uint64, 0, cfg.WindowSize),
		loadDone:      make([]loadEvent, 0, cfg.WindowSize),
		loadDoneMin:   ^uint64(0),
		pendMin:       ^uint64(0),
		headSeq:       1,
		nextSeq:       1,
		firstUnissued: 1,
		useMasks:      robCap <= 64,
	}
	if c.useMasks {
		c.waiters = make([]uint64, robCap)
	}
	for i := range c.ring {
		c.ring[i] = ^uint64(0)
	}
	return c
}

// srcReadyAt reports when a source operand becomes (or became) ready.
// known is false while the producer has not issued, so no completion
// time exists yet.
func (c *Core) srcReadyAt(src uint64) (at uint64, known bool) {
	if src == 0 || src < c.headSeq {
		return 0, true
	}
	if src >= c.nextSeq {
		// Producer not yet dispatched (should not happen: program order).
		return 0, false
	}
	t := c.ring[src&uint64(len(c.ring)-1)]
	if t == ^uint64(0) {
		return 0, false
	}
	return t, true
}

// Run simulates the stream to completion and returns the statistics.
// When cfg.Sampling is set it delegates to the sampled-simulation loop
// (see sample.go); the full-fidelity path below is unchanged by it.
func (c *Core) Run(gen *ir.Gen) Stats {
	if c.cfg.Sampling != nil {
		return c.runSampled(gen)
	}
	// Block-granular dispatch needs the generator's decoded-block
	// metadata; without it (or with the knob off) fetch stages one
	// instruction at a time.
	c.useSpans = !c.cfg.DisableBlockReplay && gen.HasMeta()
	for {
		// ---- commit ----
		committed := c.commitStage()

		// ---- deliver load completions to the engine ----
		delivered := c.deliverLoads()

		// ---- issue ----
		seqBefore := c.nextSeq
		memUsed, issued, nextIssue := c.issue()

		// ---- fetch/dispatch ----
		var done bool
		if c.useSpans {
			done = c.fetchDispatchSpan(gen)
		} else {
			done = c.fetchDispatch(gen)
		}
		if done {
			c.genDone = true
		}

		// ---- prefetch engine ----
		if c.eng != nil {
			free := c.cfg.MemPorts - memUsed
			if free > 0 {
				c.eng.Tick(c.now, free)
			} else {
				c.eng.Tick(c.now, 0)
			}
		}

		if done && c.count == 0 {
			break
		}
		// Attribute this cycle before advancing so Attribution.Total()
		// equals Cycles on every exit path (the final break above skips
		// both the attribution and the increment).
		c.s.Attribution.Account(c.classifyCycle(committed))
		c.now++
		if c.cfg.MaxCycles > 0 && c.now >= c.cfg.MaxCycles {
			c.s.Truncated = true
			gen.Stop()
			break
		}

		// ---- event-driven cycle skipping ----
		// A cycle in which nothing committed, issued, dispatched or was
		// delivered leaves the pipeline in a fixed point: every following
		// cycle is identical bookkeeping until some timed event lands.
		// Jump straight to the earliest such event and account for the
		// skipped cycles in bulk; see nextEventAt for the invariants.
		if committed == 0 && issued == 0 && delivered == 0 &&
			c.nextSeq == seqBefore && !c.cfg.DisableCycleSkip {
			next := c.nextEventAt(nextIssue, true)
			if c.cfg.MaxCycles > 0 && next > c.cfg.MaxCycles {
				next = c.cfg.MaxCycles
			}
			if next > c.now {
				span := next - c.now
				// Each skipped cycle classifies identically: the window
				// contents, head state and counters are all frozen.
				c.s.Attribution.AccountN(c.classifyCycle(0), span)
				// fetchDispatch would have counted a front-end stall for
				// every skipped cycle it was blocked.
				if c.blockSeq != 0 {
					c.s.FetchStallCycles += span
				} else if c.fetchReadyAt > c.now {
					stall := c.fetchReadyAt - c.now
					if stall > span {
						stall = span
					}
					c.s.FetchStallCycles += stall
				}
				if c.eng != nil {
					// The engine provably had nothing due during the
					// span (nextEventAt consulted it), so the per-cycle
					// Ticks reduce to query-quota resets; one synthetic
					// Tick at the last skipped cycle reproduces the
					// state the next real cycle observes.
					c.eng.Tick(next-1, 0)
				}
				c.now = next
				if c.cfg.MaxCycles > 0 && c.now >= c.cfg.MaxCycles {
					c.s.Truncated = true
					gen.Stop()
					break
				}
			}
		}
	}
	c.s.Cycles = c.now
	return c.s
}

// commitStage retires up to CommitWidth completed instructions from the
// window head, firing engine/tracer callbacks and applying any
// configured fault injection.
func (c *Core) commitStage() int {
	committed := 0
	for n := 0; n < c.cfg.CommitWidth && c.count > 0; n++ {
		e := &c.rob[c.head]
		if !e.issued || e.doneAt > c.now {
			break
		}
		dropped := false
		if c.cfg.InjectFault != FaultNone && !c.faultFired && e.d.Seq >= c.cfg.FaultAfter {
			switch c.cfg.InjectFault {
			case FaultDropCommit:
				c.faultFired = true
				dropped = true
			case FaultCorruptLoadValue:
				if e.d.Class == ir.Load {
					c.faultFired = true
					e.d.Value ^= 1
				}
			}
		}
		if !dropped {
			if c.eng != nil {
				c.eng.OnCommit(c.now, &e.d)
			}
			if c.cfg.Tracer != nil {
				c.cfg.Tracer.Trace(&e.d, e.dispatchedAt, e.issuedAt, e.doneAt)
			}
			c.s.CommitByCl[e.d.Class]++
			c.s.Insts++
		}
		if e.isMem {
			c.lsqUsed--
			if e.d.Class == ir.Store {
				c.storeHead = (c.storeHead + 1) & (len(c.storeQ) - 1)
				c.storeCount--
			}
		}
		c.head = (c.head + 1) & (len(c.rob) - 1)
		c.count--
		c.headSeq++
		committed++
	}
	return committed
}

// nextEventAt computes the earliest cycle >= c.now at which the frozen
// pipeline can change state, given that the cycle just simulated was
// completely quiescent.  Candidate events:
//
//   - the ROB head completing (commit can proceed);
//   - a queued engine load-completion callback coming due;
//   - a stalled instruction's operands becoming ready, or a
//     non-pipelined FU freeing (nextIssue, computed by issue());
//   - fetch unblocking (I-cache/BTB stall expiring) while it has work
//     it could dispatch;
//   - the prefetch engine acting on its own (NextEventAt hint).
//
// An instruction whose producer has not issued contributes no candidate:
// its wake-up is gated on that producer's issue, which is itself bounded
// by one of the candidates above (the chain of unissued producers ends
// at an instruction with known-ready operands).  A mispredict-frozen
// front end (blockSeq != 0) wakes only when the branch issues, which is
// likewise covered.
//
// With fetchActive false (a sampled run's drain, where the front end is
// frozen by construction rather than by a stall) fetch contributes no
// candidate.
func (c *Core) nextEventAt(nextIssue uint64, fetchActive bool) uint64 {
	next := nextIssue
	if c.count > 0 {
		if e := &c.rob[c.head]; e.issued && e.doneAt < next {
			next = e.doneAt
		}
	}
	if c.loadDoneMin < next {
		next = c.loadDoneMin
	}
	if fetchActive && c.blockSeq == 0 && c.count < c.cfg.WindowSize {
		// Fetch acts once fetchReadyAt passes — unless it would only
		// re-stage a full-LSQ memory op (freed by commit, which is
		// covered above) or poll an exhausted generator to no effect.
		// The exhausted-generator poll does matter when the window is
		// empty: it is what ends the run (see the break in Run), so the
		// stall expiry stays an event in that case.
		canFetch := false
		if c.useSpans {
			// spanStaged mirrors the classic path's `fetched != nil`:
			// the head-of-span instruction stalled on its line or the
			// LSQ, so fetch acts only if that specific block clears.
			if c.spanStaged {
				canFetch = c.spanMeta[c.spanPos]&ir.MetaMem == 0 || c.lsqUsed < c.cfg.LSQSize
			} else {
				canFetch = !c.genDone || c.count == 0
			}
		} else if c.fetched != nil {
			canFetch = !c.fetched.IsMem() || c.lsqUsed < c.cfg.LSQSize
		} else {
			canFetch = !c.genDone || c.count == 0
		}
		if canFetch {
			t := c.fetchReadyAt
			if t < c.now {
				t = c.now
			}
			if t < next {
				next = t
			}
		}
	}
	if c.eng != nil {
		if t := c.eng.NextEventAt(c.now - 1); t < next {
			next = t
		}
	}
	return next
}

// classifyCycle attributes the current cycle to one stats category,
// judged at the commit stage after this cycle's pipeline work ran.
// Precedence: any commit means Busy; an empty window is a front-end
// stall; otherwise the ROB head explains the stall (it is always
// operand-ready, so an unissued head is a structural hazard and an
// issued head is waiting on its own latency).
func (c *Core) classifyCycle(committed int) stats.Category {
	if committed > 0 {
		return stats.CatBusy
	}
	if c.count == 0 {
		return stats.CatFetchStall
	}
	e := &c.rob[c.head]
	if e.issued {
		if e.isMem && e.missL1 {
			return stats.CatLoadMiss
		}
		if e.isMem && e.doneAt > e.issuedAt+1 {
			// A memory op that hit but was delayed past the 1-cycle hit
			// path: TLB, MSHR or bus queuing.
			return stats.CatBusContention
		}
		return stats.CatOther
	}
	if c.count >= c.cfg.WindowSize {
		return stats.CatWindowFull
	}
	return stats.CatOther
}

// issue selects and issues up to IssueWidth ready instructions in age
// order, respecting FU counts, memory ports and LSQ ordering rules.  It
// returns the number of memory ports consumed, the number of
// instructions issued, and the earliest future cycle at which a
// currently-stalled instruction could issue (^uint64(0) when no such
// bound is known; only meaningful to the cycle-skip logic when nothing
// issued this cycle — any activity disables the skip).
func (c *Core) issue() (memUsed, issued int, nextIssue uint64) {
	if c.useMasks {
		return c.issueMasked()
	}
	return c.issueScan()
}

// srcState resolves one operand: its ready time if the producer has
// issued (known), else the ROB slot whose issue will provide it.  The
// producer is always dispatched before its consumer (program order), so
// an unknown producer is in the window.
func (c *Core) srcState(src uint64) (at uint64, known bool, slot int) {
	if src == 0 || src < c.headSeq {
		return 0, true, -1
	}
	t := c.ring[src&uint64(len(c.ring)-1)]
	if t == ^uint64(0) {
		return 0, false, (c.head + int(src-c.headSeq)) & (len(c.rob) - 1)
	}
	return t, true, -1
}

// subscribe registers a freshly dispatched entry (slot idx) with the
// mask scheduler: cache its operand-ready time if every producer has
// issued, otherwise sleep until the producers' issue wakes it.
func (c *Core) subscribe(idx int) {
	e := &c.rob[idx]
	t1, k1, s1 := c.srcState(e.d.Src1)
	t2, k2, s2 := c.srcState(e.d.Src2)
	if t2 > t1 {
		t1 = t2
	}
	e.readyAt = t1
	bit := uint64(1) << uint(idx)
	if k1 && k2 {
		e.waitLeft = 0
		if t1 <= c.now {
			c.readyMask |= bit
		} else {
			c.pendMask |= bit
			if t1 < c.pendMin {
				c.pendMin = t1
			}
		}
		return
	}
	n := uint8(0)
	if !k1 {
		c.waiters[s1] |= bit
		n++
	}
	if !k2 && (k1 || s2 != s1) {
		c.waiters[s2] |= bit
		n++
	}
	e.waitLeft = n
}

// wake publishes an issued entry's completion time to its waiters.  A
// woken entry's readyAt is at least the waker's doneAt (>= now+1), so
// it always lands in pendMask.
func (c *Core) wake(idx int, doneAt uint64) {
	w := c.waiters[idx]
	if w == 0 {
		return
	}
	c.waiters[idx] = 0
	for w != 0 {
		wi := bits.TrailingZeros64(w)
		w &= w - 1
		we := &c.rob[wi]
		if doneAt > we.readyAt {
			we.readyAt = doneAt
		}
		if we.waitLeft--; we.waitLeft == 0 {
			c.pendMask |= uint64(1) << uint(wi)
			if we.readyAt < c.pendMin {
				c.pendMin = we.readyAt
			}
		}
	}
}

// olderMask returns the set of ROB slots strictly older in program
// order than slot idx.  Bits at or above len(rob) may be set but never
// match an occupied slot.
func (c *Core) olderMask(idx int) uint64 {
	headMask := uint64(1)<<uint(c.head) - 1
	below := uint64(1)<<uint(idx) - 1
	if idx >= c.head {
		return below &^ headMask
	}
	return ^headMask | below
}

// issueMasked is the issue stage for windows of at most 64 entries: it
// visits only the entries that are operand-ready this cycle
// (readyMask), in age order, instead of rescanning the window.  Entries
// with a cached future ready time sit in pendMask and are promoted in
// bulk only on cycles that reach pendMin, so stall-heavy spans touch no
// entries at all.  The selection it makes is identical to issueScan's.
func (c *Core) issueMasked() (memUsed, issued int, nextIssue uint64) {
	if c.pendMin <= c.now {
		m, newMin := c.pendMask, ^uint64(0)
		for m != 0 {
			idx := bits.TrailingZeros64(m)
			m &= m - 1
			e := &c.rob[idx]
			if e.readyAt <= c.now {
				bit := uint64(1) << uint(idx)
				c.pendMask &^= bit
				c.readyMask |= bit
			} else if e.readyAt < newMin {
				newMin = e.readyAt
			}
		}
		c.pendMin = newMin
	}
	// The skip logic's wake-up bound: the earliest future operand-ready
	// time.  Structural-hazard bounds (always now+1 or a cached FU free
	// time) overwrite it below only with earlier-or-equal values.
	nextIssue = c.pendMin
	snap := c.readyMask
	if snap == 0 {
		return
	}
	var aluUsed, fpAddUsed int
	headMask := uint64(1)<<uint(c.head) - 1
	// Age order: slots head..len-1, then the wrapped 0..head-1.
	for _, m := range [2]uint64{snap &^ headMask, snap & headMask} {
		for m != 0 && issued < c.cfg.IssueWidth {
			idx := bits.TrailingZeros64(m)
			m &= m - 1
			e := &c.rob[idx]
			d := &e.d
			switch d.Class {
			case ir.Load:
				// Loads wait for all previous store addresses.
				if c.storeMask != 0 && c.storeMask&c.olderMask(idx) != 0 {
					continue
				}
				if memUsed >= c.cfg.MemPorts {
					nextIssue = c.now + 1
					continue
				}
				memUsed++
				c.issueLoad(idx)
			case ir.Store:
				if memUsed >= c.cfg.MemPorts {
					nextIssue = c.now + 1
					continue
				}
				memUsed++
				c.hier.AccessData(c.now, d.Addr, cache.KStore)
				e.issued = true
				e.doneAt = c.now + 1
			case ir.Prefetch:
				if memUsed >= c.cfg.MemPorts {
					nextIssue = c.now + 1
					continue
				}
				memUsed++
				res := c.hier.AccessData(c.now, d.Addr, cache.KPref)
				e.issued = true
				e.doneAt = c.now + 1 // non-binding: completes on issue
				if c.eng != nil {
					c.eng.OnSWPrefetch(c.now, d, res.Done)
				}
			case ir.IntMult, ir.IntDiv, ir.FpMult, ir.FpDiv:
				fu := c.cfg.FUs[d.Class]
				if free := c.divFree[d.Class]; free > c.now {
					if free < nextIssue {
						nextIssue = free
					}
					continue
				}
				e.issued = true
				e.doneAt = c.now + uint64(fu.Latency)
				if !fu.Pipelined {
					c.divFree[d.Class] = e.doneAt
				}
			case ir.FpAdd:
				if fpAddUsed >= c.cfg.FUs[ir.FpAdd].Count {
					nextIssue = c.now + 1
					continue
				}
				fpAddUsed++
				e.issued = true
				e.doneAt = c.now + uint64(c.cfg.FUs[ir.FpAdd].Latency)
			default: // IntAlu, Nop, Branch, Jump
				if aluUsed >= c.cfg.FUs[ir.IntAlu].Count {
					nextIssue = c.now + 1
					continue
				}
				aluUsed++
				e.issued = true
				e.doneAt = c.now + 1
			}
			if e.issued {
				issued++
				e.issuedAt = c.now
				c.ring[d.Seq&uint64(len(c.ring)-1)] = e.doneAt
				bit := uint64(1) << uint(idx)
				c.readyMask &^= bit
				if d.Class == ir.Store {
					c.storeMask &^= bit
					c.unissuedStores--
				}
				c.wake(idx, e.doneAt)
				if d.Seq == c.blockSeq {
					// The mispredicted branch resolved; restart fetch.
					c.fetchReadyAt = e.doneAt + uint64(c.cfg.MispredictPenalty)
					c.blockSeq = 0
				}
			}
		}
		if issued >= c.cfg.IssueWidth {
			break
		}
	}
	return memUsed, issued, nextIssue
}

// issueScan is the issue stage for windows larger than 64 entries: an
// oldest-first scan starting at the first-unissued cursor.
func (c *Core) issueScan() (memUsed, issued int, nextIssue uint64) {
	nextIssue = ^uint64(0)
	var aluUsed, fpAddUsed int
	// The prefix below the cursor is fully issued, so it contains no
	// unissued store; starting the scan there preserves the ordering
	// rule for loads.
	sawUnissuedStore := false
	checkStores := c.unissuedStores > 0

	start := 0
	if c.firstUnissued > c.headSeq {
		start = int(c.firstUnissued - c.headSeq)
	}
	prefix := true // entries scanned so far were all issued

	for k := start; k < c.count && issued < c.cfg.IssueWidth; k++ {
		idx := (c.head + k) & (len(c.rob) - 1)
		e := &c.rob[idx]
		if e.issued {
			if prefix {
				c.firstUnissued = c.headSeq + uint64(k) + 1
			}
			continue
		}
		wasPrefix := prefix
		prefix = false
		d := &e.d
		t1, ok1 := c.srcReadyAt(d.Src1)
		t2, ok2 := c.srcReadyAt(d.Src2)
		if !ok1 || !ok2 || t1 > c.now || t2 > c.now {
			if d.Class == ir.Store {
				sawUnissuedStore = true
			}
			// Wake-up bound for the skip logic: known once both
			// producers have issued.  An unknown producer needs no
			// bound — its own issue is a separate event.
			if ok1 && ok2 {
				t := t1
				if t2 > t {
					t = t2
				}
				if t < nextIssue {
					nextIssue = t
				}
			}
			continue
		}
		switch d.Class {
		case ir.Load:
			// Loads wait for all previous store addresses.
			if checkStores && sawUnissuedStore {
				continue
			}
			if memUsed >= c.cfg.MemPorts {
				nextIssue = c.now + 1
				continue
			}
			memUsed++
			c.issueLoad(idx)
		case ir.Store:
			if memUsed >= c.cfg.MemPorts {
				sawUnissuedStore = true
				nextIssue = c.now + 1
				continue
			}
			memUsed++
			c.hier.AccessData(c.now, d.Addr, cache.KStore)
			e.issued = true
			e.doneAt = c.now + 1
		case ir.Prefetch:
			if memUsed >= c.cfg.MemPorts {
				nextIssue = c.now + 1
				continue
			}
			memUsed++
			res := c.hier.AccessData(c.now, d.Addr, cache.KPref)
			e.issued = true
			e.doneAt = c.now + 1 // non-binding: completes on issue
			if c.eng != nil {
				c.eng.OnSWPrefetch(c.now, d, res.Done)
			}
		case ir.IntMult, ir.IntDiv, ir.FpMult, ir.FpDiv:
			fu := c.cfg.FUs[d.Class]
			if free := c.divFree[d.Class]; free > c.now {
				if free < nextIssue {
					nextIssue = free
				}
				continue
			}
			e.issued = true
			e.doneAt = c.now + uint64(fu.Latency)
			if !fu.Pipelined {
				c.divFree[d.Class] = e.doneAt
			}
		case ir.FpAdd:
			if fpAddUsed >= c.cfg.FUs[ir.FpAdd].Count {
				nextIssue = c.now + 1
				continue
			}
			fpAddUsed++
			e.issued = true
			e.doneAt = c.now + uint64(c.cfg.FUs[ir.FpAdd].Latency)
		default: // IntAlu, Nop, Branch, Jump
			if aluUsed >= c.cfg.FUs[ir.IntAlu].Count {
				nextIssue = c.now + 1
				continue
			}
			aluUsed++
			e.issued = true
			e.doneAt = c.now + 1
		}
		if e.issued {
			issued++
			e.issuedAt = c.now
			c.ring[d.Seq&uint64(len(c.ring)-1)] = e.doneAt
			if d.Class == ir.Store {
				c.unissuedStores--
			}
			if wasPrefix {
				prefix = true
				c.firstUnissued = c.headSeq + uint64(k) + 1
			}
			if d.Seq == c.blockSeq {
				// The mispredicted branch resolved; restart fetch.
				c.fetchReadyAt = e.doneAt + uint64(c.cfg.MispredictPenalty)
				c.blockSeq = 0
			}
		}
	}
	return memUsed, issued, nextIssue
}

func (c *Core) issueLoad(idx int) {
	e := &c.rob[idx]
	d := &e.d

	// Store-to-load forwarding: the oldest older store in the window to
	// the same word supplies the value through the 1-cycle bypass.  The
	// store FIFO holds exactly the in-window stores in program order.
	for k := 0; k < c.storeCount; k++ {
		o := &c.storeQ[(c.storeHead+k)&(len(c.storeQ)-1)]
		if o.seq >= d.Seq {
			break
		}
		if o.addr == d.Addr {
			e.issued = true
			e.issuedAt = c.now
			e.doneAt = c.now + 1
			c.finishLoad(e)
			return
		}
	}

	res := c.hier.AccessData(c.now, d.Addr, cache.KLoad)
	e.issued = true
	e.doneAt = res.Done
	if res.TLBMiss {
		c.s.DTLBStalls++
	}
	if res.FromPB {
		c.s.LoadsFromPB++
	}
	if res.MissL1 {
		e.missL1 = true
		c.s.DemandMisses++
		if d.Flags&ir.FLDS != 0 {
			c.s.LDSLoadMiss++
		} else {
			c.s.OtherMiss++
		}
		// Parallelism metric: count other demand misses in flight.
		inFlight := uint64(0)
		kept := c.missDone[:0]
		for _, t := range c.missDone {
			if t > c.now {
				inFlight++
				kept = append(kept, t)
			}
		}
		c.missDone = append(kept, res.Done)
		c.s.MissOverlapSum += inFlight
	}
	if c.eng != nil {
		c.eng.OnLoadIssue(c.now, d)
	}
	c.finishLoad(e)
}

func (c *Core) finishLoad(e *robEntry) {
	if c.eng != nil {
		if e.doneAt < c.loadDoneMin {
			c.loadDoneMin = e.doneAt
		}
		c.loadDone = append(c.loadDone, loadEvent{
			at:    e.doneAt,
			pc:    e.d.PC,
			value: e.d.Value,
			flags: e.d.Flags,
		})
	}
}

// deliverLoads fires every due OnLoadComplete callback, compacting the
// queue in place and refreshing the cached minimum.  Cycles with
// nothing due (the common case, tracked exactly by loadDoneMin) skip
// the scan entirely.
func (c *Core) deliverLoads() int {
	if c.eng == nil || c.loadDoneMin > c.now {
		return 0
	}
	delivered := 0
	kept := c.loadDone[:0]
	kmin := ^uint64(0)
	for i := range c.loadDone {
		ev := &c.loadDone[i]
		if ev.at <= c.now {
			c.scratch = ir.DynInst{
				Class: ir.Load,
				PC:    ev.pc,
				Value: ev.value,
				Flags: ev.flags,
			}
			c.eng.OnLoadComplete(c.now, &c.scratch)
			delivered++
		} else {
			if ev.at < kmin {
				kmin = ev.at
			}
			kept = append(kept, *ev)
		}
	}
	c.loadDone = kept
	c.loadDoneMin = kmin
	return delivered
}

// dispatch inserts d into the window: ROB tail, status ring, LSQ and
// store-FIFO occupancy, and mask-scheduler subscription.  The ROB slot
// is written field by field: doneAt/issuedAt/readyAt/waitLeft may stay
// stale because they are only read after issue (gated on e.issued) or
// after subscribe rewrites them, and avoiding the whole-struct
// clear-and-copy is measurably cheaper at four dispatches per cycle.
func (c *Core) dispatch(d *ir.DynInst, isMem, isStore bool) {
	tail := (c.head + c.count) & (len(c.rob) - 1)
	e := &c.rob[tail]
	e.d = *d
	e.dispatchedAt = c.now
	e.issued = false
	e.isMem = isMem
	e.missL1 = false
	c.ring[d.Seq&uint64(len(c.ring)-1)] = ^uint64(0)
	c.count++
	c.nextSeq = d.Seq + 1
	if isMem {
		c.lsqUsed++
		if isStore {
			c.storeQ[(c.storeHead+c.storeCount)&(len(c.storeQ)-1)] = storeRef{seq: d.Seq, addr: d.Addr}
			c.storeCount++
			c.unissuedStores++
		}
	}
	if c.useMasks {
		if isStore {
			c.storeMask |= uint64(1) << uint(tail)
		}
		c.subscribe(tail)
	}
}

// fetchDispatchSpan is the block-replay front end: it walks whole
// decoded batches (NextBatch) using the generator's pre-resolved
// per-instruction metadata, so the hot path performs no class decode,
// no fetch-line arithmetic, and no per-instruction staging.  Its
// dispatch decisions — and therefore every timed event — are
// cycle-exact equivalents of fetchDispatch's: the metadata encodes
// exactly the classifications and line crossings the classic path
// computes, and batch refills happen at the same stream positions, so
// the memory-image run-ahead the prefetch engines observe is identical.
// It returns true when the stream is exhausted.
func (c *Core) fetchDispatchSpan(gen *ir.Gen) bool {
	if c.now < c.fetchReadyAt || c.blockSeq != 0 {
		c.s.FetchStallCycles++
		return false
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.count >= c.cfg.WindowSize {
			return false
		}
		if c.spanPos == len(c.span) {
			ins, meta := gen.NextBatch()
			if ins == nil {
				return true
			}
			c.span, c.spanMeta, c.spanPos = ins, meta, 0
		}
		d := &c.span[c.spanPos]
		m := c.spanMeta[c.spanPos]
		// Instruction cache: fetching a new line may stall.  The latch
		// ensures one access per line per instruction across stall
		// retries (the classic path's curLine-compare).
		if m&ir.MetaNewLine != 0 && !c.spanLineDone {
			ready, miss := c.hier.AccessInst(c.now, d.PC)
			c.spanLineDone = true
			if miss || ready > c.now+1 {
				c.fetchReadyAt = ready
				c.spanStaged = true
				return false
			}
		}
		// LSQ space.
		isMem := m&ir.MetaMem != 0
		if isMem && c.lsqUsed >= c.cfg.LSQSize {
			c.spanStaged = true
			return false
		}
		c.spanLineDone = false
		c.spanStaged = false
		c.spanPos++
		c.dispatch(d, isMem, m&ir.MetaStore != 0)

		// Control flow.
		if m&ir.MetaCtrl != 0 {
			if d.Class == ir.Branch {
				if !c.pred.PredictCond(d.PC, d.Taken, d.Target) {
					// Freeze fetch until this branch resolves.
					c.blockSeq = d.Seq
					return false
				}
				if d.Taken {
					return false // taken branch ends the fetch group
				}
			} else { // Jump
				if d.Flags&ir.FReturn != 0 {
					return false // perfect return prediction, group ends
				}
				if !c.pred.PredictJump(d.PC, d.Target) {
					c.fetchReadyAt = c.now + 1 + uint64(c.cfg.BTBMissPenalty)
				}
				return false
			}
		}
	}
	return false
}

// fetchDispatch brings up to FetchWidth instructions into the window.
// It returns true when the stream is exhausted.
func (c *Core) fetchDispatch(gen *ir.Gen) bool {
	if c.now < c.fetchReadyAt || c.blockSeq != 0 {
		c.s.FetchStallCycles++
		return false
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.count >= c.cfg.WindowSize {
			return false
		}
		d := c.fetched
		if d == nil {
			d = gen.Next()
			if d == nil {
				return true
			}
		}
		// Instruction cache: fetching a new line may stall.
		line := d.PC>>5<<5 | 1
		if line != c.curLine {
			ready, miss := c.hier.AccessInst(c.now, d.PC)
			c.curLine = line
			if miss || ready > c.now+1 {
				c.fetchReadyAt = ready
				c.fetched = d
				return false
			}
		}
		// LSQ space.
		isMem := d.IsMem()
		if isMem && c.lsqUsed >= c.cfg.LSQSize {
			c.fetched = d
			return false
		}
		c.fetched = nil
		c.dispatch(d, isMem, d.Class == ir.Store)

		// Control flow.
		switch d.Class {
		case ir.Branch:
			ok := c.pred.PredictCond(d.PC, d.Taken, d.Target)
			if !ok {
				// Freeze fetch until this branch resolves.
				c.blockSeq = d.Seq
				return false
			}
			if d.Taken {
				c.curLine = 0 // taken branch ends the fetch group
				return false
			}
		case ir.Jump:
			if d.Flags&ir.FReturn != 0 {
				c.curLine = 0
				return false // perfect return prediction, group ends
			}
			if !c.pred.PredictJump(d.PC, d.Target) {
				c.fetchReadyAt = c.now + 1 + uint64(c.cfg.BTBMissPenalty)
				c.curLine = 0
				return false
			}
			c.curLine = 0
			return false
		}
	}
	return false
}
