// Package bpred implements the paper's Table 2 branch predictor: an 8K
// entry combined predictor (10-bit-history gshare and 2-bit bimodal
// components with a selector) plus a 2K-entry 4-way associative branch
// target buffer.  Returns are assumed perfectly predicted (standing in
// for a return-address stack, which the paper does not detail).
package bpred

// Config sizes the predictor.
type Config struct {
	// Entries is the table size of each component (8K in Table 2).
	Entries int
	// HistoryBits is the gshare global history length (10).
	HistoryBits int
	// BTBEntries and BTBAssoc size the target buffer (2K, 4-way).
	BTBEntries int
	BTBAssoc   int
}

// Defaults returns the Table 2 configuration.
func Defaults() Config {
	return Config{Entries: 8192, HistoryBits: 10, BTBEntries: 2048, BTBAssoc: 4}
}

// Predictor is a combined gshare/bimodal predictor with a BTB.
type Predictor struct {
	cfg     Config
	bimodal []uint8 // 2-bit counters
	gshare  []uint8 // 2-bit counters
	chooser []uint8 // 2-bit: >=2 selects gshare
	history uint32
	histMsk uint32
	idxMask uint32

	btb     [][]btbEntry
	btbTick uint64

	lookups     uint64
	dirMispred  uint64
	btbMisses   uint64
	condBr      uint64
	takenBr     uint64
	jumpLookups uint64
}

type btbEntry struct {
	tag    uint32
	target uint32
	lru    uint64
	valid  bool
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, cfg.Entries),
		gshare:  make([]uint8, cfg.Entries),
		chooser: make([]uint8, cfg.Entries),
		histMsk: (1 << uint(cfg.HistoryBits)) - 1,
		idxMask: uint32(cfg.Entries - 1),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1 // weakly not-taken
		p.gshare[i] = 1
		p.chooser[i] = 1 // weakly bimodal
	}
	sets := cfg.BTBEntries / cfg.BTBAssoc
	p.btb = make([][]btbEntry, sets)
	backing := make([]btbEntry, cfg.BTBEntries)
	for i := range p.btb {
		p.btb[i] = backing[i*cfg.BTBAssoc : (i+1)*cfg.BTBAssoc]
	}
	return p
}

func (p *Predictor) indices(pc uint32) (bi, gi uint32) {
	word := pc >> 2
	bi = word & p.idxMask
	gi = (word ^ p.history&p.histMsk) & p.idxMask
	return
}

func counterTaken(c uint8) bool { return c >= 2 }

func bump(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// PredictCond predicts a conditional branch at pc and immediately
// updates with the actual outcome and target (the timing model applies
// the misprediction penalty; the predictor state is maintained in
// commit order because the trace is the committed path).
// It reports whether direction and target were both predicted correctly.
func (p *Predictor) PredictCond(pc uint32, taken bool, target uint32) bool {
	p.lookups++
	p.condBr++
	if taken {
		p.takenBr++
	}
	bi, gi := p.indices(pc)
	bPred := counterTaken(p.bimodal[bi])
	gPred := counterTaken(p.gshare[gi])
	useG := counterTaken(p.chooser[bi])
	pred := bPred
	if useG {
		pred = gPred
	}

	correct := pred == taken
	if taken {
		// A taken branch also needs its target from the BTB to redirect
		// fetch without a bubble; train it on every taken instance.
		if !p.btbLookup(pc, target) && correct {
			correct = false
		}
	}
	if !correct {
		p.dirMispred++
	}

	// Update components and chooser.
	if bPred != gPred {
		p.chooser[bi] = bump(p.chooser[bi], gPred == taken)
	}
	p.bimodal[bi] = bump(p.bimodal[bi], taken)
	p.gshare[gi] = bump(p.gshare[gi], taken)
	p.history = (p.history << 1) & p.histMsk
	if taken {
		p.history |= 1
	}
	return correct
}

// PredictJump predicts an unconditional jump/call at pc.  Direct jumps
// still need a BTB hit to redirect fetch without penalty.
func (p *Predictor) PredictJump(pc uint32, target uint32) bool {
	p.lookups++
	p.jumpLookups++
	return p.btbLookup(pc, target)
}

// btbLookup probes and trains the BTB; reports whether pc hit with the
// right target.
func (p *Predictor) btbLookup(pc uint32, target uint32) bool {
	p.btbTick++
	set := (pc >> 2) & uint32(len(p.btb)-1)
	tag := (pc >> 2) / uint32(len(p.btb))
	victim := &p.btb[set][0]
	for i := range p.btb[set] {
		e := &p.btb[set][i]
		if e.valid && e.tag == tag {
			e.lru = p.btbTick
			hit := e.target == target
			if !hit {
				p.btbMisses++
			}
			e.target = target
			return hit
		}
		if !e.valid {
			victim = e
		} else if victim.valid && e.lru < victim.lru {
			victim = e
		}
	}
	p.btbMisses++
	*victim = btbEntry{tag: tag, target: target, lru: p.btbTick, valid: true}
	return false
}

// Stats reports predictor activity.
type Stats struct {
	CondBranches uint64
	TakenShare   float64
	Mispredicts  uint64
	BTBMisses    uint64
}

// Stats returns a snapshot.
func (p *Predictor) Stats() Stats {
	s := Stats{CondBranches: p.condBr, Mispredicts: p.dirMispred, BTBMisses: p.btbMisses}
	if p.condBr > 0 {
		s.TakenShare = float64(p.takenBr) / float64(p.condBr)
	}
	return s
}
