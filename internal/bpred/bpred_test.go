package bpred

import "testing"

func TestLoopBranchLearned(t *testing.T) {
	p := New(Defaults())
	pc, target := uint32(0x400100), uint32(0x400040)
	// A taken loop-back branch: after warmup, it must predict correctly.
	warm := 16
	correct := 0
	for i := 0; i < 200; i++ {
		ok := p.PredictCond(pc, true, target)
		if i >= warm && ok {
			correct++
		}
	}
	if correct < 180 {
		t.Fatalf("loop branch only predicted %d/184 after warmup", correct)
	}
}

func TestAlternatingPatternLearnedByGshare(t *testing.T) {
	p := New(Defaults())
	pc, target := uint32(0x400200), uint32(0x400080)
	correct := 0
	for i := 0; i < 400; i++ {
		ok := p.PredictCond(pc, i%2 == 0, target)
		if i >= 100 && ok {
			correct++
		}
	}
	// The 10-bit-history gshare component captures a strict
	// alternation; the chooser must have migrated to it.
	if correct < 280 {
		t.Fatalf("alternating branch predicted %d/300 after warmup", correct)
	}
}

func TestRandomBranchMispredicts(t *testing.T) {
	p := New(Defaults())
	pc, target := uint32(0x400300), uint32(0x4000C0)
	seed := uint32(12345)
	wrong := 0
	for i := 0; i < 1000; i++ {
		seed = seed*1664525 + 1013904223
		if !p.PredictCond(pc, seed&0x10000 != 0, target) {
			wrong++
		}
	}
	if wrong < 200 {
		t.Fatalf("random branch mispredicted only %d/1000 times", wrong)
	}
}

func TestBTBMissOnFirstTakenBranch(t *testing.T) {
	p := New(Defaults())
	// Even with correct direction, the first taken encounter misses the
	// BTB (no target yet).  Train direction first via not-taken—can't;
	// instead verify Stats reflect the BTB miss.
	for i := 0; i < 8; i++ {
		p.PredictCond(0x400400, true, 0x400000)
	}
	s := p.Stats()
	if s.BTBMisses == 0 {
		t.Fatal("expected at least one BTB miss on a cold taken branch")
	}
}

func TestJumpPrediction(t *testing.T) {
	p := New(Defaults())
	if p.PredictJump(0x400500, 0x400100) {
		t.Fatal("cold jump must miss the BTB")
	}
	if !p.PredictJump(0x400500, 0x400100) {
		t.Fatal("trained jump must hit the BTB")
	}
	// A changed target is a miss again.
	if p.PredictJump(0x400500, 0x400200) {
		t.Fatal("jump with changed target must miss")
	}
}

func TestBTBAssociativity(t *testing.T) {
	p := New(Defaults())
	sets := Defaults().BTBEntries / Defaults().BTBAssoc
	// Four jumps fill one BTB set; all four then hit.
	base := uint32(0x400000)
	stride := uint32(sets * 4)
	for i := 0; i < 4; i++ {
		p.PredictJump(base+uint32(i)*stride, 0x400800)
	}
	for i := 0; i < 4; i++ {
		if !p.PredictJump(base+uint32(i)*stride, 0x400800) {
			t.Fatalf("jump %d evicted from a non-full set", i)
		}
	}
	// A fifth conflicting jump misses, then hits once installed.
	if p.PredictJump(base+4*stride, 0x400800) {
		t.Fatal("fifth conflicting jump hit a full set cold")
	}
	if !p.PredictJump(base+4*stride, 0x400800) {
		t.Fatal("fifth jump not installed after its miss")
	}
}

func TestStats(t *testing.T) {
	p := New(Defaults())
	for i := 0; i < 10; i++ {
		p.PredictCond(0x400600, i%2 == 0, 0x400000)
	}
	s := p.Stats()
	if s.CondBranches != 10 {
		t.Fatalf("CondBranches = %d", s.CondBranches)
	}
	if s.TakenShare != 0.5 {
		t.Fatalf("TakenShare = %v", s.TakenShare)
	}
}
