package stats

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestCycleBreakdownAccountTotal(t *testing.T) {
	var b CycleBreakdown
	const perCat = 7
	for c := 0; c < NumCategories; c++ {
		for i := 0; i < perCat; i++ {
			b.Account(Category(c))
		}
	}
	if got, want := b.Total(), uint64(perCat*NumCategories); got != want {
		t.Fatalf("Total() = %d, want %d", got, want)
	}
	for c := 0; c < NumCategories; c++ {
		if got := b.ByCategory(Category(c)); got != perCat {
			t.Errorf("ByCategory(%v) = %d, want %d", Category(c), got, perCat)
		}
		if got, want := b.Share(Category(c)), 1.0/float64(NumCategories); got != want {
			t.Errorf("Share(%v) = %g, want %g", Category(c), got, want)
		}
	}
}

func TestCategoryAndOutcomeNames(t *testing.T) {
	seen := map[string]bool{}
	for c := 0; c < NumCategories; c++ {
		n := Category(c).String()
		if n == "" || seen[n] {
			t.Errorf("category %d has empty/duplicate name %q", c, n)
		}
		seen[n] = true
	}
	for o := 0; o < NumOutcomes; o++ {
		n := Outcome(o).String()
		if n == "" || seen[n] {
			t.Errorf("outcome %d has empty/duplicate name %q", o, n)
		}
		seen[n] = true
	}
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker()
	// Timely: fill done at 10, demand at 20.
	tr.PrefetchIssued(0x100, 10, false)
	tr.Demand(0x100, 20, true)
	// Late: fill done at 50, demand at 30.
	tr.PrefetchIssued(0x200, 50, false)
	tr.Demand(0x200, 30, true)
	// Useless: dropped at issue.
	tr.PrefetchIssued(0x300, 5, true)
	// Evicted before use.
	tr.PrefetchIssued(0x400, 15, false)
	tr.Evicted(0x400)
	// Never touched: finalized into evicted-unused.
	tr.PrefetchIssued(0x500, 25, false)
	// Uncovered demand miss, plus a hit that counts nothing.
	tr.Demand(0x600, 40, true)
	tr.Demand(0x700, 41, false)
	tr.Finalize()
	tr.Finalize() // idempotent

	p := tr.Stats()
	want := PrefetchStats{
		Issued: 5, UsefulTimely: 1, UsefulLate: 1, Useless: 1,
		EvictedUnused: 2, UncoveredMisses: 1,
	}
	if p != want {
		t.Fatalf("Stats() = %+v, want %+v", p, want)
	}
	if p.OutcomeTotal() != p.Issued {
		t.Fatalf("outcomes %d != issued %d", p.OutcomeTotal(), p.Issued)
	}
	if got, want := p.Coverage(), 2.0/3.0; got != want {
		t.Errorf("Coverage() = %g, want %g", got, want)
	}
	if got, want := p.Accuracy(), 2.0/5.0; got != want {
		t.Errorf("Accuracy() = %g, want %g", got, want)
	}
	if got, want := p.Timeliness(), 0.5; got != want {
		t.Errorf("Timeliness() = %g, want %g", got, want)
	}
}

func TestTrackerDoubleIssueKeepsIdentity(t *testing.T) {
	tr := NewTracker()
	tr.PrefetchIssued(0x100, 10, false)
	tr.PrefetchIssued(0x100, 20, false) // same line again, not dropped
	tr.Demand(0x100, 30, true)
	tr.Finalize()
	p := tr.Stats()
	if p.Issued != 2 || p.OutcomeTotal() != 2 {
		t.Fatalf("issued=%d outcomes=%d, want 2/2", p.Issued, p.OutcomeTotal())
	}
	if p.Useful() != 1 || p.EvictedUnused != 1 {
		t.Fatalf("useful=%d evicted=%d, want 1/1", p.Useful(), p.EvictedUnused)
	}
}

// TestTrackerPropertyRandom drives the tracker with random event
// sequences and checks the accounting identity and metric ranges hold
// regardless of ordering.
func TestTrackerPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		tr := NewTracker()
		issued := uint64(0)
		for ev := 0; ev < 500; ev++ {
			line := uint32(rng.Intn(32)) << 5
			now := uint64(rng.Intn(1000))
			switch rng.Intn(4) {
			case 0:
				tr.PrefetchIssued(line, now+uint64(rng.Intn(100)), rng.Intn(4) == 0)
				issued++
			case 1:
				tr.Demand(line, now, rng.Intn(2) == 0)
			case 2:
				tr.Evicted(line)
			case 3:
				// Demand hit on an untracked line: must be a no-op.
				tr.Demand(line|1<<30, now, false)
			}
		}
		tr.Finalize()
		p := tr.Stats()
		if p.Issued != issued {
			t.Fatalf("trial %d: Issued=%d, want %d", trial, p.Issued, issued)
		}
		if p.OutcomeTotal() != p.Issued {
			t.Fatalf("trial %d: outcomes %d != issued %d", trial, p.OutcomeTotal(), p.Issued)
		}
		for name, v := range map[string]float64{
			"coverage":   p.Coverage(),
			"accuracy":   p.Accuracy(),
			"timeliness": p.Timeliness(),
		} {
			if v < 0 || v > 1 {
				t.Fatalf("trial %d: %s = %g out of range", trial, name, v)
			}
		}
	}
}

func validSnapshot() Snapshot {
	p := PrefetchStats{
		Issued: 10, UsefulTimely: 4, UsefulLate: 2, Useless: 3,
		EvictedUnused: 1, UncoveredMisses: 6,
	}
	s := Snapshot{
		Version: SchemaVersion,
		Bench:   "health", Scheme: "coop", Idiom: "queue", Size: "test",
		Cycles: 100, Insts: 150, IPC: 1.5,
		CyclesByCategory: CycleBreakdown{Busy: 40, FetchStall: 10, WindowFull: 5, LoadMiss: 30, BusContention: 10, Other: 5},
		Prefetch:         PrefetchReport{PrefetchStats: p, SWIssued: 4, EngineIssued: 6, Derived: p.Metrics()},
	}
	return s
}

func TestSnapshotValidate(t *testing.T) {
	if err := validSnapshot().Validate(); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*Snapshot)
	}{
		{"version", func(s *Snapshot) { s.Version = 99 }},
		{"cycle sum", func(s *Snapshot) { s.CyclesByCategory.Busy++ }},
		{"outcome sum", func(s *Snapshot) { s.Prefetch.Useless++ }},
		{"metrics", func(s *Snapshot) { s.Prefetch.Derived.Coverage += 0.25 }},
		{"ipc", func(s *Snapshot) { s.IPC = 3 }},
		// Per-source double count: an EngineIssued that overstates the
		// engine's cache requests breaks SWIssued + EngineIssued ==
		// Issued and must be rejected, not silently emitted.
		{"per-source double count", func(s *Snapshot) { s.Prefetch.EngineIssued++ }},
		{"per-source undercount", func(s *Snapshot) { s.Prefetch.SWIssued-- }},
	}
	for _, c := range bad {
		s := validSnapshot()
		c.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s corruption accepted", c.name)
		}
	}
	// The per-source identity is gated: truncated runs commit fewer
	// software prefetches than they issue, and perfect-memory runs
	// bypass the tracker, so a mismatch is legal there.
	for _, gate := range []struct {
		name string
		mut  func(*Snapshot)
	}{
		{"truncated", func(s *Snapshot) { s.Truncated = true }},
		{"perfect-mem", func(s *Snapshot) { s.PerfectMem = true }},
	} {
		s := validSnapshot()
		s.Prefetch.EngineIssued++
		s.Prefetch.Useless++ // keep the outcome identity intact
		s.Prefetch.Issued++
		s.Prefetch.SWIssued = 0
		s.Prefetch.Derived = s.Prefetch.PrefetchStats.Metrics()
		gate.mut(&s)
		if err := s.Validate(); err != nil {
			t.Errorf("%s run rejected by gated identity: %v", gate.name, err)
		}
	}
}

func TestParseSnapshotsObjectAndArray(t *testing.T) {
	s := validSnapshot()
	one, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	many, err := json.Marshal([]Snapshot{s, s})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSnapshots(one)
	if err != nil || len(got) != 1 {
		t.Fatalf("object parse: %v (n=%d)", err, len(got))
	}
	if got[0] != s {
		t.Fatalf("object round-trip mismatch: %+v", got[0])
	}
	got, err = ParseSnapshots(many)
	if err != nil || len(got) != 2 {
		t.Fatalf("array parse: %v (n=%d)", err, len(got))
	}
	wrapped, err := json.Marshal(map[string]any{
		"version": SchemaVersion, "snapshots": []Snapshot{s, s, s},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err = ParseSnapshots(wrapped)
	if err != nil || len(got) != 3 {
		t.Fatalf("wrapper parse (BENCH_jpp.json shape): %v (n=%d)", err, len(got))
	}
	if got[2] != s {
		t.Fatalf("wrapper round-trip mismatch: %+v", got[2])
	}
	if _, err := ParseSnapshots([]byte("{nope")); err == nil {
		t.Error("garbage accepted")
	}
}
