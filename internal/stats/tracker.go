package stats

// Tracker follows every prefetch request from issue to outcome at cache
// line granularity.  The memory hierarchy is the single choke point all
// prefetch sources go through (software prefetch instructions, the DBP
// engine, the hardware JPP engine all arrive as KPref accesses), so one
// tracker per hierarchy sees everything.
//
// Lifecycle of a tracked line:
//
//	PrefetchIssued(dropped)        -> Useless immediately
//	PrefetchIssued -> Demand       -> UsefulTimely (fill done) or
//	                                  UsefulLate   (fill in flight)
//	PrefetchIssued -> Evicted      -> EvictedUnused
//	PrefetchIssued -> Finalize     -> EvictedUnused (never touched)
//
// Demand accesses that miss L1 with no tracked prefetch pending count
// as UncoveredMisses — the other half of the coverage denominator.
type Tracker struct {
	p PrefetchStats

	// pending maps a line address to the cycle its prefetch fill
	// completes; presence means a prefetch is outstanding-or-resident
	// and unconsumed.
	pending map[uint32]uint64

	// filter counts pending lines per hash bucket.  Demand and Evicted
	// run for every L1 access, and most lines have no pending prefetch:
	// a zero bucket proves absence and skips the map probe entirely
	// (the counter makes the filter exact on negatives — false
	// positives merely fall through to the map).
	filter [trackerFilterBuckets]uint16

	finalized bool
}

// trackerFilterBuckets sizes the pending-line filter (power of two).
const trackerFilterBuckets = 512

func trackerFilterHash(line uint32) uint32 {
	return (line * 2654435761) >> 23 & (trackerFilterBuckets - 1)
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{pending: make(map[uint32]uint64)}
}

// PrefetchIssued records one prefetch request for line.  done is the
// cycle the fill completes; dropped marks requests the hierarchy
// discarded because the line was already resident or in flight.
func (t *Tracker) PrefetchIssued(line uint32, done uint64, dropped bool) {
	t.p.Issued++
	if dropped {
		t.p.add(OutUseless)
		return
	}
	if _, ok := t.pending[line]; ok {
		// A prior prefetch for the same line is still pending; the
		// hierarchy should have dropped this one, but keep the outcome
		// identity exact by retiring the older request as never-used.
		t.p.add(OutEvictedUnused)
	} else {
		t.filter[trackerFilterHash(line)]++
	}
	t.pending[line] = done
}

// Demand records a demand access to line at cycle now.  missL1 is true
// when the access missed the L1 level (L1D and prefetch buffer both).
// A pending prefetch for the line is consumed and classified timely or
// late by whether its fill had completed by now.
func (t *Tracker) Demand(line uint32, now uint64, missL1 bool) {
	h := trackerFilterHash(line)
	if t.filter[h] == 0 {
		if missL1 {
			t.p.UncoveredMisses++
		}
		return
	}
	if done, ok := t.pending[line]; ok {
		delete(t.pending, line)
		t.filter[h]--
		if done <= now {
			t.p.add(OutUsefulTimely)
		} else {
			t.p.add(OutUsefulLate)
		}
		return
	}
	if missL1 {
		t.p.UncoveredMisses++
	}
}

// Evicted records that line left the L1 level (L1D or prefetch buffer
// victim).  An unconsumed prefetch of that line becomes EvictedUnused.
func (t *Tracker) Evicted(line uint32) {
	h := trackerFilterHash(line)
	if t.filter[h] == 0 {
		return
	}
	if _, ok := t.pending[line]; ok {
		delete(t.pending, line)
		t.filter[h]--
		t.p.add(OutEvictedUnused)
	}
}

// Finalize retires every still-pending prefetch as EvictedUnused (the
// run ended before a demand access touched them).  Idempotent.
func (t *Tracker) Finalize() {
	if t.finalized {
		return
	}
	t.finalized = true
	for line := range t.pending {
		delete(t.pending, line)
		t.p.add(OutEvictedUnused)
	}
	t.filter = [trackerFilterBuckets]uint16{}
}

// Stats returns the accumulated counters.  Call Finalize first for the
// outcomes-sum-to-issued identity to hold.
func (t *Tracker) Stats() PrefetchStats { return t.p }
