package stats

import (
	"encoding/json"
	"testing"
)

// FuzzParseSnapshots feeds arbitrary bytes to the snapshot parser (the
// input side of jppreport -stats and of BENCH_jpp.json consumers): it
// must never panic, and whatever it accepts must re-marshal cleanly.
func FuzzParseSnapshots(f *testing.F) {
	s := Snapshot{Version: SchemaVersion, Bench: "health", Scheme: "coop", Cycles: 10}
	one, _ := json.Marshal(s)
	many, _ := json.Marshal([]Snapshot{s, s})
	f.Add([]byte("{}"))
	f.Add([]byte("[]"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"version":1,"cycles":"ten"}`))
	f.Add(one)
	f.Add(many)
	f.Fuzz(func(t *testing.T, data []byte) {
		snaps, err := ParseSnapshots(data)
		if err != nil {
			return
		}
		for _, s := range snaps {
			_ = s.Validate() // may reject; must not panic
			if _, err := json.Marshal(s); err != nil {
				t.Fatalf("accepted snapshot fails to marshal: %v", err)
			}
		}
	})
}
