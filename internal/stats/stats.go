// Package stats is the simulator's cycle-accounting and
// prefetch-effectiveness layer.
//
// It answers the two questions the paper's evaluation hinges on: where
// do the cycles go (Fig. 5/6 decompose speedups into memory-stall
// reduction), and what did each prefetch achieve (coverage, accuracy
// and timeliness are the standard figures of merit for prefetcher
// studies).  The core timing loop attributes every simulated cycle to
// exactly one Category; the memory hierarchy tracks every prefetch
// request to exactly one Outcome.  Two hard invariants follow and are
// enforced by Snapshot.Validate:
//
//	sum(cycle categories)   == Cycles
//	sum(prefetch outcomes)  == prefetches issued
//
// The package is a leaf: it imports nothing from the rest of the
// repository so every layer (cpu, cache, harness, CLIs) can use it.
package stats

import (
	"encoding/json"
	"fmt"
)

// SchemaVersion identifies the JSON layout of Snapshot.  Bump it on any
// incompatible change so downstream consumers (jppreport, BENCH_jpp.json
// trend tooling) can detect mismatches.
//
// Version history:
//
//	1 — initial layout
//	2 — added the "replay" section (front-end block-replay cache)
const SchemaVersion = 2

// Category classifies what one simulated cycle was spent on, judged at
// the commit stage (the retirement-centric attribution used by the
// gem5/top-down methodology): a cycle is Busy if anything committed,
// otherwise it is charged to whatever stalled the ROB head.
type Category uint8

// Cycle categories.  Precedence when several conditions hold follows
// the declaration order: committing beats every stall, an empty window
// is a front-end problem regardless of why, and a head load miss beats
// the generic bus/window reasons.
const (
	// CatBusy: at least one instruction committed this cycle.
	CatBusy Category = iota
	// CatFetchStall: nothing committed and the window is empty — the
	// front end (I-cache miss, misprediction freeze, BTB bubble) starved
	// the core.
	CatFetchStall
	// CatWindowFull: the head has not issued and the window is full — a
	// structural back-pressure stall.
	CatWindowFull
	// CatLoadMiss: the head is an issued load that missed the L1 level
	// and is waiting for data — the paper's memory-stall cycles.
	CatLoadMiss
	// CatBusContention: the head is an issued memory op that hit but is
	// delayed beyond the hit latency (bus/MSHR/TLB queuing).
	CatBusContention
	// CatOther: everything else (multi-cycle FU latencies, issue-width
	// or port contention with a non-full window).
	CatOther

	// NumCategories is the number of cycle categories.
	NumCategories = int(CatOther) + 1
)

var categoryNames = [NumCategories]string{
	"busy", "fetch_stall", "window_full", "load_miss", "bus_contention", "other",
}

// String returns the category's snake_case JSON name.
func (c Category) String() string {
	if int(c) < NumCategories {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// CycleBreakdown attributes a run's cycles across the categories.  The
// named fields (rather than an array) fix the JSON schema.
type CycleBreakdown struct {
	Busy          uint64 `json:"busy"`
	FetchStall    uint64 `json:"fetch_stall"`
	WindowFull    uint64 `json:"window_full"`
	LoadMiss      uint64 `json:"load_miss"`
	BusContention uint64 `json:"bus_contention"`
	Other         uint64 `json:"other"`
}

// Account charges one cycle to category c.
func (b *CycleBreakdown) Account(c Category) {
	b.AccountN(c, 1)
}

// AccountN charges n cycles to category c at once.  The event-driven
// core uses it to attribute a whole quiescent span in one call; the
// result is identical to n individual Account calls.
func (b *CycleBreakdown) AccountN(c Category, n uint64) {
	switch c {
	case CatBusy:
		b.Busy += n
	case CatFetchStall:
		b.FetchStall += n
	case CatWindowFull:
		b.WindowFull += n
	case CatLoadMiss:
		b.LoadMiss += n
	case CatBusContention:
		b.BusContention += n
	default:
		b.Other += n
	}
}

// ByCategory returns the count for category c.
func (b CycleBreakdown) ByCategory(c Category) uint64 {
	switch c {
	case CatBusy:
		return b.Busy
	case CatFetchStall:
		return b.FetchStall
	case CatWindowFull:
		return b.WindowFull
	case CatLoadMiss:
		return b.LoadMiss
	case CatBusContention:
		return b.BusContention
	default:
		return b.Other
	}
}

// Total returns the sum over all categories; it must equal the run's
// cycle count.
func (b CycleBreakdown) Total() uint64 {
	return b.Busy + b.FetchStall + b.WindowFull + b.LoadMiss + b.BusContention + b.Other
}

// Share returns category c's fraction of the total, or 0 for an empty
// breakdown.
func (b CycleBreakdown) Share(c Category) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b.ByCategory(c)) / float64(t)
}

// Outcome classifies what became of one prefetch request.
type Outcome uint8

// Prefetch outcomes.
const (
	// OutUsefulTimely: a demand access hit the prefetched line after its
	// fill completed — the full miss latency was hidden.
	OutUsefulTimely Outcome = iota
	// OutUsefulLate: a demand access hit the prefetched line while the
	// fill was still in flight — latency partially hidden.
	OutUsefulLate
	// OutUseless: the request was dropped because the line was already
	// resident or already being fetched; it did no independent work.
	OutUseless
	// OutEvictedUnused: the line was fetched but evicted (or the run
	// ended) before any demand access touched it — pure wasted traffic.
	OutEvictedUnused

	// NumOutcomes is the number of prefetch outcomes.
	NumOutcomes = int(OutEvictedUnused) + 1
)

var outcomeNames = [NumOutcomes]string{
	"useful_timely", "useful_late", "useless", "evicted_unused",
}

// String returns the outcome's snake_case JSON name.
func (o Outcome) String() string {
	if int(o) < NumOutcomes {
		return outcomeNames[o]
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// PrefetchStats counts prefetch requests by outcome, plus the demand
// misses no prefetch covered (the coverage denominator's other half).
type PrefetchStats struct {
	Issued        uint64 `json:"issued"`
	UsefulTimely  uint64 `json:"useful_timely"`
	UsefulLate    uint64 `json:"useful_late"`
	Useless       uint64 `json:"useless"`
	EvictedUnused uint64 `json:"evicted_unused"`

	// UncoveredMisses counts demand accesses that missed the L1 level
	// without a prefetch in flight or resident for their line.
	UncoveredMisses uint64 `json:"uncovered_misses"`
}

// ByOutcome returns the count for outcome o.
func (p PrefetchStats) ByOutcome(o Outcome) uint64 {
	switch o {
	case OutUsefulTimely:
		return p.UsefulTimely
	case OutUsefulLate:
		return p.UsefulLate
	case OutUseless:
		return p.Useless
	default:
		return p.EvictedUnused
	}
}

// add charges one prefetch to outcome o.
func (p *PrefetchStats) add(o Outcome) {
	switch o {
	case OutUsefulTimely:
		p.UsefulTimely++
	case OutUsefulLate:
		p.UsefulLate++
	case OutUseless:
		p.Useless++
	default:
		p.EvictedUnused++
	}
}

// Useful returns the prefetches a demand access consumed.
func (p PrefetchStats) Useful() uint64 { return p.UsefulTimely + p.UsefulLate }

// OutcomeTotal sums the outcome counts; it must equal Issued once the
// run is finalized.
func (p PrefetchStats) OutcomeTotal() uint64 {
	return p.UsefulTimely + p.UsefulLate + p.Useless + p.EvictedUnused
}

// Coverage is the fraction of would-be demand misses a prefetch served:
// useful / (useful + uncovered misses).  In [0, 1] by construction.
func (p PrefetchStats) Coverage() float64 {
	den := p.Useful() + p.UncoveredMisses
	if den == 0 {
		return 0
	}
	return float64(p.Useful()) / float64(den)
}

// Accuracy is the fraction of issued prefetches that proved useful.
func (p PrefetchStats) Accuracy() float64 {
	if p.Issued == 0 {
		return 0
	}
	return float64(p.Useful()) / float64(p.Issued)
}

// Timeliness is the fraction of useful prefetches that arrived in full
// before the demand access.
func (p PrefetchStats) Timeliness() float64 {
	u := p.Useful()
	if u == 0 {
		return 0
	}
	return float64(p.UsefulTimely) / float64(u)
}

// PrefetchMetrics are the derived figures of merit, stored explicitly
// in the JSON so consumers need not recompute them.
type PrefetchMetrics struct {
	Coverage   float64 `json:"coverage"`
	Accuracy   float64 `json:"accuracy"`
	Timeliness float64 `json:"timeliness"`
}

// Metrics derives the coverage/accuracy/timeliness triple.
func (p PrefetchStats) Metrics() PrefetchMetrics {
	return PrefetchMetrics{
		Coverage:   p.Coverage(),
		Accuracy:   p.Accuracy(),
		Timeliness: p.Timeliness(),
	}
}

// PrefetchReport is the prefetch section of a Snapshot: the tracked
// outcome counters plus per-source issue counts and derived metrics.
type PrefetchReport struct {
	PrefetchStats

	// SWIssued counts software prefetch instructions committed by the
	// core; EngineIssued counts requests the DBP/hardware engine sent to
	// the cache.  For a complete (untruncated, non-perfect-memory) run
	// SWIssued + EngineIssued == Issued.
	SWIssued     uint64 `json:"sw_issued"`
	EngineIssued uint64 `json:"engine_issued"`

	Derived PrefetchMetrics `json:"metrics"`
}

// CacheReport is the memory-hierarchy section of a Snapshot.
type CacheReport struct {
	L1DAccesses uint64 `json:"l1d_accesses"`
	L1DMisses   uint64 `json:"l1d_misses"`
	L2Accesses  uint64 `json:"l2_accesses"`
	L2Misses    uint64 `json:"l2_misses"`
	PBHits      uint64 `json:"pb_hits"`
	PBFills     uint64 `json:"pb_fills"`
	L1L2Bytes   uint64 `json:"l1l2_bytes"`
	MemBytes    uint64 `json:"mem_bytes"`
}

// SamplingReport is the sampled-simulation section of a Snapshot: what
// the detailed intervals measured and how tight the extrapolation is.
type SamplingReport struct {
	Intervals      int    `json:"intervals"`
	MeasuredInsts  uint64 `json:"measured_instructions"`
	MeasuredCycles uint64 `json:"measured_cycles"`
	// FFInsts counts the functionally fast-forwarded instructions whose
	// cycle cost was extrapolated from the measured CPI.
	FFInsts   uint64  `json:"fast_forwarded_instructions"`
	CPIMean   float64 `json:"cpi_mean"`
	CPIStdErr float64 `json:"cpi_stderr"`
	// CyclesLo/CyclesHi bound the extrapolated cycle count at 95%
	// confidence.
	CyclesLo uint64 `json:"cycles_lo"`
	CyclesHi uint64 `json:"cycles_hi"`
}

// ReplayReport is the front-end block-replay section of a Snapshot: how
// well the decoded basic-block replay cache (internal/ir) captured the
// workload's emission behaviour.  Replay is a pure simulator-performance
// mechanism — it never changes architectural results — so this section
// is observability only.  It is absent when replay is disabled.
type ReplayReport struct {
	// BlocksCaptured counts decoded basic blocks recorded in the block
	// table; ReplayedInsts counts instructions emitted through the
	// verified replay fast path; ReplayAborts counts mid-block template
	// mismatches (data-dependent emission paths).
	BlocksCaptured uint64 `json:"blocks_captured"`
	ReplayedInsts  uint64 `json:"replayed_instructions"`
	ReplayAborts   uint64 `json:"replay_aborts"`
	// HitRate is ReplayedInsts over all emitted instructions.
	HitRate float64 `json:"hit_rate"`
}

// Snapshot is the versioned, self-describing statistics record one
// simulation emits (jppsim -stats-json, harness.Result.Stats,
// BENCH_jpp.json entries).
type Snapshot struct {
	Version int    `json:"version"`
	Bench   string `json:"bench"`
	Scheme  string `json:"scheme"`
	Idiom   string `json:"idiom"`
	// Engine names the attached prefetch engine from the registry
	// ("" when the run attached none — software-only and baseline
	// schemes, and every perfect-memory run).
	Engine string `json:"engine,omitempty"`
	// PerfectMem marks a run under idealized single-cycle data memory
	// (the compute pass of the decomposition method).  Such runs bypass
	// the prefetch tracker, so the per-source issue identity does not
	// apply to them.
	PerfectMem bool   `json:"perfect_mem,omitempty"`
	Size       string `json:"size"`

	Cycles    uint64  `json:"cycles"`
	Insts     uint64  `json:"instructions"`
	IPC       float64 `json:"ipc"`
	Truncated bool    `json:"truncated,omitempty"`

	// Sampled marks a sampled-simulation run: Cycles is an
	// extrapolation (see Sampling for error bars), cycle attribution
	// and prefetch counters cover only the detailed spans, and the
	// accounting identities below are gated accordingly.  Sampled
	// snapshots are approximations and must never be compared against
	// or admitted alongside full-fidelity results.
	Sampled  bool            `json:"sampled,omitempty"`
	Sampling *SamplingReport `json:"sampling,omitempty"`

	CyclesByCategory CycleBreakdown `json:"cycles_by_category"`
	Prefetch         PrefetchReport `json:"prefetch"`
	Cache            CacheReport    `json:"cache"`
	// Replay reports the front-end block-replay cache's behaviour; nil
	// when replay was disabled for the run.
	Replay *ReplayReport `json:"replay,omitempty"`
}

// Validate checks the snapshot's internal invariants: the schema
// version, the two accounting identities, metric consistency with the
// raw counters, and metric ranges.
func (s Snapshot) Validate() error {
	if s.Version != SchemaVersion {
		return fmt.Errorf("stats: snapshot version %d, want %d", s.Version, SchemaVersion)
	}
	// A sampled run's attribution covers only the detailed spans while
	// Cycles includes the extrapolated fast-forward share, so the
	// equality holds only for full-fidelity runs.
	if !s.Sampled {
		if got := s.CyclesByCategory.Total(); got != s.Cycles {
			return fmt.Errorf("stats: cycle categories sum to %d, want Cycles=%d", got, s.Cycles)
		}
	} else {
		if s.Sampling == nil {
			return fmt.Errorf("stats: sampled snapshot without a sampling report")
		}
		if got := s.CyclesByCategory.Total(); got > s.Cycles {
			return fmt.Errorf("stats: sampled cycle categories sum to %d, beyond Cycles=%d", got, s.Cycles)
		}
		if s.Sampling.CyclesLo > s.Cycles || s.Sampling.CyclesHi < s.Cycles {
			return fmt.Errorf("stats: sampled confidence interval [%d, %d] excludes Cycles=%d",
				s.Sampling.CyclesLo, s.Sampling.CyclesHi, s.Cycles)
		}
	}
	if got := s.Prefetch.OutcomeTotal(); got != s.Prefetch.Issued {
		return fmt.Errorf("stats: prefetch outcomes sum to %d, want Issued=%d", got, s.Prefetch.Issued)
	}
	// Per-source decomposition of the tracker's choke-point count: every
	// tracked prefetch was either a committed software prefetch or an
	// engine cache request.  Truncated runs commit fewer software
	// prefetches than they issue to the cache, and perfect-memory runs
	// bypass the tracker entirely, so the identity is gated to complete
	// realistic runs.  Sampled runs commit software prefetches during
	// fast-forward that never reach the hierarchy, breaking it too.
	if !s.Truncated && !s.PerfectMem && !s.Sampled {
		if got := s.Prefetch.SWIssued + s.Prefetch.EngineIssued; got != s.Prefetch.Issued {
			return fmt.Errorf("stats: per-source issues sum to %d (sw %d + engine %d), want Issued=%d",
				got, s.Prefetch.SWIssued, s.Prefetch.EngineIssued, s.Prefetch.Issued)
		}
	}
	if want := s.Prefetch.PrefetchStats.Metrics(); s.Prefetch.Derived != want {
		return fmt.Errorf("stats: derived metrics %+v inconsistent with counters (want %+v)",
			s.Prefetch.Derived, want)
	}
	for _, m := range []struct {
		name string
		v    float64
	}{
		{"coverage", s.Prefetch.Derived.Coverage},
		{"accuracy", s.Prefetch.Derived.Accuracy},
		{"timeliness", s.Prefetch.Derived.Timeliness},
	} {
		if m.v < 0 || m.v > 1 {
			return fmt.Errorf("stats: %s = %g out of [0,1]", m.name, m.v)
		}
	}
	if r := s.Replay; r != nil {
		if r.HitRate < 0 || r.HitRate > 1 {
			return fmt.Errorf("stats: replay hit rate %g out of [0,1]", r.HitRate)
		}
		if r.ReplayedInsts > 0 && r.BlocksCaptured == 0 {
			return fmt.Errorf("stats: %d replayed instructions with no captured blocks", r.ReplayedInsts)
		}
	}
	if s.Cycles > 0 {
		want := float64(s.Insts) / float64(s.Cycles)
		if diff := s.IPC - want; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("stats: ipc %g inconsistent with insts/cycles = %g", s.IPC, want)
		}
	}
	return nil
}

// ParseSnapshots decodes data as a single Snapshot object, an array of
// them, or a wrapper object with a "snapshots" array (all three shapes
// appear in the wild: jppsim emits one object, BENCH_jpp.json wraps a
// list alongside its speedup summary).
func ParseSnapshots(data []byte) ([]Snapshot, error) {
	var list []Snapshot
	if err := json.Unmarshal(data, &list); err == nil {
		return list, nil
	}
	var wrapped struct {
		Snapshots []Snapshot `json:"snapshots"`
	}
	if err := json.Unmarshal(data, &wrapped); err == nil && len(wrapped.Snapshots) > 0 {
		return wrapped.Snapshots, nil
	}
	var one Snapshot
	if err := json.Unmarshal(data, &one); err != nil {
		return nil, fmt.Errorf("stats: data is neither a snapshot nor a snapshot array: %w", err)
	}
	return []Snapshot{one}, nil
}
