// Package core implements the paper's primary contribution: the
// jump-pointer prefetching (JPP) framework.
//
// The framework combines two building blocks — jump-pointer prefetches
// and chained prefetches — into four idioms (queue, full, chain and
// root jumping, paper §2.2) and three implementations (software,
// cooperative and hardware, §3):
//
//   - software: workload kernels emit jump-pointer creation code (the
//     queue method, via SWJumpQueue), jump-pointer prefetches and
//     software chained prefetches;
//   - cooperative: kernels emit only streamlined jump-pointer
//     prefetches (single non-binding loads flagged ir.FJumpChase); the
//     DBP hardware chains from them;
//   - hardware: no kernel changes; the HWEngine in this package
//     implements the queue method in the Jump Queue Table (JQT), stores
//     jump-pointers in allocator padding, retrieves them through the
//     Jump-pointer Register (JPR) on recurrent-load issue, and lets the
//     DBP machinery chain-prefetch the "ribs".
package core

import "fmt"

// Idiom selects a jump-pointer prefetching idiom (paper §2.2).
type Idiom uint8

// Idioms.
const (
	// IdiomNone applies no prefetching transformation.
	IdiomNone Idiom = iota
	// IdiomQueue prefetches a backbone-only structure through
	// jump-pointers installed with the queue method.
	IdiomQueue
	// IdiomFull fits every node with jump-pointers to a future node and
	// to that node's rib(s); all prefetches are jump-pointer prefetches.
	IdiomFull
	// IdiomChain keeps only the backbone jump-pointer and reaches ribs
	// with chained prefetches through it.
	IdiomChain
	// IdiomRoot prefetches an entire small structure in chained fashion
	// from a single jump-pointer to its root.
	IdiomRoot
)

func (i Idiom) String() string {
	switch i {
	case IdiomNone:
		return "none"
	case IdiomQueue:
		return "queue"
	case IdiomFull:
		return "full"
	case IdiomChain:
		return "chain"
	case IdiomRoot:
		return "root"
	}
	return fmt.Sprintf("idiom(%d)", uint8(i))
}

// Scheme selects a prefetching implementation (paper §3).
type Scheme uint8

// Schemes.
const (
	// SchemeNone is the unoptimized baseline.
	SchemeNone Scheme = iota
	// SchemeDBP is dependence-based prefetching, the paper's hardware
	// baseline without jump-pointers.
	SchemeDBP
	// SchemeSoftware implements the selected idiom entirely in software.
	SchemeSoftware
	// SchemeCooperative does jump-pointer prefetching in software and
	// chained prefetching in hardware.
	SchemeCooperative
	// SchemeHardware implements chain jumping entirely in hardware
	// (JQT + JPR + padding storage + DBP chaining).
	SchemeHardware
)

func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "none"
	case SchemeDBP:
		return "dbp"
	case SchemeSoftware:
		return "sw"
	case SchemeCooperative:
		return "coop"
	case SchemeHardware:
		return "hw"
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// UsesSoftwareIdiom reports whether kernels must emit idiom code for s.
func (s Scheme) UsesSoftwareIdiom() bool {
	return s == SchemeSoftware || s == SchemeCooperative
}

// UsesHardware reports whether a prefetch engine must be attached.
func (s Scheme) UsesHardware() bool {
	return s == SchemeDBP || s == SchemeCooperative || s == SchemeHardware
}

// Schemes lists all schemes in presentation order.
func Schemes() []Scheme {
	return []Scheme{SchemeNone, SchemeDBP, SchemeSoftware, SchemeCooperative, SchemeHardware}
}

// DefaultInterval is the jump-pointer queue interval used throughout
// the paper's evaluation (8 nodes).
const DefaultInterval = 8
