package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/dbp"
	"repro/internal/heap"
	"repro/internal/ir"
	"repro/internal/mem"
)

func TestJQTQueueMethod(t *testing.T) {
	q := NewJQT(32, 4)
	const pc = 0x400100
	// The first `interval` visits prime the queue without producing
	// homes.
	for i := 0; i < 4; i++ {
		if _, ok := q.Visit(pc, uint32(0x1000+i*16)); ok {
			t.Fatalf("visit %d produced a home before the queue filled", i)
		}
	}
	// From then on, the home is the address from `interval` visits ago.
	for i := 4; i < 12; i++ {
		home, ok := q.Visit(pc, uint32(0x1000+i*16))
		if !ok {
			t.Fatalf("visit %d produced no home", i)
		}
		want := uint32(0x1000 + (i-4)*16)
		if home != want {
			t.Fatalf("visit %d: home %#x, want %#x", i, home, want)
		}
	}
}

func TestJQTSeparateQueuesPerPC(t *testing.T) {
	q := NewJQT(32, 2)
	q.Visit(0x400100, 0x1000)
	q.Visit(0x400200, 0x2000)
	q.Visit(0x400100, 0x1010)
	q.Visit(0x400200, 0x2010)
	home, ok := q.Visit(0x400100, 0x1020)
	if !ok || home != 0x1000 {
		t.Fatalf("pc1 home = %#x, %v", home, ok)
	}
	home, ok = q.Visit(0x400200, 0x2020)
	if !ok || home != 0x2000 {
		t.Fatalf("pc2 home = %#x, %v", home, ok)
	}
}

func TestJQTEvictionLRU(t *testing.T) {
	q := NewJQT(2, 2)
	q.Visit(0x100, 1)
	q.Visit(0x200, 2)
	q.Visit(0x100, 3) // refresh 0x100
	q.Visit(0x300, 4) // evicts 0x200
	_, _, ev := q.Stats()
	if ev != 1 {
		t.Fatalf("evictions = %d", ev)
	}
	// 0x100 kept its state: its queue is primed, so a visit produces
	// the home from `interval` visits ago.
	if home, ok := q.Visit(0x100, 6); !ok || home != 1 {
		t.Fatalf("surviving entry: home=%d ok=%v", home, ok)
	}
	// 0x200 lost its queue: a fresh visit must not produce a home (it
	// re-allocates, evicting another victim).
	if _, ok := q.Visit(0x200, 5); ok {
		t.Fatal("evicted entry retained state")
	}
}

func TestJQTQueueMethodProperty(t *testing.T) {
	// For any visit sequence, a produced home is always the address
	// visited exactly `interval` visits earlier for that PC.
	f := func(addrs []uint32, interval uint8) bool {
		iv := int(interval)%8 + 1
		q := NewJQT(4, iv)
		var hist []uint32
		for _, a := range addrs {
			home, ok := q.Visit(0x400100, a)
			if ok {
				if len(hist) < iv || home != hist[len(hist)-iv] {
					return false
				}
			} else if len(hist) >= iv {
				return false
			}
			hist = append(hist, a)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSWJumpQueueEmitsCreationCode(t *testing.T) {
	alloc := heap.New(mem.NewImage())
	var nodes []ir.Val
	g := ir.NewGen(alloc, func(a *ir.Asm) {
		for i := 0; i < 12; i++ {
			nodes = append(nodes, a.Malloc(12))
		}
		q := NewSWJumpQueue(a, 200, 0, 4, 12)
		for _, n := range nodes {
			q.Visit(n)
		}
	})
	for d := g.Next(); d != nil; d = g.Next() {
	}
	img := alloc.Image()
	// Node i's jump slot must point to node i+4.
	for i := 0; i+4 < 12; i++ {
		got := img.ReadWord(nodes[i].U32() + 12)
		if got != nodes[i+4].U32() {
			t.Fatalf("node %d jump = %#x, want %#x", i, got, nodes[i+4].U32())
		}
	}
	// The last `interval` nodes have no jump pointer yet.
	if img.ReadWord(nodes[11].U32()+12) != 0 {
		t.Fatal("tail node has a jump pointer")
	}
	// Creation code is tagged overhead.
	if g.Stats().OvhdInsts == 0 {
		t.Fatal("creation code not tagged as overhead")
	}
}

func TestSWJumpQueueExtras(t *testing.T) {
	alloc := heap.New(mem.NewImage())
	var nodes []ir.Val
	g := ir.NewGen(alloc, func(a *ir.Asm) {
		for i := 0; i < 6; i++ {
			nodes = append(nodes, a.Malloc(20))
		}
		q := NewSWJumpQueue(a, 200, 0, 2, 12)
		for i, n := range nodes {
			rib := ir.Imm(uint32(0xAA00 + i))
			q.Visit(n, FieldStore{Off: 16, Val: rib})
		}
	})
	for d := g.Next(); d != nil; d = g.Next() {
	}
	img := alloc.Image()
	// Full jumping: home i gets target's rib value (0xAA00 + i+2).
	if got := img.ReadWord(nodes[0].U32() + 16); got != 0xAA02 {
		t.Fatalf("rib jump = %#x, want 0xAA02", got)
	}
}

// TestSWJumpQueueExtrasDistinctPCs is the regression test for the
// extra-field site aliasing bug: Visit used to emit every extra
// FieldStore at the same static site (s+6), merging distinct store
// sites into one PC and corrupting per-PC predictor training and site
// accounting.  With >= 2 extras, each store offset must have its own
// static PC, and the values must still land correctly.
func TestSWJumpQueueExtrasDistinctPCs(t *testing.T) {
	alloc := heap.New(mem.NewImage())
	var nodes []ir.Val
	const siteBase = 200
	g := ir.NewGen(alloc, func(a *ir.Asm) {
		for i := 0; i < 6; i++ {
			nodes = append(nodes, a.Malloc(24))
		}
		q := NewSWJumpQueue(a, siteBase, 0, 2, 12)
		for i, n := range nodes {
			q.Visit(n,
				FieldStore{Off: 16, Val: ir.Imm(uint32(0xAA00 + i))},
				FieldStore{Off: 20, Val: ir.Imm(uint32(0xBB00 + i))})
		}
	})
	isNode := func(base uint32) bool {
		for _, n := range nodes {
			if n.U32() == base {
				return true
			}
		}
		return false
	}
	// Collect the static PC of each home-relative store offset.
	pcs := map[uint32]map[uint32]bool{} // offset -> set of PCs
	for d := g.Next(); d != nil; d = g.Next() {
		if d.Class != ir.Store || !isNode(d.BaseValue) {
			continue
		}
		off := d.Addr - d.BaseValue
		if pcs[off] == nil {
			pcs[off] = map[uint32]bool{}
		}
		pcs[off][d.PC] = true
	}
	want := map[uint32]uint32{
		12: ir.SitePC(siteBase + 5), // jump pointer
		16: ir.SitePC(siteBase + 7), // extra 0
		20: ir.SitePC(siteBase + 8), // extra 1
	}
	for off, pc := range want {
		got := pcs[off]
		if len(got) != 1 || !got[pc] {
			t.Errorf("stores at offset %d use PCs %v, want exactly %#x", off, got, pc)
		}
	}
	// Distinct offsets must never share a PC (the pre-fix failure mode:
	// offsets 16 and 20 both at site s+6).
	seen := map[uint32]uint32{}
	for off, set := range pcs {
		for pc := range set {
			if prev, dup := seen[pc]; dup {
				t.Errorf("offsets %d and %d share static PC %#x", prev, off, pc)
			}
			seen[pc] = off
		}
	}
	// Values still land: home 0's extras carry node 2's rib values.
	img := alloc.Image()
	if got := img.ReadWord(nodes[0].U32() + 16); got != 0xAA02 {
		t.Errorf("extra 0 value = %#x, want 0xAA02", got)
	}
	if got := img.ReadWord(nodes[0].U32() + 20); got != 0xBB02 {
		t.Errorf("extra 1 value = %#x, want 0xBB02", got)
	}
}

func TestSWJumpQueueSitesFor(t *testing.T) {
	for _, c := range []struct{ extras, want int }{
		{0, SWJumpQueueSites}, {1, SWJumpQueueSites}, {2, 9}, {6, 13},
	} {
		if got := SWJumpQueueSitesFor(c.extras); got != c.want {
			t.Errorf("SWJumpQueueSitesFor(%d) = %d, want %d", c.extras, got, c.want)
		}
	}
}

// buildHWRig wires a hardware engine over a synthetic list.
func buildHWRig(t *testing.T, n int) (*HWEngine, *heap.Allocator, []uint32) {
	t.Helper()
	img := mem.NewImage()
	alloc := heap.New(img)
	p := cache.Defaults()
	p.EnablePB = true
	hier := cache.New(p)
	eng := NewHWEngine(dbp.Defaults(), DefaultHWConfig(), hier, alloc)
	nodes := make([]uint32, n)
	for i := range nodes {
		nodes[i] = alloc.Alloc(12)
	}
	for i := 0; i+1 < n; i++ {
		img.WriteWord(nodes[i]+4, nodes[i+1])
	}
	return eng, alloc, nodes
}

func commitNext(eng *HWEngine, now uint64, pc, base uint32) {
	eng.OnCommit(now, &ir.DynInst{
		PC: pc, Class: ir.Load, Addr: base + 4,
		BaseValue: base, Value: eng.Image().ReadWord(base + 4),
		Flags: ir.FLDS,
	})
}

func TestHWRecurrenceDetection(t *testing.T) {
	eng, _, nodes := buildHWRig(t, 20)
	const pc = 0x400100
	for i := 0; i < 10; i++ {
		commitNext(eng, uint64(i), pc, nodes[i])
	}
	if !eng.IsRecurrent(pc) {
		t.Fatal("self-recurrent load not detected")
	}
}

func TestHWJumpPointerCreationInPadding(t *testing.T) {
	eng, alloc, nodes := buildHWRig(t, 32)
	const pc = 0x400100
	// Make home lines L1-resident so best-effort stores proceed.
	hier := eng.hier
	for i := range nodes {
		hier.AccessData(uint64(i), nodes[i], cache.KLoad)
	}
	for i := 0; i < 32; i++ {
		commitNext(eng, uint64(1000+i), pc, nodes[i])
	}
	// After interval (8) + warmup visits, node j holds a jump pointer
	// to node j+8 in its padding slot.
	pad, ok := alloc.PaddingAddr(nodes[2])
	if !ok {
		t.Fatal("node has no padding")
	}
	got := eng.Image().ReadWord(pad)
	if got != nodes[10] {
		t.Fatalf("jump pointer at node 2 = %#x, want node 10 (%#x)", got, nodes[10])
	}
	if s := eng.HWStats(); s.JPStores == 0 {
		t.Fatalf("no JP stores recorded: %+v", s)
	}
}

func TestHWLaunchOnIssue(t *testing.T) {
	eng, _, nodes := buildHWRig(t, 32)
	const pc = 0x400100
	hier := eng.hier
	for i := range nodes {
		hier.AccessData(uint64(i), nodes[i], cache.KLoad)
	}
	for i := 0; i < 32; i++ {
		commitNext(eng, uint64(1000+i), pc, nodes[i])
	}
	eng.Tick(1999, 0)
	// Re-issuing the recurrent load at node 2 reads the JPR and
	// launches a prefetch of node 10.
	eng.OnLoadIssue(2000, &ir.DynInst{
		PC: pc, Class: ir.Load, Addr: nodes[2] + 4,
		BaseValue: nodes[2], Flags: ir.FLDS,
	})
	if s := eng.HWStats(); s.JPLaunches != 1 {
		t.Fatalf("JPLaunches = %d", s.JPLaunches)
	}
}

func TestHWJPRLimitOncePerCycle(t *testing.T) {
	eng, _, nodes := buildHWRig(t, 32)
	const pc = 0x400100
	hier := eng.hier
	for i := range nodes {
		hier.AccessData(uint64(i), nodes[i], cache.KLoad)
	}
	for i := 0; i < 32; i++ {
		commitNext(eng, uint64(1000+i), pc, nodes[i])
	}
	eng.Tick(1999, 0)
	for i := 0; i < 3; i++ {
		eng.OnLoadIssue(2000, &ir.DynInst{
			PC: pc, Class: ir.Load, Addr: nodes[2+i] + 4,
			BaseValue: nodes[2+i], Flags: ir.FLDS,
		})
	}
	if s := eng.HWStats(); s.JPLaunches != 1 {
		t.Fatalf("JPR allowed %d launches in one cycle", s.JPLaunches)
	}
}

func TestHWOnChipTableStorage(t *testing.T) {
	img := mem.NewImage()
	alloc := heap.New(img)
	p := cache.Defaults()
	p.EnablePB = true
	hier := cache.New(p)
	cfg := DefaultHWConfig()
	cfg.OnChipTable = 4 // tiny: thrashes
	eng := NewHWEngine(dbp.Defaults(), cfg, hier, alloc)
	nodes := make([]uint32, 32)
	for i := range nodes {
		nodes[i] = alloc.Alloc(12)
	}
	for i := 0; i+1 < 32; i++ {
		img.WriteWord(nodes[i]+4, nodes[i+1])
	}
	const pc = 0x400100
	for i := 0; i < 32; i++ {
		commitNext(eng, uint64(i), pc, nodes[i])
	}
	// Padding must be untouched (pointers live on chip).
	pad, _ := alloc.PaddingAddr(nodes[2])
	if img.ReadWord(pad) != 0 {
		t.Fatal("on-chip mode wrote to padding")
	}
	// With 4 entries and 24 installs, early entries must be gone.
	eng.Tick(999, 0)
	eng.OnLoadIssue(1000, &ir.DynInst{
		PC: pc, Class: ir.Load, Addr: nodes[2] + 4,
		BaseValue: nodes[2], Flags: ir.FLDS,
	})
	if s := eng.HWStats(); s.JPLaunches != 0 {
		t.Fatal("evicted on-chip jump pointer still launched")
	}
}

func TestSchemeAndIdiomStrings(t *testing.T) {
	if SchemeCooperative.String() != "coop" || IdiomChain.String() != "chain" {
		t.Fatal("string forms changed")
	}
	if !SchemeCooperative.UsesSoftwareIdiom() || SchemeHardware.UsesSoftwareIdiom() {
		t.Fatal("UsesSoftwareIdiom wrong")
	}
	if !SchemeHardware.UsesHardware() || SchemeSoftware.UsesHardware() {
		t.Fatal("UsesHardware wrong")
	}
	if len(Schemes()) != 5 {
		t.Fatal("scheme list wrong")
	}
}

func TestJQTSetIntervalFlushes(t *testing.T) {
	q := NewJQT(4, 4)
	for i := 0; i < 4; i++ {
		q.Visit(0x400100, uint32(0x1000+i*16))
	}
	q.SetInterval(2)
	if q.Interval() != 2 {
		t.Fatalf("interval = %d", q.Interval())
	}
	// Old queue state is gone: two visits prime the new interval, the
	// third produces the address from two visits ago.
	if _, ok := q.Visit(0x400100, 0x2000); ok {
		t.Fatal("flushed queue produced a home")
	}
	q.Visit(0x400100, 0x2010)
	home, ok := q.Visit(0x400100, 0x2020)
	if !ok || home != 0x2000 {
		t.Fatalf("home = %#x, %v", home, ok)
	}
	// Out-of-range requests are ignored.
	q.SetInterval(0)
	q.SetInterval(MaxInterval + 1)
	if q.Interval() != 2 {
		t.Fatal("invalid SetInterval applied")
	}
}

func TestAdaptiveIntervalWidensUnderLateness(t *testing.T) {
	img := mem.NewImage()
	alloc := heap.New(img)
	p := cache.Defaults()
	p.EnablePB = true
	hier := cache.New(p)
	cfg := DefaultHWConfig()
	cfg.AdaptiveInterval = true
	cfg.Interval = 2
	eng := NewHWEngine(dbp.Defaults(), cfg, hier, alloc)

	// Manufacture lateness: prefetch lines, then demand them while the
	// fills are still in flight, so PBHitWaitSum grows.
	base := alloc.Alloc(1 << 16)
	for i := 0; i < 100; i++ {
		addr := base + uint32(i*4096)
		hier.AccessData(uint64(i), addr, cache.KPref)
		hier.AccessData(uint64(i)+1, addr, cache.KLoad) // waits on the fill
	}
	// Feed enough committed loads to cross the adaptation period.
	nodes := make([]uint32, 64)
	for i := range nodes {
		nodes[i] = alloc.Alloc(12)
	}
	for i := 0; i+1 < len(nodes); i++ {
		img.WriteWord(nodes[i]+4, nodes[i+1])
	}
	for c := uint64(0); c < adaptPeriod+1; c++ {
		n := nodes[int(c)%63]
		eng.OnCommit(c, &ir.DynInst{
			PC: 0x400100, Class: ir.Load, Addr: n + 4,
			BaseValue: n, Value: img.ReadWord(n + 4), Flags: ir.FLDS,
		})
	}
	if eng.CurrentInterval() <= 2 {
		t.Fatalf("interval did not widen under late prefetches: %d", eng.CurrentInterval())
	}
	if eng.IntervalMoves() == 0 {
		t.Fatal("no adaptation steps recorded")
	}
}
