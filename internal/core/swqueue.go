package core

import "repro/internal/ir"

// FieldStore names an extra jump-pointer field stored at creation time
// (full jumping installs a rib pointer next to the backbone pointer).
type FieldStore struct {
	// Off is the field offset within the home node.
	Off uint32
	// Val is the pointer value to store.
	Val ir.Val
}

// SWJumpQueue emits the software jump-pointer creation code of the
// queue method (paper §2.1, Figure 2(b)).  A circular queue of the last
// `interval` node addresses lives in the simulated global data area; on
// each Visit the node that entered the queue `interval` visits ago
// becomes the home of a jump-pointer to the current node.
//
// All instructions emitted by Visit are tagged as overhead, so the
// costs table and Figure 6 normalization see them as prefetching code,
// and they are exactly the instructions responsible for the "a priori
// slowdown" the paper measures for software creation (§4.2).
type SWJumpQueue struct {
	a        *ir.Asm
	siteBase int
	qaddr    uint32
	interval int
	jumpOff  uint32
	pos      int
}

// SWJumpQueueSites is the number of static instruction sites a
// SWJumpQueue consumes starting at its site base when Visit is called
// with at most one extra FieldStore (the common case: site layout is
// s+0..s+5 for the queue operations, s+6 for Reset's clearing store,
// and s+7 for the single extra).
const SWJumpQueueSites = 8

// SWJumpQueueSitesFor is the number of static sites a queue consumes
// when Visit passes up to maxExtras extra FieldStores.  Each extra
// occupies its own site (distinct static PC) so per-PC predictor
// training and site accounting see each installed field separately.
func SWJumpQueueSitesFor(maxExtras int) int {
	if maxExtras <= 1 {
		return SWJumpQueueSites
	}
	return 7 + maxExtras
}

// NewSWJumpQueue builds a creation queue.
//
//	a         - the kernel's assembler
//	siteBase  - first of SWJumpQueueSites static sites reserved for it
//	globalOff - offset of its queue array in the global data area
//	            (interval words)
//	interval  - jump-pointer distance in nodes
//	jumpOff   - offset of the jump-pointer field within home nodes
func NewSWJumpQueue(a *ir.Asm, siteBase int, globalOff uint32, interval int, jumpOff uint32) *SWJumpQueue {
	return &SWJumpQueue{
		a:        a,
		siteBase: siteBase,
		qaddr:    ir.GlobalBase + globalOff,
		interval: interval,
		jumpOff:  jumpOff,
	}
}

// Interval returns the queue's jump-pointer distance.
func (q *SWJumpQueue) Interval() int { return q.interval }

// Visit installs cur into the queue and, once the queue is primed,
// stores a jump-pointer to cur (plus any extra fields) into the node
// visited `interval` visits ago.
func (q *SWJumpQueue) Visit(cur ir.Val, extras ...FieldStore) {
	q.a.Overhead(func() {
		s := q.siteBase
		slot := ir.Imm(q.qaddr + uint32(q.pos)*4)
		// home = queue[pos]; queue[pos] = cur
		home := q.a.Load(s, slot, 0, 0)
		q.a.Store(s+1, slot, 0, cur)
		// pos = (pos + 1) % interval : add + compare/branch
		idx := q.a.AddImm(s+2, ir.Imm(uint32(q.pos)), 1)
		wrap := q.pos+1 == q.interval
		q.a.Branch(s+3, wrap, s, idx, ir.Imm(uint32(q.interval)))
		// if (home) home->jump = cur
		q.a.Branch(s+4, home.IsNil(), s+6, home, ir.Val{})
		if !home.IsNil() {
			q.a.Store(s+5, home, q.jumpOff, cur)
			// Each extra field gets its own static site: aliasing
			// them to one PC would merge distinct store sites in
			// per-PC predictor training and site accounting.
			for i, x := range extras {
				q.a.Store(s+7+i, home, x.Off, x.Val)
			}
		}
	})
	q.pos++
	if q.pos == q.interval {
		q.pos = 0
	}
}

// Reset clears the queue between traversals of different structures so
// jump-pointers never cross structure boundaries.  It emits the loop
// that zeroes the queue array.
func (q *SWJumpQueue) Reset() {
	q.a.Overhead(func() {
		s := q.siteBase
		for i := 0; i < q.interval; i++ {
			q.a.Store(s+6, ir.Imm(q.qaddr+uint32(i)*4), 0, ir.Val{})
		}
	})
	q.pos = 0
}
