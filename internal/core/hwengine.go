package core

import (
	"repro/internal/cache"
	"repro/internal/dbp"
	"repro/internal/heap"
	"repro/internal/ir"
)

// HWConfig sizes the hardware JPP mechanism (Table 2: 32-entry fully
// associative JQT with 8-address queues, one JPR access per cycle).
type HWConfig struct {
	JQTEntries int
	Interval   int
	// AdaptiveInterval enables the paper's future-work refinement
	// (section 6): the JQT interval adjusts itself from observed
	// prefetch timeliness — widened when prefetched lines arrive after
	// their demand, narrowed when jump-pointer targets go stale.
	AdaptiveInterval bool
	// OnChipTable, when positive, stores jump-pointers in an on-chip
	// table of that many entries instead of allocator padding.  The
	// paper's §3.3 discusses (and dismisses) this alternative; the
	// ablation benchmarks exercise it.
	OnChipTable int
}

// DefaultHWConfig returns Table 2's hardware JPP parameters.
func DefaultHWConfig() HWConfig {
	return HWConfig{JQTEntries: 32, Interval: DefaultInterval}
}

// HWStats counts hardware JPP activity.
type HWStats struct {
	RecurrentPCs int
	JPStores     uint64
	JPStoreDrops uint64
	JPLaunches   uint64
	NoPadding    uint64
	StaleTargets uint64
}

// HWEngine is the hardware-only JPP implementation: the DBP machinery
// extended with jump-pointer creation (JQT) and retrieval (JPR).  It
// implements chain jumping — jump-pointer prefetches for recurrent
// "backbone" loads, chained prefetches for "rib" loads — degenerating
// naturally to queue jumping on backbone-only structures (paper §3.3).
type HWEngine struct {
	*dbp.Engine

	cfg   HWConfig
	hier  *cache.Hierarchy
	alloc *heap.Allocator

	jqt       *JQT
	recurrent map[uint32]bool
	// onChip holds jump-pointers when OnChipTable is configured;
	// keyed by home-node address with FIFO-ish capacity eviction.
	onChip     map[uint32]uint32
	onChipRing []uint32
	onChipPos  int

	// lastJPR enforces the single JPR access per cycle.
	lastJPR uint64
	jprUsed bool

	// Adaptive-interval observation state.
	adaptCommits  uint64
	lastWaitSum   uint64
	lastPBHits    uint64
	lastStale     uint64
	lastLaunches  uint64
	intervalMoves int

	s HWStats
}

// NewHWEngine builds the hardware JPP engine on top of a DBP core.
func NewHWEngine(dcfg dbp.Config, hcfg HWConfig, hier *cache.Hierarchy, alloc *heap.Allocator) *HWEngine {
	h := &HWEngine{
		Engine:    dbp.NewEngine(dcfg, hier, alloc),
		cfg:       hcfg,
		hier:      hier,
		alloc:     alloc,
		jqt:       NewJQT(hcfg.JQTEntries, hcfg.Interval),
		recurrent: make(map[uint32]bool),
	}
	if hcfg.OnChipTable > 0 {
		h.onChip = make(map[uint32]uint32, hcfg.OnChipTable)
		h.onChipRing = make([]uint32, hcfg.OnChipTable)
	}
	return h
}

// HWStats returns hardware-specific counters.
func (h *HWEngine) HWStats() HWStats {
	s := h.s
	s.RecurrentPCs = len(h.recurrent)
	return s
}

// JQTState exposes the jump queue table for tests.
func (h *HWEngine) JQTState() *JQT { return h.jqt }

// IsRecurrent reports whether the load at pc has been identified as a
// recurrent ("backbone") load.
func (h *HWEngine) IsRecurrent(pc uint32) bool { return h.recurrent[pc] }

// storeJP installs a jump-pointer home -> target.
func (h *HWEngine) storeJP(now uint64, home, target uint32) {
	if h.onChip != nil {
		if _, exists := h.onChip[home]; !exists {
			old := h.onChipRing[h.onChipPos]
			if old != 0 {
				delete(h.onChip, old)
			}
			h.onChipRing[h.onChipPos] = home
			h.onChipPos = (h.onChipPos + 1) % len(h.onChipRing)
		}
		h.onChip[home] = target
		h.s.JPStores++
		return
	}
	pad, ok := h.alloc.PaddingAddr(home)
	if !ok {
		h.s.NoPadding++
		return
	}
	// Best effort: jump-pointers are hints, so a store to a home node
	// whose line has already left the L1 is dropped rather than paying
	// a write-allocate fetch of the whole line.
	if !h.hier.PresentL1(pad) {
		h.s.JPStoreDrops++
		return
	}
	h.Image().WriteWord(pad, target)
	// The annotated load computed the padding address alongside its own
	// effective address (section 3.3), so the store merges into the
	// resident block for free; its cost is the line's eventual
	// writeback.
	h.hier.DirtyL1(pad)
	h.s.JPStores++
}

// loadJP retrieves the jump-pointer stored at home, if any.  With
// padding storage the word shares the home node's cache block (the
// paper's locality argument), so no extra access is charged.
func (h *HWEngine) loadJP(home uint32) (uint32, bool) {
	if h.onChip != nil {
		t, ok := h.onChip[home]
		return t, ok
	}
	pad, ok := h.alloc.PaddingAddr(home)
	if !ok {
		return 0, false
	}
	t := h.Image().ReadWord(pad)
	return t, t != 0
}

// adaptPeriod is how many committed loads pass between interval
// adaptation decisions.
const adaptPeriod = 8192

// adapt implements the future-work interval controller: when useful
// prefetches still arrive late, the interval doubles (more latency to
// hide than the current distance covers); when jump-pointer targets go
// stale faster than they are used, it halves.
func (h *HWEngine) adapt() {
	st := h.hier.Stats()
	dWait := st.PBHitWaitSum - h.lastWaitSum
	dHits := st.PBHits - h.lastPBHits
	dStale := h.s.StaleTargets - h.lastStale
	dLaunch := h.s.JPLaunches - h.lastLaunches
	h.lastWaitSum, h.lastPBHits = st.PBHitWaitSum, st.PBHits
	h.lastStale, h.lastLaunches = h.s.StaleTargets, h.s.JPLaunches

	iv := h.jqt.Interval()
	switch {
	case dHits > 64 && dWait/(dHits+1) > 8 && iv*2 <= MaxInterval:
		h.jqt.SetInterval(iv * 2)
		h.intervalMoves++
	case dLaunch > 64 && dStale*4 > dLaunch && iv > 2:
		h.jqt.SetInterval(iv / 2)
		h.intervalMoves++
	}
}

// IntervalMoves reports how many adaptation steps have fired.
func (h *HWEngine) IntervalMoves() int { return h.intervalMoves }

// CurrentInterval reports the (possibly adapted) JQT interval.
func (h *HWEngine) CurrentInterval() int { return h.jqt.Interval() }

// OnCommit trains the DBP predictor, detects recurrent loads and runs
// jump-pointer creation through the JQT.
func (h *HWEngine) OnCommit(now uint64, d *ir.DynInst) {
	if d.Class != ir.Load {
		return
	}
	if h.cfg.AdaptiveInterval {
		h.adaptCommits++
		if h.adaptCommits%adaptPeriod == 0 {
			h.adapt()
		}
	}
	producer, trained := h.TrainLoad(d)
	if trained {
		// A load fed by its own previous instance (l = l->next), or two
		// loads feeding each other (tree child loads), are recurrent.
		if producer == d.PC {
			h.recurrent[d.PC] = true
		} else if h.DP().HasEdge(d.PC, producer) {
			h.recurrent[d.PC] = true
			h.recurrent[producer] = true
		}
	}
	if h.recurrent[d.PC] && h.Heap().Contains(d.BaseValue) {
		if home, ok := h.jqt.Visit(d.PC, d.BaseValue); ok && h.Heap().Contains(home) {
			h.storeJP(now, home, d.BaseValue)
		}
	}
}

// NextEventAt delegates to the embedded DBP engine's queues.  The
// JQT/JPR machinery is purely reactive (it runs inside OnCommit and
// OnLoadIssue), so it never generates a timed event of its own; the
// explicit delegation records that this was considered, not forgotten.
func (h *HWEngine) NextEventAt(now uint64) uint64 {
	return h.Engine.NextEventAt(now)
}

// OnLoadIssue performs jump-pointer retrieval: when a recurrent load
// issues, the jump-pointer residing at its input node is read into the
// JPR and launches a prefetch of the target node, which the DBP
// machinery then expands with chained rib prefetches.
func (h *HWEngine) OnLoadIssue(now uint64, d *ir.DynInst) {
	if !h.recurrent[d.PC] || !h.Heap().Contains(d.BaseValue) {
		return
	}
	// One JPR access per cycle (Table 2).
	if h.jprUsed && h.lastJPR == now {
		return
	}
	target, ok := h.loadJP(d.BaseValue)
	if !ok {
		return
	}
	h.lastJPR, h.jprUsed = now, true
	if !h.Heap().Contains(target) {
		h.s.StaleTargets++
		return
	}
	h.s.JPLaunches++
	// Prefetch the target node block, and spawn speculative instances
	// of this load's known consumers with the target as their base —
	// the JPR value acting as the speculative input (Figure 3(c)).
	h.EnqueuePrefetch(target, d.PC, 0, dbp.OJump)
	h.ChaseFrom(d.PC, target, 0)
}
