package core

// MaxInterval is the largest queue interval the JQT supports per entry
// (Table 2 uses fixed 8-address queues; Figure 7 also evaluates 16).
const MaxInterval = 32

// JQT is the Jump Queue Table of the hardware JPP implementation
// (paper §3.3, Figure 3(b)): a small fully-associative table, one entry
// per active recurrent load, each holding a queue of that load's most
// recent input addresses.  When a recurrent load commits, the address
// at the head of the queue becomes the home of a jump-pointer to the
// current node.
type JQT struct {
	entries  []jqtEntry
	interval int
	tick     uint64

	visits    uint64
	installed uint64
	evictions uint64
}

type jqtEntry struct {
	pc    uint32
	ring  [MaxInterval]uint32
	pos   int
	count int
	lru   uint64
	valid bool
}

// NewJQT builds a table with n entries and the given queue interval.
func NewJQT(n, interval int) *JQT {
	if interval <= 0 || interval > MaxInterval {
		panic("jqt: interval out of range")
	}
	return &JQT{entries: make([]jqtEntry, n), interval: interval}
}

// Interval returns the configured jump-pointer distance.
func (t *JQT) Interval() int { return t.interval }

// SetInterval changes the jump-pointer distance, flushing all queues
// (their contents encode the old distance).
func (t *JQT) SetInterval(interval int) {
	if interval <= 0 || interval > MaxInterval || interval == t.interval {
		return
	}
	t.interval = interval
	for i := range t.entries {
		t.entries[i].valid = false
	}
}

// Visit records that the recurrent load at pc consumed input address
// addr.  Once the queue holds `interval` addresses, it returns the home
// node (the address queued `interval` visits ago) for jump-pointer
// installation.
func (t *JQT) Visit(pc, addr uint32) (home uint32, ok bool) {
	t.visits++
	t.tick++
	var e *jqtEntry
	victim := &t.entries[0]
	for i := range t.entries {
		c := &t.entries[i]
		if c.valid && c.pc == pc {
			e = c
			break
		}
		if !c.valid {
			victim = c
		} else if victim.valid && c.lru < victim.lru {
			victim = c
		}
	}
	if e == nil {
		if victim.valid {
			t.evictions++
		}
		*victim = jqtEntry{pc: pc, valid: true}
		e = victim
	}
	e.lru = t.tick
	if e.count < t.interval {
		e.ring[(e.pos+e.count)%t.interval] = addr
		e.count++
		return 0, false
	}
	home = e.ring[e.pos]
	e.ring[e.pos] = addr
	e.pos = (e.pos + 1) % t.interval
	t.installed++
	return home, true
}

// Stats reports table activity.
func (t *JQT) Stats() (visits, installed, evictions uint64) {
	return t.visits, t.installed, t.evictions
}
