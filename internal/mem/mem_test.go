package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := NewImage()
	m.WriteWord(0x1000, 0xdeadbeef)
	if got := m.ReadWord(0x1000); got != 0xdeadbeef {
		t.Fatalf("ReadWord = %#x, want 0xdeadbeef", got)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	m := NewImage()
	for _, a := range []Addr{0, 4, 0x1000_0000, 0xFFFF_FFFC} {
		if got := m.ReadWord(a); got != 0 {
			t.Fatalf("ReadWord(%#x) = %#x, want 0", a, got)
		}
	}
	if m.PageCount() != 0 {
		t.Fatalf("reads must not materialize pages, got %d", m.PageCount())
	}
}

func TestWordAlignment(t *testing.T) {
	m := NewImage()
	m.WriteWord(0x100, 42)
	// The low two address bits are ignored.
	for off := Addr(0); off < 4; off++ {
		if got := m.ReadWord(0x100 + off); got != 42 {
			t.Fatalf("ReadWord(0x100+%d) = %d, want 42", off, got)
		}
	}
}

func TestSparsePages(t *testing.T) {
	m := NewImage()
	m.WriteWord(0x0000_0000, 1)
	m.WriteWord(0x8000_0000, 2)
	m.WriteWord(0x8000_0004, 3)
	if got := m.PageCount(); got != 2 {
		t.Fatalf("PageCount = %d, want 2", got)
	}
	if m.FootprintBytes() != 2*pageBytes {
		t.Fatalf("FootprintBytes = %d", m.FootprintBytes())
	}
}

func TestByteAccess(t *testing.T) {
	m := NewImage()
	m.WriteWord(0x200, 0x04030201)
	for i, want := range []byte{1, 2, 3, 4} {
		if got := m.ByteAt(0x200 + Addr(i)); got != want {
			t.Fatalf("ByteAt(+%d) = %d, want %d", i, got, want)
		}
	}
	m.SetByte(0x202, 0xAA)
	if got := m.ReadWord(0x200); got != 0x04AA0201 {
		t.Fatalf("after SetByte, word = %#x", got)
	}
}

func TestWriteDistinctWordsProperty(t *testing.T) {
	// Writes to distinct word addresses never interfere.
	m := NewImage()
	written := map[Addr]uint32{}
	f := func(addr Addr, v uint32) bool {
		addr &^= 3
		m.WriteWord(addr, v)
		written[addr] = v
		for a, want := range written {
			if m.ReadWord(a) != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
