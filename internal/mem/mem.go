// Package mem provides the simulated flat memory image that workload
// kernels execute against and that hardware prefetch engines inspect.
//
// The image models a 32-bit, word-addressable address space (words are
// 4 bytes, matching the MIPS-I pointer size used by the paper's
// evaluation).  Storage is sparse: pages are allocated on first touch so
// that workloads can scatter data structures across the address space
// without committing host memory for untouched regions.
package mem

// Word and page geometry.  Pages exist purely to make the image sparse;
// they are unrelated to the simulated virtual-memory page size used by
// the TLB model (see internal/cache).
const (
	// WordBytes is the size of a simulated machine word in bytes.
	WordBytes = 4
	// pageWords is the number of words per backing page (16 KiB pages).
	pageWords = 1 << 12
	pageBytes = pageWords * WordBytes
	pageShift = 14 // log2(pageBytes)
)

// Addr is a simulated 32-bit byte address.
type Addr = uint32

// Image is a sparse simulated memory image.  The zero value is ready to
// use.  An Image is not safe for concurrent use; the generator/consumer
// handoff in internal/ir guarantees single-goroutine access.
type Image struct {
	pages map[uint32]*[pageWords]uint32
	// touched counts words written at least once, used by footprint
	// accounting in tests.
	touched int
}

// NewImage returns an empty memory image.
func NewImage() *Image {
	return &Image{pages: make(map[uint32]*[pageWords]uint32)}
}

func (m *Image) page(a Addr, create bool) *[pageWords]uint32 {
	idx := uint32(a) >> pageShift
	p := m.pages[idx]
	if p == nil && create {
		p = new([pageWords]uint32)
		m.pages[idx] = p
	}
	return p
}

// ReadWord returns the word at byte address a.  The low two address bits
// are ignored (word alignment), matching aligned MIPS loads.  Reads of
// never-written memory return zero, like freshly mapped pages.
func (m *Image) ReadWord(a Addr) uint32 {
	p := m.page(a, false)
	if p == nil {
		return 0
	}
	return p[(a%pageBytes)/WordBytes]
}

// WriteWord stores v at byte address a (word aligned).
func (m *Image) WriteWord(a Addr, v uint32) {
	p := m.page(a, true)
	p[(a%pageBytes)/WordBytes] = v
}

// ByteAt returns the byte at address a.
func (m *Image) ByteAt(a Addr) byte {
	w := m.ReadWord(a)
	shift := (a % WordBytes) * 8
	return byte(w >> shift)
}

// SetByte stores b at byte address a, preserving the other bytes of
// the containing word.
func (m *Image) SetByte(a Addr, b byte) {
	w := m.ReadWord(a)
	shift := (a % WordBytes) * 8
	w = w&^(0xff<<shift) | uint32(b)<<shift
	m.WriteWord(a, w)
}

// PageCount reports how many backing pages have been materialized.
func (m *Image) PageCount() int { return len(m.pages) }

// FootprintBytes reports the total bytes of materialized pages.  It is a
// coarse upper bound on the simulated program's data footprint.
func (m *Image) FootprintBytes() int { return len(m.pages) * pageBytes }
