// Package mem provides the simulated flat memory image that workload
// kernels execute against and that hardware prefetch engines inspect.
//
// The image models a 32-bit, word-addressable address space (words are
// 4 bytes, matching the MIPS-I pointer size used by the paper's
// evaluation).  Storage is sparse: pages are allocated on first touch so
// that workloads can scatter data structures across the address space
// without committing host memory for untouched regions.
package mem

// Word and page geometry.  Pages exist purely to make the image sparse;
// they are unrelated to the simulated virtual-memory page size used by
// the TLB model (see internal/cache).
const (
	// WordBytes is the size of a simulated machine word in bytes.
	WordBytes = 4
	// pageWords is the number of words per backing page (16 KiB pages).
	pageWords = 1 << 12
	pageBytes = pageWords * WordBytes
	pageShift = 14 // log2(pageBytes)

	// The page table is two-level: the top dirBits of an address pick a
	// directory slot, the next leafBits pick a page within that leaf
	// table.  One leaf covers 8 MiB of address space, so a workload's
	// few live regions (globals, heap, stack) materialize a handful of
	// 4 KiB leaf tables instead of the 2 MiB flat table a single-level
	// design needs — NewImage is two orders of magnitude cheaper, which
	// shows up directly in short-run simulator throughput.
	dirBits     = 9
	leafBits    = 32 - pageShift - dirBits
	numDirs     = 1 << dirBits
	leafEntries = 1 << leafBits
	dirShift    = 32 - dirBits
	leafMask    = leafEntries - 1
)

// Addr is a simulated 32-bit byte address.
type Addr = uint32

// leafTable maps one directory slot's pages to their backing storage.
type leafTable [leafEntries]*[pageWords]uint32

// Image is a sparse simulated memory image.  An Image is not safe for
// concurrent use; the generator/consumer handoff in internal/ir
// guarantees single-goroutine access.
//
// A word access is two bounds-check-free shift + load steps instead of
// a map probe, which matters because ReadWord/WriteWord sit under every
// functional instruction, every prefetch-engine pointer chase, and the
// allocator.
type Image struct {
	dir [numDirs]*leafTable
	// touched counts materialized pages, used by footprint accounting.
	touched int
}

// NewImage returns an empty memory image.
func NewImage() *Image {
	return &Image{}
}

// ReadWord returns the word at byte address a.  The low two address bits
// are ignored (word alignment), matching aligned MIPS loads.  Reads of
// never-written memory return zero, like freshly mapped pages.
func (m *Image) ReadWord(a Addr) uint32 {
	t := m.dir[a>>dirShift]
	if t == nil {
		return 0
	}
	p := t[a>>pageShift&leafMask]
	if p == nil {
		return 0
	}
	return p[(a%pageBytes)/WordBytes]
}

// WriteWord stores v at byte address a (word aligned).
func (m *Image) WriteWord(a Addr, v uint32) {
	t := m.dir[a>>dirShift]
	if t == nil {
		t = new(leafTable)
		m.dir[a>>dirShift] = t
	}
	p := t[a>>pageShift&leafMask]
	if p == nil {
		p = new([pageWords]uint32)
		t[a>>pageShift&leafMask] = p
		m.touched++
	}
	p[(a%pageBytes)/WordBytes] = v
}

// ByteAt returns the byte at address a.
func (m *Image) ByteAt(a Addr) byte {
	w := m.ReadWord(a)
	shift := (a % WordBytes) * 8
	return byte(w >> shift)
}

// SetByte stores b at byte address a, preserving the other bytes of
// the containing word.
func (m *Image) SetByte(a Addr, b byte) {
	w := m.ReadWord(a)
	shift := (a % WordBytes) * 8
	w = w&^(0xff<<shift) | uint32(b)<<shift
	m.WriteWord(a, w)
}

// PageCount reports how many backing pages have been materialized.
func (m *Image) PageCount() int { return m.touched }

// FootprintBytes reports the total bytes of materialized pages.  It is a
// coarse upper bound on the simulated program's data footprint.
func (m *Image) FootprintBytes() int { return m.touched * pageBytes }
