package cache

// TLB is a fully-associative, LRU translation lookaside buffer with
// 30-cycle hardware miss handling (Table 2).  As in SimpleScalar, a
// miss adds the handling latency to the faulting access; concurrent
// misses overlap (the hardware walker is pipelined).
type TLB struct {
	entries   []tlbEntry
	pageShift uint
	missLat   uint64
	tick      uint64

	// lastIdx caches the entry that served the previous access: page
	// locality makes consecutive accesses to the same page the common
	// case, and the fast path skips the associative scan.
	lastIdx int

	// hint is a hashed way predictor over the associative array: bucket
	// hash(vpn) remembers which entry last held a page of that hash.
	// Both fast paths verify the entry's tag before trusting it and
	// fall back to the full scan, so the predictor only accelerates —
	// hit/miss/victim behaviour is identical with it disabled.
	hint [tlbHintBuckets]uint16

	accesses uint64
	misses   uint64
}

// tlbHintBuckets sizes the way-predictor hash table (power of two,
// comfortably above the largest TLB in use).
const tlbHintBuckets = 256

func tlbHintHash(vpn uint32) uint32 {
	return (vpn * 2654435761) >> 24 & (tlbHintBuckets - 1)
}

type tlbEntry struct {
	vpn   uint32
	lru   uint64
	valid bool
}

// NewTLB returns a TLB with n entries over pages of pageBytes.
func NewTLB(n int, pageBytes int, missLat int) *TLB {
	shift := uint(0)
	for 1<<shift < pageBytes {
		shift++
	}
	return &TLB{
		entries:   make([]tlbEntry, n),
		pageShift: shift,
		missLat:   uint64(missLat),
	}
}

// find locates vpn's entry: the previous-access and way-hint fast paths
// first, then the associative scan.  It returns the entry index or -1,
// and leaves the least-recently-used victim in *victim on a miss.
func (t *TLB) find(vpn uint32, victim **tlbEntry) int {
	if last := &t.entries[t.lastIdx]; last.valid && last.vpn == vpn {
		return t.lastIdx
	}
	h := tlbHintHash(vpn)
	if hi := int(t.hint[h]); hi < len(t.entries) {
		if e := &t.entries[hi]; e.valid && e.vpn == vpn {
			t.lastIdx = hi
			return hi
		}
	}
	v := &t.entries[0]
	found := -1
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			t.lastIdx = i
			t.hint[h] = uint16(i)
			found = i
			break
		}
		if !e.valid {
			v = e
		} else if v.valid && e.lru < v.lru {
			v = e
		}
	}
	if found >= 0 {
		return found
	}
	*victim = v
	return -1
}

// install fills victim with vpn and points the way hint at it.
func (t *TLB) install(victim *tlbEntry, vpn uint32) {
	victim.valid = true
	victim.vpn = vpn
	victim.lru = t.tick
	idx := 0
	for i := range t.entries {
		if &t.entries[i] == victim {
			idx = i
			break
		}
	}
	t.hint[tlbHintHash(vpn)] = uint16(idx)
}

// Access translates addr at cycle now.  It returns the cycle at which
// the translation is available (now for a hit) and whether it missed.
// On a miss the handler is reserved and the missing page installed.
// The same-page-as-last-access case stays small enough to inline into
// the hierarchy's access path.
func (t *TLB) Access(now uint64, addr uint32) (ready uint64, miss bool) {
	t.accesses++
	t.tick++
	vpn := addr >> t.pageShift
	if last := &t.entries[t.lastIdx]; last.valid && last.vpn == vpn {
		last.lru = t.tick
		return now, false
	}
	return t.accessSlow(now, vpn)
}

func (t *TLB) accessSlow(now uint64, vpn uint32) (ready uint64, miss bool) {
	var victim *tlbEntry
	if i := t.find(vpn, &victim); i >= 0 {
		t.entries[i].lru = t.tick
		return now, false
	}
	t.misses++
	t.install(victim, vpn)
	return now + t.missLat, true
}

// Warm installs addr's translation and refreshes its recency exactly
// like Access, but charges no latency and leaves the access/miss
// counters untouched.  Sampled simulation uses it to keep TLB contents
// hot across functionally fast-forwarded spans without polluting the
// measured-interval statistics.
func (t *TLB) Warm(addr uint32) {
	t.tick++
	vpn := addr >> t.pageShift
	var victim *tlbEntry
	if i := t.find(vpn, &victim); i >= 0 {
		t.entries[i].lru = t.tick
		return
	}
	t.install(victim, vpn)
}

// Stats reports accesses and misses.
func (t *TLB) Stats() (accesses, misses uint64) { return t.accesses, t.misses }
