package cache

// TLB is a fully-associative, LRU translation lookaside buffer with
// 30-cycle hardware miss handling (Table 2).  As in SimpleScalar, a
// miss adds the handling latency to the faulting access; concurrent
// misses overlap (the hardware walker is pipelined).
type TLB struct {
	entries   []tlbEntry
	pageShift uint
	missLat   uint64
	tick      uint64

	// lastIdx caches the entry that served the previous access: page
	// locality makes consecutive accesses to the same page the common
	// case, and the fast path skips the associative scan.
	lastIdx int

	accesses uint64
	misses   uint64
}

type tlbEntry struct {
	vpn   uint32
	lru   uint64
	valid bool
}

// NewTLB returns a TLB with n entries over pages of pageBytes.
func NewTLB(n int, pageBytes int, missLat int) *TLB {
	shift := uint(0)
	for 1<<shift < pageBytes {
		shift++
	}
	return &TLB{
		entries:   make([]tlbEntry, n),
		pageShift: shift,
		missLat:   uint64(missLat),
	}
}

// Access translates addr at cycle now.  It returns the cycle at which
// the translation is available (now for a hit) and whether it missed.
// On a miss the handler is reserved and the missing page installed.
func (t *TLB) Access(now uint64, addr uint32) (ready uint64, miss bool) {
	t.accesses++
	t.tick++
	vpn := addr >> t.pageShift
	// Same page as the previous access: hit without scanning.  The LRU
	// stamp is the same one the scan below would write.
	if last := &t.entries[t.lastIdx]; last.valid && last.vpn == vpn {
		last.lru = t.tick
		return now, false
	}
	victim := &t.entries[0]
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			e.lru = t.tick
			t.lastIdx = i
			return now, false
		}
		if !e.valid {
			victim = e
		} else if victim.valid && e.lru < victim.lru {
			victim = e
		}
	}
	t.misses++
	ready = now + t.missLat
	victim.valid = true
	victim.vpn = vpn
	victim.lru = t.tick
	return ready, true
}

// Stats reports accesses and misses.
func (t *TLB) Stats() (accesses, misses uint64) { return t.accesses, t.misses }
