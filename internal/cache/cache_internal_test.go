package cache

import "testing"

func TestCacheRetainsWorkingSetBelowCapacity(t *testing.T) {
	g := Geom{SizeBytes: 512 << 10, LineBytes: 64, Assoc: 4, LatCycles: 12}
	c := newCache(g)
	// Touch 5000 lines (320KB) repeatedly; after the first sweep there
	// must be no misses.
	const n = 5000
	for i := 0; i < n; i++ {
		addr := uint32(0x1000_0000 + i*64)
		if c.lookup(addr) {
			t.Fatalf("unexpected hit on cold line %d", i)
		}
		c.fill(addr)
	}
	for sweep := 0; sweep < 3; sweep++ {
		miss := 0
		for i := 0; i < n; i++ {
			addr := uint32(0x1000_0000 + i*64)
			if !c.lookup(addr) {
				miss++
				c.fill(addr)
			}
		}
		if miss != 0 {
			t.Fatalf("sweep %d: %d misses on resident working set", sweep, miss)
		}
	}
}
