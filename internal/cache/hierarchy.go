package cache

import (
	"math/bits"

	"repro/internal/stats"
)

// Params configures the memory hierarchy.  Defaults() returns the
// paper's Table 2 machine.
type Params struct {
	L1I Geom
	L1D Geom
	L2  Geom
	// PB is the prefetch buffer geometry (used when EnablePB).
	PB       Geom
	EnablePB bool

	// MemLatency is the main-memory access latency in core cycles.
	MemLatency int
	// ChunkBytes is the width of both buses (8B in Table 2).
	ChunkBytes int
	// L1L2ChunkCycles is core cycles per chunk on the L1<->L2 bus
	// (bus clocked at 1/2 core frequency => 2).
	L1L2ChunkCycles int
	// MemChunkCycles is core cycles per chunk on the memory bus
	// (1/4 core frequency => 4).
	MemChunkCycles int

	// MSHRs is the maximum number of outstanding data misses.
	MSHRs int

	ITLBEntries   int
	DTLBEntries   int
	TLBMissCycles int
	PageBytes     int

	// PerfectData makes all data accesses single-cycle hits.  Used for
	// the paper's compute-time decomposition runs ("uniform single cycle
	// data memory access but with realistic cache bandwidth" — port
	// bandwidth limits live in the core model and remain in effect).
	PerfectData bool
}

// Defaults returns the paper's Table 2 configuration.
func Defaults() Params {
	return Params{
		L1I:             Geom{SizeBytes: 32 << 10, LineBytes: 32, Assoc: 2, LatCycles: 1},
		L1D:             Geom{SizeBytes: 64 << 10, LineBytes: 32, Assoc: 2, LatCycles: 1},
		L2:              Geom{SizeBytes: 512 << 10, LineBytes: 64, Assoc: 4, LatCycles: 12},
		PB:              Geom{SizeBytes: 2 << 10, LineBytes: 32, Assoc: 8, LatCycles: 1},
		MemLatency:      70,
		ChunkBytes:      8,
		L1L2ChunkCycles: 2,
		MemChunkCycles:  4,
		MSHRs:           8,
		ITLBEntries:     16,
		DTLBEntries:     32,
		TLBMissCycles:   30,
		PageBytes:       4096,
	}
}

// Kind classifies a data access.
type Kind uint8

// Data access kinds.
const (
	// KLoad is a demand load.
	KLoad Kind = iota
	// KStore is a demand store.
	KStore
	// KPref is a prefetch request (fills the prefetch buffer).
	KPref
	// KJPStore is a hardware jump-pointer store into allocator padding
	// (traffic attributed to prefetching).
	KJPStore
)

// Result reports the outcome of a data access.
type Result struct {
	// Done is the cycle the data is available (loads / prefetch
	// arrivals) or the access retires from the cache's perspective.
	Done uint64
	// MissL1 is true when the access missed the first-level structures
	// (L1D and prefetch buffer).
	MissL1 bool
	// MissL2 is true when the access also missed the L2.
	MissL2 bool
	// TLBMiss is true when address translation missed the DTLB.
	TLBMiss bool
	// FromPB is true when a demand access was served by the prefetch
	// buffer (a useful prefetch).
	FromPB bool
	// Dropped is true for prefetch requests that found the line already
	// present or already in flight.
	Dropped bool
}

// Stats aggregates hierarchy counters.
type Stats struct {
	L1DAccesses, L1DMisses uint64
	L1IAccesses, L1IMisses uint64
	L2Accesses, L2Misses   uint64
	DTLBMisses, ITLBMisses uint64

	// L1L2Bytes is total traffic on the L1<->L2 bus, split by cause.
	L1L2Bytes          uint64
	L1L2DemandBytes    uint64
	L1L2PrefetchBytes  uint64
	L1L2WritebackBytes uint64
	MemBytes           uint64

	PBFills uint64
	PBHits  uint64
	// PBHitWaitSum accumulates cycles demand accesses spent waiting for
	// in-flight prefetched lines (0 for fully timely prefetches).
	PBHitWaitSum uint64
	// DemandWaitSum accumulates the full wait (done - issue) of every
	// demand access, the raw material of the memory-stall story.
	DemandWaitSum uint64

	DistinctL1Lines int
}

// Hierarchy is the simulated memory system.
type Hierarchy struct {
	p Params

	l1i *cache
	l1d *cache
	l2  *cache
	pb  *cache

	itlb *TLB
	dtlb *TLB

	l1l2Bus *Bus
	memBus  *Bus

	mshr []uint64 // per-entry next-free cycle

	// inflight records L1-line fills whose data is still on its way
	// (one entry per line; see findInflight).  Tags are installed
	// eagerly at request time; inflight supplies the true data-ready
	// time and merges secondary misses.  The table is open-addressed
	// with linear probing and backward-shift deletion: lookups are a
	// probe of a few slots rather than a scan of every outstanding
	// fill, and completed entries are reclaimed by the probes that
	// step over them.
	inflight      []inflightFill
	inflightN     int
	inflightShift uint

	// distinct is a two-level bitmap over L1-line indices recording
	// every line demand accesses ever touched (the Table 1 footprint
	// metric).  Leaves allocate lazily, 4 KiB per 1 MiB of touched
	// address space.
	distinct      [][]uint64
	distinctCount int
	lineShift     uint

	// tr follows every prefetch request (KPref from any source) to its
	// outcome; AccessData is the single choke point, so this one
	// tracker sees software, DBP and hardware-JPP prefetches alike.
	tr *stats.Tracker

	s Stats
}

// inflightFill is one in-flight L1-level line fill (a slot of the
// open-addressed inflight table).
type inflightFill struct {
	done uint64
	line uint32
	used bool
}

// inflightInitSlots is the inflight table's starting capacity; it
// doubles whenever half full.
const inflightInitSlots = 256

// distinctLeafBits sizes the distinct-line bitmap leaves: each leaf
// covers 2^distinctLeafBits consecutive line indices.
const distinctLeafBits = 15

// New builds a hierarchy.
func New(p Params) *Hierarchy {
	lineShift := uint(0)
	for 1<<lineShift < p.L1D.LineBytes {
		lineShift++
	}
	h := &Hierarchy{
		p:        p,
		l1i:      newCache(p.L1I),
		l1d:      newCache(p.L1D),
		l2:       newCache(p.L2),
		itlb:     NewTLB(p.ITLBEntries, p.PageBytes, p.TLBMissCycles),
		dtlb:     NewTLB(p.DTLBEntries, p.PageBytes, p.TLBMissCycles),
		l1l2Bus:  NewBus(p.ChunkBytes, p.L1L2ChunkCycles),
		memBus:   NewBus(p.ChunkBytes, p.MemChunkCycles),
		mshr:     make([]uint64, p.MSHRs),
		inflight: make([]inflightFill, inflightInitSlots),
		// 32-bit hash >> shift indexes the table: shift = 32 - log2(slots).
		inflightShift: 32 - uint(bits.Len(uint(inflightInitSlots-1))),
		distinct:      make([][]uint64, 1<<(32-lineShift-distinctLeafBits)),
		lineShift:     lineShift,
		tr:            stats.NewTracker(),
	}
	if p.EnablePB {
		h.pb = newCache(p.PB)
	}
	return h
}

// markDistinct records a demand touch of line for the footprint metric.
func (h *Hierarchy) markDistinct(line uint32) {
	idx := line >> h.lineShift
	leaf := h.distinct[idx>>distinctLeafBits]
	if leaf == nil {
		leaf = make([]uint64, (1<<distinctLeafBits)/64)
		h.distinct[idx>>distinctLeafBits] = leaf
	}
	bit := idx & (1<<distinctLeafBits - 1)
	w := &leaf[bit>>6]
	m := uint64(1) << (bit & 63)
	if *w&m == 0 {
		*w |= m
		h.distinctCount++
	}
}

// inflightHome is line's preferred slot in the inflight table.
func (h *Hierarchy) inflightHome(line uint32) int {
	return int((line * 0x9E3779B1) >> h.inflightShift)
}

// findInflight returns the table slot of line's in-flight fill, or -1.
// Fills that completed at or before now are reclaimed as the probe
// steps over them, which is unobservable: every consumer compares the
// entry's done time against a deadline >= now, and the original map
// deleted such entries lazily on the same paths.
func (h *Hierarchy) findInflight(now uint64, line uint32) int {
	i := h.inflightHome(line)
	for {
		e := &h.inflight[i]
		if !e.used {
			return -1
		}
		if e.done <= now {
			// Reclaim and re-examine the slot (deletion shifts a
			// later entry into it or empties it).
			h.dropInflight(i)
			continue
		}
		if e.line == line {
			return i
		}
		i = (i + 1) & (len(h.inflight) - 1)
	}
}

// dropInflight removes the entry at slot i, backward-shifting the
// probe chain behind it so every survivor stays reachable.
func (h *Hierarchy) dropInflight(i int) {
	mask := len(h.inflight) - 1
	h.inflight[i] = inflightFill{}
	h.inflightN--
	j := i
	for {
		j = (j + 1) & mask
		e := h.inflight[j]
		if !e.used {
			return
		}
		// e can fill the hole iff the hole lies on e's probe path.
		if (j-h.inflightHome(e.line))&mask >= (j-i)&mask {
			h.inflight[i] = e
			h.inflight[j] = inflightFill{}
			i = j
		}
	}
}

// insertInflight records a new fill of line completing at done,
// replacing any stale entry for the same line (e.g. one outlived by a
// TLB walk — the newer fill is what lookups must see).
func (h *Hierarchy) insertInflight(now uint64, line uint32, done uint64) {
	if 2*h.inflightN >= len(h.inflight) {
		h.growInflight()
	}
	i := h.inflightHome(line)
	for {
		e := &h.inflight[i]
		if !e.used {
			*e = inflightFill{done: done, line: line, used: true}
			h.inflightN++
			return
		}
		if e.done <= now {
			h.dropInflight(i)
			continue
		}
		if e.line == line {
			e.done = done
			return
		}
		i = (i + 1) & (len(h.inflight) - 1)
	}
}

// growInflight doubles the table, rehashing the live entries.
func (h *Hierarchy) growInflight() {
	old := h.inflight
	h.inflight = make([]inflightFill, 2*len(old))
	h.inflightShift--
	mask := len(h.inflight) - 1
	for _, e := range old {
		if !e.used {
			continue
		}
		i := h.inflightHome(e.line)
		for h.inflight[i].used {
			i = (i + 1) & mask
		}
		h.inflight[i] = e
	}
}

// Params returns the hierarchy's configuration.
func (h *Hierarchy) Params() Params { return h.p }

// mshrAlloc picks an outstanding-miss slot, returning the earliest
// cycle (>= now) at which the miss may start and the slot index.  The
// caller records the miss completion time into the slot.
func (h *Hierarchy) mshrAlloc(now uint64) (start uint64, slot int) {
	best := 0
	for i, free := range h.mshr {
		if free <= now {
			return now, i
		}
		if free < h.mshr[best] {
			best = i
		}
	}
	return h.mshr[best], best
}

// fetchFromL2 runs the miss path below L1: L2 lookup, possibly memory,
// and the L1-line transfer over the L1<->L2 bus.  It returns the cycle
// the critical word reaches the L1 level and whether L2 missed.
// prefetch attributes the bus traffic.
func (h *Hierarchy) fetchFromL2(now uint64, addr uint32, prefetch bool) (uint64, bool) {
	h.s.L2Accesses++
	tL2 := now + uint64(h.p.L2.LatCycles)
	l2hit := h.l2.lookup(addr)
	if !l2hit {
		h.s.L2Misses++
		tMem := tL2 + uint64(h.p.MemLatency)
		firstM, doneM := h.memBus.Transfer(tMem, h.p.L2.LineBytes)
		h.s.MemBytes += uint64(h.p.L2.LineBytes)
		if victim, dirty, ok := h.l2.fill(addr); ok && dirty {
			// L2 writeback to memory: occupies the memory bus only.
			h.memBus.Transfer(doneM, h.p.L2.LineBytes)
			h.s.MemBytes += uint64(h.p.L2.LineBytes)
			_ = victim
		}
		tL2 = firstM
	}
	first, _ := h.l1l2Bus.Transfer(tL2, h.p.L1D.LineBytes)
	h.s.L1L2Bytes += uint64(h.p.L1D.LineBytes)
	if prefetch {
		h.s.L1L2PrefetchBytes += uint64(h.p.L1D.LineBytes)
	} else {
		h.s.L1L2DemandBytes += uint64(h.p.L1D.LineBytes)
	}
	return first, !l2hit
}

// writebackL1 charges an L1 victim writeback to the L1<->L2 bus and
// marks the line dirty in L2.
func (h *Hierarchy) writebackL1(now uint64, victim uint32) {
	h.l1l2Bus.Transfer(now, h.p.L1D.LineBytes)
	h.s.L1L2Bytes += uint64(h.p.L1D.LineBytes)
	h.s.L1L2WritebackBytes += uint64(h.p.L1D.LineBytes)
	if h.l2.probe(victim) {
		h.l2.setDirty(victim)
	}
	// If the victim is not in L2 (inclusive-victim simplification), the
	// writeback allocates it there silently.
}

// AccessData performs a data-side access at cycle now.  Demand accesses
// (loads and stores) additionally accumulate their wait time — measured
// from the pre-translation request cycle — into DemandWaitSum at each
// demand return path, which keeps this single function on the hot path
// instead of a stats wrapper around it.
func (h *Hierarchy) AccessData(now uint64, addr uint32, kind Kind) Result {
	if h.p.PerfectData {
		return Result{Done: now + 1}
	}
	t0 := now
	line := h.l1d.lineAddr(addr)
	demand := kind == KLoad || kind == KStore
	if demand {
		h.markDistinct(line)
	}
	fill := h.findInflight(now, line)

	var res Result
	ready, tlbMiss := h.dtlb.Access(now, addr)
	res.TLBMiss = tlbMiss
	now = ready

	// L1D probe.
	l1hit := h.l1d.lookup(addr)
	if demand {
		h.s.L1DAccesses++
		if !l1hit {
			h.s.L1DMisses++
		}
	}
	if l1hit {
		done := now + uint64(h.p.L1D.LatCycles)
		if fill >= 0 {
			if d := h.inflight[fill].done; d > done {
				done = d
			} else {
				h.dropInflight(fill)
			}
		}
		if kind == KStore || kind == KJPStore {
			h.l1d.setDirty(addr)
		}
		if kind == KPref {
			h.tr.PrefetchIssued(line, done, true)
			return Result{Done: done, Dropped: true}
		}
		if demand {
			// A resident line may still carry an unconsumed prefetch
			// (direct L1 fills when the PB is disabled); first touch
			// consumes it.
			h.tr.Demand(line, now, false)
			h.s.DemandWaitSum += done - t0
		}
		res.Done = done
		return res
	}

	// Prefetch buffer probe.
	if h.pb != nil && h.pb.lookup(addr) {
		done := now + uint64(h.p.PB.LatCycles)
		if fill >= 0 {
			if d := h.inflight[fill].done; d > done {
				done = d
			} else {
				h.dropInflight(fill)
			}
		}
		if kind == KPref {
			h.tr.PrefetchIssued(line, done, true)
			return Result{Done: done, Dropped: true}
		}
		// A used prefetch: install into the L1 and retire the PB copy.
		h.s.PBHits++
		h.s.PBHitWaitSum += done - (now + 1)
		h.tr.Demand(line, now, false)
		h.pb.invalidate(addr)
		if victim, dirty, ok := h.l1d.fill(addr); ok {
			h.tr.Evicted(h.l1d.lineAddr(victim))
			if dirty {
				h.writebackL1(done, victim)
			}
		}
		if kind == KStore || kind == KJPStore {
			h.l1d.setDirty(addr)
		}
		if demand {
			h.s.DemandWaitSum += done - t0
		}
		res.Done = done
		res.FromPB = true
		return res
	}

	res.MissL1 = true

	// Merge with an in-flight fill of the same line.
	if fill >= 0 {
		if d := h.inflight[fill].done; d > now {
			if kind == KPref {
				h.tr.PrefetchIssued(line, d, true)
				return Result{Done: d, MissL1: true, Dropped: true}
			}
			// The line is being filled (into L1 or PB); tags were
			// installed eagerly, but a second structure may need the line
			// too.  Keep it simple: the requester just waits for the fill.
			if demand {
				h.tr.Demand(line, now, true)
				h.s.DemandWaitSum += d - t0
			}
			res.Done = d
			return res
		}
	}

	// True miss: allocate an MSHR and go below.
	start, slot := h.mshrAlloc(now)
	first, l2miss := h.fetchFromL2(start, addr, kind == KPref || kind == KJPStore)
	res.MissL2 = l2miss
	h.mshr[slot] = first

	if kind == KPref {
		h.s.PBFills++
		if h.pb != nil {
			if victim, _, ok := h.pb.fill(addr); ok {
				h.tr.Evicted(h.l1d.lineAddr(victim))
			}
		} else {
			if victim, dirty, ok := h.l1d.fill(addr); ok {
				h.tr.Evicted(h.l1d.lineAddr(victim))
				if dirty {
					h.writebackL1(first, victim)
				}
			}
		}
		h.tr.PrefetchIssued(line, first, false)
	} else {
		if victim, dirty, ok := h.l1d.fill(addr); ok {
			h.tr.Evicted(h.l1d.lineAddr(victim))
			if dirty {
				h.writebackL1(first, victim)
			}
		}
		if kind == KStore || kind == KJPStore {
			h.l1d.setDirty(addr)
		}
		if demand {
			h.tr.Demand(line, now, true)
			h.s.DemandWaitSum += first - t0
		}
	}
	h.insertInflight(now, line, first)
	res.Done = first
	return res
}

// WarmData functionally warms the hierarchy for one fast-forwarded
// demand access (sampled simulation): TLB, L1D, prefetch buffer and L2
// tag/replacement/dirty state evolve exactly as a demand access would
// drive them, but no latency is computed and no bus, MSHR, counter or
// prefetch-tracker state is touched — the measured intervals stay the
// sole source of timing statistics.  The footprint bitmap is updated:
// distinct-lines-touched is an architectural property of the executed
// stream, fast-forwarded or not.
func (h *Hierarchy) WarmData(addr uint32, store bool) {
	if h.p.PerfectData {
		return
	}
	h.markDistinct(h.l1d.lineAddr(addr))
	h.dtlb.Warm(addr)
	if h.l1d.lookup(addr) {
		if store {
			h.l1d.setDirty(addr)
		}
		return
	}
	if h.pb != nil && h.pb.lookup(addr) {
		// A demand touch consumes the prefetched copy: install into L1,
		// retire the PB line (the demand path's PB-hit transfer).
		h.pb.invalidate(addr)
		h.warmFillL1(addr, store)
		return
	}
	if !h.l2.lookup(addr) {
		h.l2.fill(addr)
	}
	h.warmFillL1(addr, store)
}

// warmFillL1 installs addr into the L1D during warming, preserving the
// functional side of a victim writeback (L2 dirty marking) without the
// bus charge.
func (h *Hierarchy) warmFillL1(addr uint32, store bool) {
	if victim, dirty, ok := h.l1d.fill(addr); ok && dirty {
		if h.l2.probe(victim) {
			h.l2.setDirty(victim)
		}
	}
	if store {
		h.l1d.setDirty(addr)
	}
}

// WarmInst warms the instruction side for one fast-forwarded fetch.
func (h *Hierarchy) WarmInst(pc uint32) {
	h.itlb.Warm(pc)
	if h.l1i.lookup(pc) {
		return
	}
	if !h.l2.lookup(pc) {
		h.l2.fill(pc)
	}
	h.l1i.fill(pc)
}

// PresentL1 reports whether addr's line is resident in the L1 data
// cache or the prefetch buffer, without disturbing replacement state.
// The hardware JPP engine uses it to make jump-pointer stores
// best-effort: a store to a non-resident home would otherwise fetch and
// dirty a whole line just to plant a hint.
func (h *Hierarchy) PresentL1(addr uint32) bool {
	if h.l1d.probe(addr) {
		return true
	}
	return h.pb != nil && h.pb.probe(addr)
}

// DirtyL1 marks addr's line dirty if it is L1-resident.  Hardware
// jump-pointer stores merge into the home node's already-fetched block
// (the annotated-load mechanism of section 3.3 computes the padding
// address as part of the triggering load), so their only memory-system
// cost is the eventual writeback of the dirtied line.
func (h *Hierarchy) DirtyL1(addr uint32) {
	h.l1d.setDirty(addr)
}

// AccessInst fetches the instruction block containing pc at cycle now,
// returning the cycle the block is available and whether L1I missed.
func (h *Hierarchy) AccessInst(now uint64, pc uint32) (uint64, bool) {
	ready, _ := h.itlb.Access(now, pc)
	now = ready
	h.s.L1IAccesses++
	if h.l1i.lookup(pc) {
		return now + uint64(h.p.L1I.LatCycles), false
	}
	h.s.L1IMisses++
	first, _ := h.fetchFromL2(now, pc, false)
	h.l1i.fill(pc)
	return first, true
}

// LineBytes returns the L1 data line size.
func (h *Hierarchy) LineBytes() int { return h.p.L1D.LineBytes }

// PrefetchStats finalizes the prefetch-outcome tracker (retiring any
// still-pending prefetches as evicted-unused) and returns its counters.
// Call at end of run; the outcome identity OutcomeTotal()==Issued holds
// from then on.
func (h *Hierarchy) PrefetchStats() stats.PrefetchStats {
	h.tr.Finalize()
	return h.tr.Stats()
}

// Stats returns a snapshot of the hierarchy counters.
func (h *Hierarchy) Stats() Stats {
	s := h.s
	_, s.DTLBMisses = h.dtlb.Stats()
	_, s.ITLBMisses = h.itlb.Stats()
	s.DistinctL1Lines = h.distinctCount
	return s
}
