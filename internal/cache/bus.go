package cache

// Bus models a fixed-width data bus clocked at a fraction of the core
// frequency.  Transfers occupy the bus back to back; the requester gets
// its critical chunk after one chunk time (critical-word-first) while
// the bus stays busy for the whole line.
type Bus struct {
	chunkBytes  uint64
	chunkCycles uint64
	free        uint64

	bytesMoved uint64
	busyCycles uint64
}

// NewBus returns a bus moving chunkBytes per chunkCycles core cycles.
func NewBus(chunkBytes, chunkCycles int) *Bus {
	return &Bus{chunkBytes: uint64(chunkBytes), chunkCycles: uint64(chunkCycles)}
}

// Transfer reserves the bus for n bytes starting no earlier than now.
// It returns the cycle the first chunk (critical word) arrives and the
// cycle the full transfer completes.
func (b *Bus) Transfer(now uint64, n int) (first, done uint64) {
	chunks := (uint64(n) + b.chunkBytes - 1) / b.chunkBytes
	if chunks == 0 {
		chunks = 1
	}
	start := max(now, b.free)
	first = start + b.chunkCycles
	done = start + b.chunkCycles*chunks
	b.free = done
	b.bytesMoved += uint64(n)
	b.busyCycles += b.chunkCycles * chunks
	return first, done
}

// BytesMoved reports total bytes transferred.
func (b *Bus) BytesMoved() uint64 { return b.bytesMoved }

// BusyCycles reports total cycles the bus was reserved.
func (b *Bus) BusyCycles() uint64 { return b.busyCycles }
