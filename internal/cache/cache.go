// Package cache models the simulated memory hierarchy of the paper's
// Table 2: split 1-cycle L1 caches, a shared 12-cycle 512KB L2, 70-cycle
// main memory, 8B buses clocked at 1/2 (L1<->L2) and 1/4 (L2<->memory)
// of the core frequency with cycle-level occupancy, 8 outstanding data
// misses (MSHRs), instruction and data TLBs with 30-cycle hardware miss
// handling, and the 2KB prefetch buffer used by the hardware prefetching
// mechanisms.
//
// The hierarchy is a timing model only: data values live in the
// simulated memory image (internal/mem).  Latencies are computed, not
// event-simulated, but shared resources (buses, MSHRs, the TLB miss
// handler) are modelled as next-free-cycle reservations so that
// bandwidth contention — which drives Figure 6 and the voronoi result —
// is captured.
package cache

import "math/bits"

// Geom describes one cache's geometry.
type Geom struct {
	SizeBytes int
	LineBytes int
	Assoc     int
	// LatCycles is the access (hit) latency.
	LatCycles int
}

// Sets returns the number of sets.
func (g Geom) Sets() int { return g.SizeBytes / (g.LineBytes * g.Assoc) }

type line struct {
	tag   uint32
	lru   uint64
	valid bool
	dirty bool
}

// cache is a set-associative, LRU, write-back tag array.  The ways of
// set s occupy lines[s*assoc : (s+1)*assoc] — a single flat backing
// array, so a probe is one slice load plus arithmetic with no per-set
// header table to allocate or chase.
type cache struct {
	geom      Geom
	lines     []line
	assoc     int
	lineShift uint
	setMask   uint32
	tick      uint64
}

func newCache(g Geom) *cache {
	n := g.Sets()
	if n == 0 || n&(n-1) != 0 {
		panic("cache: set count must be a nonzero power of two")
	}
	return &cache{
		geom:      g,
		lines:     make([]line, n*g.Assoc),
		assoc:     g.Assoc,
		lineShift: uint(bits.TrailingZeros(uint(g.LineBytes))),
		setMask:   uint32(n - 1),
	}
}

func (c *cache) index(addr uint32) (set uint32, tag uint32) {
	l := addr >> c.lineShift
	return l & c.setMask, l >> bits.TrailingZeros32(c.setMask+1)
}

// lookup probes for addr; on hit it refreshes LRU state.  Hit/miss
// accounting is the hierarchy's job (prefetch probes must not pollute
// demand statistics).
func (c *cache) lookup(addr uint32) bool {
	c.tick++
	set, tag := c.index(addr)
	ways := c.ways(set)
	for i := range ways {
		ln := &ways[i]
		if ln.valid && ln.tag == tag {
			ln.lru = c.tick
			return true
		}
	}
	return false
}

// ways returns set's ways as a subslice of the flat backing array.
func (c *cache) ways(set uint32) []line {
	base := int(set) * c.assoc
	return c.lines[base : base+c.assoc]
}

// probe checks presence without touching LRU or counters.
func (c *cache) probe(addr uint32) bool {
	set, tag := c.index(addr)
	ways := c.ways(set)
	for i := range ways {
		ln := &ways[i]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// setDirty marks addr's line dirty if present.
func (c *cache) setDirty(addr uint32) {
	set, tag := c.index(addr)
	ways := c.ways(set)
	for i := range ways {
		ln := &ways[i]
		if ln.valid && ln.tag == tag {
			ln.dirty = true
			return
		}
	}
}

// fill installs addr's line, returning the evicted victim line address
// and whether it was valid+dirty.
func (c *cache) fill(addr uint32) (victimAddr uint32, victimDirty bool, hadVictim bool) {
	c.tick++
	set, tag := c.index(addr)
	ways := c.ways(set)
	victim := &ways[0]
	for i := range ways {
		ln := &ways[i]
		if ln.valid && ln.tag == tag {
			// Already present (raced fills merge).
			ln.lru = c.tick
			return 0, false, false
		}
		if !ln.valid {
			victim = ln
		} else if victim.valid && ln.lru < victim.lru {
			victim = ln
		}
	}
	if victim.valid {
		hadVictim = true
		victimDirty = victim.dirty
		// Reconstruct the victim address from its tag and this set.
		victimAddr = (victim.tag*(c.setMask+1) + set) << c.lineShift
	}
	victim.valid = true
	victim.dirty = false
	victim.tag = tag
	victim.lru = c.tick
	return victimAddr, victimDirty, hadVictim
}

// invalidate removes addr's line if present.
func (c *cache) invalidate(addr uint32) {
	set, tag := c.index(addr)
	ways := c.ways(set)
	for i := range ways {
		ln := &ways[i]
		if ln.valid && ln.tag == tag {
			ln.valid = false
			return
		}
	}
}

func (c *cache) lineAddr(addr uint32) uint32 {
	return addr >> c.lineShift << c.lineShift
}
