package cache

import (
	"testing"
	"testing/quick"
)

func defaultHier() *Hierarchy { return New(Defaults()) }

func TestL1HitTiming(t *testing.T) {
	h := defaultHier()
	// Cold miss first.
	r := h.AccessData(100, 0x1000, KLoad)
	if !r.MissL1 {
		t.Fatal("first access must miss")
	}
	// Subsequent access after the fill completes: 1-cycle hit.
	now := r.Done + 10
	r2 := h.AccessData(now, 0x1000, KLoad)
	if r2.MissL1 || r2.Done != now+1 {
		t.Fatalf("expected 1-cycle hit, got %+v (now=%d)", r2, now)
	}
}

func TestL2HitFasterThanMemory(t *testing.T) {
	h := defaultHier()
	// Warm L2 but not L1 for 0x2000: access once (fills both), then
	// evict from L1 by filling its set.
	first := h.AccessData(0, 0x2000, KLoad)
	memLat := first.Done
	// L1D is 64KB 2-way with 32B lines: addresses 32KB apart map to the
	// same set.  Two more fills evict 0x2000 from L1 while L2 keeps it.
	now := first.Done + 1
	for i := 1; i <= 2; i++ {
		r := h.AccessData(now, 0x2000+uint32(i*32<<10), KLoad)
		now = r.Done + 1
	}
	r := h.AccessData(now, 0x2000, KLoad)
	if !r.MissL1 || r.MissL2 {
		t.Fatalf("expected L1 miss / L2 hit, got %+v", r)
	}
	l2Lat := r.Done - now
	if l2Lat >= memLat {
		t.Fatalf("L2 hit (%d cycles) not faster than memory (%d cycles)", l2Lat, memLat)
	}
	if l2Lat < 12 {
		t.Fatalf("L2 hit latency %d below the 12-cycle access time", l2Lat)
	}
}

func TestMemoryLatencyDominatesColdMiss(t *testing.T) {
	h := defaultHier()
	r := h.AccessData(0, 0x3000, KLoad)
	// 12 (L2 lookup) + 70 (memory) + bus transfers; TLB miss adds 30.
	if lat := r.Done; lat < 70 || lat > 200 {
		t.Fatalf("cold miss latency %d outside plausible range", lat)
	}
	if !r.MissL1 || !r.MissL2 || !r.TLBMiss {
		t.Fatalf("cold miss flags wrong: %+v", r)
	}
}

func TestSecondaryMissMerges(t *testing.T) {
	h := defaultHier()
	r1 := h.AccessData(0, 0x4000, KLoad)
	before := h.Stats().MemBytes
	// Same line, one cycle later: must merge onto the in-flight fill.
	r2 := h.AccessData(1, 0x4004, KLoad)
	if h.Stats().MemBytes != before {
		t.Fatal("secondary miss generated new memory traffic")
	}
	if r2.Done > r1.Done {
		t.Fatalf("merged access finishes later (%d) than the fill (%d)", r2.Done, r1.Done)
	}
}

func TestMSHRLimitThrottles(t *testing.T) {
	h := defaultHier()
	// Issue 9 misses to distinct lines in the same cycle: the 9th must
	// wait for an MSHR.
	var dones []uint64
	for i := 0; i < 9; i++ {
		r := h.AccessData(0, uint32(0x10000+i*4096), KLoad)
		dones = append(dones, r.Done)
	}
	max8 := uint64(0)
	for _, d := range dones[:8] {
		if d > max8 {
			max8 = d
		}
	}
	if dones[8] <= max8 {
		t.Fatalf("9th concurrent miss (%d) did not queue behind the 8 MSHRs (max %d)", dones[8], max8)
	}
}

func TestPrefetchBufferFlow(t *testing.T) {
	p := Defaults()
	p.EnablePB = true
	h := New(p)
	// Prefetch a line, wait for it, then demand-load it: PB hit.
	r := h.AccessData(0, 0x5000, KPref)
	if r.Dropped {
		t.Fatal("cold prefetch must not be dropped")
	}
	now := r.Done + 5
	d := h.AccessData(now, 0x5000, KLoad)
	if !d.FromPB || d.Done != now+1 {
		t.Fatalf("expected timely PB hit, got %+v", d)
	}
	if h.Stats().PBHits != 1 || h.Stats().PBFills != 1 {
		t.Fatalf("PB counters wrong: %+v", h.Stats())
	}
	// The line moved into L1: a second demand access is a plain hit.
	d2 := h.AccessData(now+2, 0x5000, KLoad)
	if d2.MissL1 || d2.FromPB {
		t.Fatalf("line not installed into L1: %+v", d2)
	}
}

func TestPrefetchDroppedWhenPresent(t *testing.T) {
	p := Defaults()
	p.EnablePB = true
	h := New(p)
	r := h.AccessData(0, 0x6000, KLoad)
	pr := h.AccessData(r.Done+1, 0x6000, KPref)
	if !pr.Dropped {
		t.Fatal("prefetch of an L1-resident line must be dropped")
	}
}

func TestEarlyDemandWaitsOnInflightPrefetch(t *testing.T) {
	p := Defaults()
	p.EnablePB = true
	h := New(p)
	r := h.AccessData(0, 0x7000, KPref)
	d := h.AccessData(5, 0x7000, KLoad)
	if d.Done != r.Done {
		t.Fatalf("demand on in-flight prefetched line: done=%d, want fill time %d", d.Done, r.Done)
	}
	if h.Stats().PBHitWaitSum == 0 {
		t.Fatal("late-prefetch wait not recorded")
	}
}

func TestWritebackTraffic(t *testing.T) {
	h := defaultHier()
	// Dirty a line, then evict it by filling its set: writeback bytes
	// must appear on the L1<->L2 bus.
	r := h.AccessData(0, 0x8000, KStore)
	now := r.Done + 1
	for i := 1; i <= 2; i++ {
		rr := h.AccessData(now, uint32(0x8000+i*32<<10), KLoad)
		now = rr.Done + 1
	}
	if h.Stats().L1L2WritebackBytes == 0 {
		t.Fatal("dirty eviction produced no writeback traffic")
	}
}

func TestPerfectDataMode(t *testing.T) {
	p := Defaults()
	p.PerfectData = true
	h := New(p)
	for i := 0; i < 100; i++ {
		r := h.AccessData(uint64(i), uint32(0x9000+i*4096), KLoad)
		if r.Done != uint64(i)+1 || r.MissL1 {
			t.Fatalf("perfect data access %d: %+v", i, r)
		}
	}
	if h.Stats().L1L2Bytes != 0 {
		t.Fatal("perfect data mode moved bytes")
	}
}

func TestDemandCountersIgnorePrefetchProbes(t *testing.T) {
	p := Defaults()
	p.EnablePB = true
	h := New(p)
	h.AccessData(0, 0xA000, KPref)
	h.AccessData(1, 0xB000, KPref)
	if h.Stats().L1DAccesses != 0 || h.Stats().L1DMisses != 0 {
		t.Fatalf("prefetch probes polluted demand counters: %+v", h.Stats())
	}
}

func TestInstFetch(t *testing.T) {
	h := defaultHier()
	done, miss := h.AccessInst(0, 0x40_0000)
	if !miss || done < 12 {
		t.Fatalf("cold I-fetch: done=%d miss=%v", done, miss)
	}
	done2, miss2 := h.AccessInst(done+1, 0x40_0000)
	if miss2 || done2 != done+2 {
		t.Fatalf("warm I-fetch: done=%d miss=%v", done2, miss2)
	}
}

func TestHitAfterFillProperty(t *testing.T) {
	// Any address, once accessed and completed, hits on re-access.
	h := defaultHier()
	f := func(addr uint32) bool {
		r := h.AccessData(0, addr, KLoad)
		r2 := h.AccessData(r.Done+1, addr, KLoad)
		return !r2.MissL1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBusOccupancy(t *testing.T) {
	b := NewBus(8, 2)
	first, done := b.Transfer(0, 32)
	if first != 2 || done != 8 {
		t.Fatalf("32B over 8B/2c bus: first=%d done=%d, want 2, 8", first, done)
	}
	// Back-to-back transfer queues behind the first.
	first2, done2 := b.Transfer(0, 32)
	if first2 != 10 || done2 != 16 {
		t.Fatalf("second transfer: first=%d done=%d, want 10, 16", first2, done2)
	}
	if b.BytesMoved() != 64 || b.BusyCycles() != 16 {
		t.Fatalf("counters: bytes=%d busy=%d", b.BytesMoved(), b.BusyCycles())
	}
}

func TestTLBMissAndReuse(t *testing.T) {
	tlb := NewTLB(2, 4096, 30)
	ready, miss := tlb.Access(0, 0x1000)
	if !miss || ready != 30 {
		t.Fatalf("cold TLB access: ready=%d miss=%v", ready, miss)
	}
	ready, miss = tlb.Access(31, 0x1FFF) // same page
	if miss || ready != 31 {
		t.Fatalf("same-page access missed: ready=%d miss=%v", ready, miss)
	}
	// Two more pages evict the first (2 entries, LRU).
	tlb.Access(40, 0x2000)
	tlb.Access(50, 0x3000)
	_, miss = tlb.Access(60, 0x1000)
	if !miss {
		t.Fatal("LRU eviction did not occur")
	}
	acc, misses := tlb.Stats()
	if acc != 5 || misses != 4 {
		t.Fatalf("stats: %d accesses, %d misses", acc, misses)
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	g := Geom{SizeBytes: 128, LineBytes: 32, Assoc: 2, LatCycles: 1} // 2 sets
	c := newCache(g)
	// Three lines in set 0 (addresses 0, 64, 128): LRU evicts the
	// least recently used.
	c.fill(0)
	c.fill(64)
	c.lookup(0) // refresh 0
	c.fill(128) // evicts 64
	if !c.probe(0) || c.probe(64) || !c.probe(128) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
}

func TestVictimAddressReconstruction(t *testing.T) {
	g := Geom{SizeBytes: 128, LineBytes: 32, Assoc: 2, LatCycles: 1}
	c := newCache(g)
	c.fill(0x1000) // set 0
	c.fill(0x2000) // set 0
	victim, _, had := c.fill(0x3000)
	if !had || victim != 0x1000 {
		t.Fatalf("victim = %#x, want 0x1000", victim)
	}
}

func TestGeomSets(t *testing.T) {
	g := Geom{SizeBytes: 64 << 10, LineBytes: 32, Assoc: 2}
	if g.Sets() != 1024 {
		t.Fatalf("Sets = %d", g.Sets())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two set count accepted")
		}
	}()
	newCache(Geom{SizeBytes: 96, LineBytes: 32, Assoc: 1})
}

func TestJPStoreKind(t *testing.T) {
	h := defaultHier()
	// A jump-pointer store to a resident line dirties it like a store.
	r := h.AccessData(0, 0xC000, KLoad)
	h.AccessData(r.Done+1, 0xC000, KJPStore)
	now := r.Done + 2
	for i := 1; i <= 2; i++ {
		rr := h.AccessData(now, uint32(0xC000+i*32<<10), KLoad)
		now = rr.Done + 1
	}
	if h.Stats().L1L2WritebackBytes == 0 {
		t.Fatal("JP store did not dirty the line")
	}
}

func TestDirtyL1AndPresentL1(t *testing.T) {
	h := defaultHier()
	if h.PresentL1(0xD000) {
		t.Fatal("cold line reported present")
	}
	r := h.AccessData(0, 0xD000, KLoad)
	if !h.PresentL1(0xD000) {
		t.Fatal("fetched line not present")
	}
	h.DirtyL1(0xD000)
	now := r.Done + 1
	for i := 1; i <= 2; i++ {
		rr := h.AccessData(now, uint32(0xD000+i*32<<10), KLoad)
		now = rr.Done + 1
	}
	if h.Stats().L1L2WritebackBytes == 0 {
		t.Fatal("DirtyL1 line evicted without writeback")
	}
}

func TestMemLatencyParameterScales(t *testing.T) {
	fast, slow := Defaults(), Defaults()
	slow.MemLatency = 700
	hf, hs := New(fast), New(slow)
	rf := hf.AccessData(0, 0x1000, KLoad)
	rs := hs.AccessData(0, 0x1000, KLoad)
	if rs.Done < rf.Done+600 {
		t.Fatalf("latency parameter ignored: %d vs %d", rs.Done, rf.Done)
	}
}
