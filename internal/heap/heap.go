// Package heap implements the simulated program heap.
//
// The allocator reproduces the behaviour the paper depends on for
// jump-pointer storage: small objects are allocated in size classes that
// are strictly powers of two (GNU-C-library style), so any object whose
// payload is not an exact power of two carries padding at the end of its
// block.  Both the software prefetching idioms and the hardware JPP
// mechanism store jump-pointers in that padding, adding no distinct cache
// blocks to the program's footprint (paper §3.1, §3.3).
package heap

import (
	"fmt"
	"hash/fnv"
	"math/bits"

	"repro/internal/mem"
)

// Base is the first heap address.  It is nonzero so that address 0 can
// serve as the null pointer, and high enough to keep the (unmodelled)
// static data area distinct.
const Base mem.Addr = 0x1000_0000

// MinClass is the smallest allocation size class in bytes.  Two words:
// one payload word plus room for at least one jump-pointer in blocks
// whose payload is a single word.
const MinClass = 8

// ArenaID names an allocation arena.  Arena 0 is the default heap; the
// Olden benchmarks allocate per locality domain (the suite was written
// for distributed memory machines), which workloads reproduce by
// creating one arena per domain.  Arenas keep a structure's blocks
// page-dense even as churn scrambles their order.
type ArenaID int

// arenaChunk is how much address space an arena claims from the global
// region at a time.  Chunks are carved back to back (aligned only to
// the largest class they contain), so arena locality never skews cache
// set usage.
const arenaChunk = 2 << 10

// An Allocator carves blocks out of the simulated memory image.  It is a
// bump allocator over power-of-two size classes with per-class free
// lists; frees recycle blocks within their class and arena, mirroring
// the reuse behaviour of the dlmalloc-family allocators the paper
// assumes.
type Allocator struct {
	img    *mem.Image
	next   mem.Addr
	limit  mem.Addr
	arenas []*arena

	// meta records the class of every live block so PaddingAddr and
	// Free can validate their arguments.  It is a paged array indexed
	// by heap offset in MinClass granules (every block start is
	// class-aligned, hence granule-aligned): a metadata probe is two
	// indexed loads instead of a map probe, which matters because the
	// prefetch engines interrogate block geometry on every chase.
	// Pages materialize as the bump pointer advances, so the table's
	// size tracks the heap actually used, not the address space.
	meta []*metaPage

	// Stats.
	allocs     int
	frees      int
	liveBytes  int
	totalBytes int
}

// metaPageSlots is the number of block-metadata slots per page; one
// page covers metaPageSlots*MinClass = 64 KiB of heap address space.
const metaPageSlots = 1 << 13

type metaPage [metaPageSlots]blockInfo

type arena struct {
	next mem.Addr
	end  mem.Addr
	// free holds per-class free lists, indexed by log2(class); classes
	// are powers of two, so the index is exact.
	free [32][]mem.Addr
}

type blockInfo struct {
	class   uint32 // block size in bytes (power of two); 0 = no block
	payload uint32 // requested size in bytes
	arena   int32
}

// New returns an allocator that places blocks into img starting at Base.
func New(img *mem.Image) *Allocator {
	return &Allocator{
		img:    img,
		next:   Base,
		limit:  0xF000_0000,
		arenas: []*arena{{}},
	}
}

// NewArena creates an allocation arena (a locality domain).
func (a *Allocator) NewArena() ArenaID {
	a.arenas = append(a.arenas, &arena{})
	return ArenaID(len(a.arenas) - 1)
}

// info returns the metadata slot for a live block starting at addr, or
// nil if addr is not a live block start.
func (a *Allocator) info(addr mem.Addr) *blockInfo {
	if addr < Base || addr&(MinClass-1) != 0 {
		return nil
	}
	slot := (addr - Base) / MinClass
	pi := int(slot / metaPageSlots)
	if pi >= len(a.meta) || a.meta[pi] == nil {
		return nil
	}
	bi := &a.meta[pi][slot%metaPageSlots]
	if bi.class == 0 {
		return nil
	}
	return bi
}

// metaSlot returns addr's metadata slot, materializing its page.
func (a *Allocator) metaSlot(addr mem.Addr) *blockInfo {
	slot := (addr - Base) / MinClass
	pi := int(slot / metaPageSlots)
	for pi >= len(a.meta) {
		a.meta = append(a.meta, nil)
	}
	if a.meta[pi] == nil {
		a.meta[pi] = new(metaPage)
	}
	return &a.meta[pi][slot%metaPageSlots]
}

// SizeClass returns the power-of-two block size used for a payload of n
// bytes.
func SizeClass(n uint32) uint32 {
	if n < MinClass {
		return MinClass
	}
	c := uint32(MinClass)
	for c < n {
		c <<= 1
	}
	return c
}

// Alloc allocates a block for n payload bytes in the default arena.
func (a *Allocator) Alloc(n uint32) mem.Addr { return a.AllocIn(0, n) }

// AllocIn allocates a block for n payload bytes in the given arena and
// returns its address.  The block's contents are zeroed (freed blocks
// are recycled, so stale words must not leak into "fresh" allocations).
func (a *Allocator) AllocIn(id ArenaID, n uint32) mem.Addr {
	if n == 0 {
		n = 1
	}
	ar := a.arenas[id]
	class := SizeClass(n)
	cidx := bits.Len32(class) - 1
	var addr mem.Addr
	if fl := ar.free[cidx]; len(fl) > 0 {
		addr = fl[len(fl)-1]
		ar.free[cidx] = fl[:len(fl)-1]
	} else {
		// Align the bump pointer to the class size so blocks never
		// straddle larger power-of-two boundaries gratuitously.
		mask := mem.Addr(class - 1)
		ar.next = (ar.next + mask) &^ mask
		if ar.next+mem.Addr(class) > ar.end {
			// Claim a fresh chunk from the global region, sized to fit
			// at least one block of this class.
			chunk := mem.Addr(arenaChunk)
			if mem.Addr(class) > chunk {
				chunk = mem.Addr(class)
			}
			a.next = (a.next + mask) &^ mask
			ar.next = a.next
			ar.end = a.next + chunk
			a.next = ar.end
			if a.next > a.limit {
				panic(fmt.Sprintf("heap: out of simulated memory (next=%#x)", a.next))
			}
		}
		addr = ar.next
		ar.next += mem.Addr(class)
		a.totalBytes += int(class)
	}
	for off := uint32(0); off < class; off += mem.WordBytes {
		a.img.WriteWord(addr+mem.Addr(off), 0)
	}
	*a.metaSlot(addr) = blockInfo{class: class, payload: n, arena: int32(id)}
	a.allocs++
	a.liveBytes += int(class)
	return addr
}

// Free returns the block at addr to its arena's size-class free list.
func (a *Allocator) Free(addr mem.Addr) {
	bi := a.info(addr)
	if bi == nil {
		panic(fmt.Sprintf("heap: free of unallocated address %#x", addr))
	}
	ar := a.arenas[bi.arena]
	cidx := bits.Len32(bi.class) - 1
	ar.free[cidx] = append(ar.free[cidx], addr)
	a.frees++
	a.liveBytes -= int(bi.class)
	*bi = blockInfo{}
}

// BlockSize returns the block (class) size in bytes of the live block at
// addr, or 0 if addr is not a live block start.
func (a *Allocator) BlockSize(addr mem.Addr) uint32 {
	if bi := a.info(addr); bi != nil {
		return bi.class
	}
	return 0
}

// PayloadSize returns the requested payload size of the live block at
// addr, or 0 if addr is not a live block start.
func (a *Allocator) PayloadSize(addr mem.Addr) uint32 {
	if bi := a.info(addr); bi != nil {
		return bi.payload
	}
	return 0
}

// PaddingWords reports how many whole words of padding the block at addr
// carries after its payload.  Zero means the payload exactly fills the
// block and no jump-pointer storage is available (paper §3.3: "if the
// size is exactly a power of two ... the unvaried load is used").
func (a *Allocator) PaddingWords(addr mem.Addr) uint32 {
	bi := a.info(addr)
	if bi == nil {
		return 0
	}
	payloadWords := (bi.payload + mem.WordBytes - 1) / mem.WordBytes
	return bi.class/mem.WordBytes - payloadWords
}

// PaddingAddr returns the address of the last word of the block at addr
// — the canonical jump-pointer slot — and whether such padding exists.
// The hardware mechanism derives this address from the annotated load's
// size variant; we derive it from the allocator's records, which encodes
// the same information.
func (a *Allocator) PaddingAddr(addr mem.Addr) (mem.Addr, bool) {
	bi := a.info(addr)
	if bi == nil || a.PaddingWords(addr) == 0 {
		return 0, false
	}
	return addr + mem.Addr(bi.class) - mem.WordBytes, true
}

// PaddingAddrForBlock computes the jump-pointer slot for a block of the
// given class size without consulting liveness records.  The hardware
// JPP engine uses this when it only knows the home node address and the
// load's size annotation.
func PaddingAddrForBlock(addr mem.Addr, class uint32) mem.Addr {
	return addr + mem.Addr(class) - mem.WordBytes
}

// Contains reports whether addr falls inside the allocated heap range.
// Prefetch engines use it to discard garbage "pointers".
func (a *Allocator) Contains(addr mem.Addr) bool {
	return addr >= Base && addr < a.next
}

// Allocs and Frees report allocation event counts.
func (a *Allocator) Allocs() int { return a.allocs }

// Frees reports how many blocks have been freed.
func (a *Allocator) Frees() int { return a.frees }

// LiveBytes reports bytes in live blocks (by class size).
func (a *Allocator) LiveBytes() int { return a.liveBytes }

// TotalBytes reports bytes ever carved from the bump region.
func (a *Allocator) TotalBytes() int { return a.totalBytes }

// Image returns the backing memory image.
func (a *Allocator) Image() *mem.Image { return a.img }

// PayloadChecksum hashes the architectural state of the heap: the
// address and payload words of every live block, in address order.
// Block padding is deliberately excluded — the prefetching schemes
// plant jump pointers there (that is the paper's point), so padding is
// microarchitectural hint storage, not program state.  Two runs of the
// same workload must produce identical checksums regardless of
// prefetching scheme; the differential tests rely on this.
func (a *Allocator) PayloadChecksum() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	word := func(w uint32) {
		buf[0] = byte(w)
		buf[1] = byte(w >> 8)
		buf[2] = byte(w >> 16)
		buf[3] = byte(w >> 24)
		h.Write(buf[:])
	}
	// The paged metadata table is ordered by address, so walking it in
	// page/slot order visits live blocks in ascending address order —
	// the same order the map-based implementation achieved by sorting.
	for pi, pg := range a.meta {
		if pg == nil {
			continue
		}
		for si := range pg {
			bi := &pg[si]
			if bi.class == 0 {
				continue
			}
			addr := Base + mem.Addr(pi*metaPageSlots+si)*MinClass
			word(uint32(addr))
			word(bi.payload)
			payloadWords := (bi.payload + mem.WordBytes - 1) / mem.WordBytes
			for off := uint32(0); off < payloadWords; off++ {
				word(a.img.ReadWord(addr + mem.Addr(off*mem.WordBytes)))
			}
		}
	}
	return h.Sum64()
}
