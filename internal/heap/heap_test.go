package heap

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newAlloc() *Allocator { return New(mem.NewImage()) }

func TestSizeClass(t *testing.T) {
	cases := []struct{ n, want uint32 }{
		{0, 8}, {1, 8}, {8, 8}, {9, 16}, {12, 16}, {16, 16},
		{17, 32}, {20, 32}, {32, 32}, {33, 64}, {60, 64}, {64, 64}, {65, 128},
	}
	for _, c := range cases {
		if got := SizeClass(c.n); got != c.want {
			t.Errorf("SizeClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSizeClassProperties(t *testing.T) {
	f := func(n uint32) bool {
		n %= 1 << 20
		c := SizeClass(n)
		// Power of two, >= MinClass, >= n, and minimal.
		return c&(c-1) == 0 && c >= MinClass && c >= n && (c == MinClass || c/2 < n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocAlignmentAndDistinctness(t *testing.T) {
	a := newAlloc()
	seen := map[mem.Addr]bool{}
	for i := 0; i < 100; i++ {
		n := uint32(1 + i%60)
		p := a.Alloc(n)
		cls := SizeClass(n)
		if uint32(p)%cls != 0 {
			t.Fatalf("block %#x not aligned to class %d", p, cls)
		}
		if seen[p] {
			t.Fatalf("address %#x allocated twice", p)
		}
		seen[p] = true
		if a.BlockSize(p) != cls || a.PayloadSize(p) != n {
			t.Fatalf("metadata mismatch at %#x", p)
		}
	}
}

func TestPadding(t *testing.T) {
	a := newAlloc()
	// 12-byte payload in a 16-byte block: one padding word at +12.
	p := a.Alloc(12)
	if got := a.PaddingWords(p); got != 1 {
		t.Fatalf("PaddingWords(12B payload) = %d, want 1", got)
	}
	pad, ok := a.PaddingAddr(p)
	if !ok || pad != p+12 {
		t.Fatalf("PaddingAddr = %#x,%v, want %#x", pad, ok, p+12)
	}
	// Exact power-of-two payload: no padding (paper section 3.3: the
	// unvaried load is used, no jump-pointer storage).
	q := a.Alloc(16)
	if got := a.PaddingWords(q); got != 0 {
		t.Fatalf("PaddingWords(16B payload) = %d, want 0", got)
	}
	if _, ok := a.PaddingAddr(q); ok {
		t.Fatal("PaddingAddr must fail for padding-free blocks")
	}
}

func TestFreeRecyclesWithinClassAndArena(t *testing.T) {
	a := newAlloc()
	p := a.Alloc(12)
	a.Free(p)
	q := a.Alloc(10) // same class 16
	if q != p {
		t.Fatalf("free block not recycled: got %#x, want %#x", q, p)
	}
	// A different class must not reuse it.
	a.Free(q)
	r := a.Alloc(30) // class 32
	if r == p {
		t.Fatal("class-32 allocation reused a class-16 block")
	}
}

func TestAllocZeroesRecycledBlocks(t *testing.T) {
	a := newAlloc()
	img := a.Image()
	p := a.Alloc(12)
	img.WriteWord(p, 0x1234)
	img.WriteWord(p+12, 0x5678) // padding word (a stale jump-pointer)
	a.Free(p)
	q := a.Alloc(12)
	if q != p {
		t.Fatalf("expected recycling, got %#x want %#x", q, p)
	}
	if img.ReadWord(q) != 0 || img.ReadWord(q+12) != 0 {
		t.Fatal("recycled block not zeroed")
	}
}

func TestArenasKeepLocality(t *testing.T) {
	a := newAlloc()
	ar1 := a.NewArena()
	ar2 := a.NewArena()
	p1 := a.AllocIn(ar1, 12)
	p2 := a.AllocIn(ar2, 12)
	p3 := a.AllocIn(ar1, 12)
	// Blocks of the same arena are adjacent; different arenas are not.
	if p3-p1 != 16 {
		t.Fatalf("same-arena blocks not adjacent: %#x then %#x", p1, p3)
	}
	if p2 == p1+16 {
		t.Fatal("different arenas interleaved blocks")
	}
	// Frees recycle within their own arena.
	a.Free(p1)
	if got := a.AllocIn(ar2, 12); got == p1 {
		t.Fatal("arena 2 stole arena 1's free block")
	}
	if got := a.AllocIn(ar1, 12); got != p1 {
		t.Fatalf("arena 1 did not recycle its block: got %#x", got)
	}
}

func TestArenaLargeBlock(t *testing.T) {
	a := newAlloc()
	ar := a.NewArena()
	// Bigger than the arena chunk: must still be served, aligned.
	p := a.AllocIn(ar, 3000)
	if a.BlockSize(p) != 4096 || uint32(p)%4096 != 0 {
		t.Fatalf("large block misallocated: addr=%#x class=%d", p, a.BlockSize(p))
	}
}

func TestContains(t *testing.T) {
	a := newAlloc()
	p := a.Alloc(12)
	if !a.Contains(p) || !a.Contains(p+8) {
		t.Fatal("Contains rejects a live heap address")
	}
	if a.Contains(0) || a.Contains(Base-4) {
		t.Fatal("Contains accepts a non-heap address")
	}
}

func TestStats(t *testing.T) {
	a := newAlloc()
	p := a.Alloc(12)
	a.Alloc(40)
	a.Free(p)
	if a.Allocs() != 2 || a.Frees() != 1 {
		t.Fatalf("counts: allocs=%d frees=%d", a.Allocs(), a.Frees())
	}
	if a.LiveBytes() != 64 { // class 64 still live
		t.Fatalf("LiveBytes = %d, want 64", a.LiveBytes())
	}
	if a.TotalBytes() != 16+64 {
		t.Fatalf("TotalBytes = %d", a.TotalBytes())
	}
}

func TestFreeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Free of unallocated address must panic")
		}
	}()
	newAlloc().Free(0x1234_5678)
}

func TestPaddingAddrForBlock(t *testing.T) {
	if got := PaddingAddrForBlock(0x100, 16); got != 0x10C {
		t.Fatalf("PaddingAddrForBlock = %#x", got)
	}
}
